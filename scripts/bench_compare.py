#!/usr/bin/env python3
"""Compare two directories of ``BENCH_*.json`` artifacts for regressions.

CI runs the bench-smoke job on every push and uploads its artifacts;
this script diffs the fresh artifacts against the previous successful
run's and prints a warning for every throughput metric that regressed
by more than the threshold (default 20%). Output lines use the GitHub
``::warning::`` annotation form so regressions surface on the workflow
summary without failing the build (shared-runner noise makes a hard
gate on wall-clock flaky; the warning plus the tracked artifacts is the
signal).

Usage::

    python scripts/bench_compare.py <old-dir> <new-dir> [--threshold 0.20]
    python scripts/bench_compare.py previous-bench artifacts --strict

``--strict`` exits 1 when regressions are found (for local use).
Only throughput-like metrics are compared (key contains
``events_per_second``, ``cells_per_second``, ``ratio`` or ``speedup``);
raw wall-clock and count fields are ignored.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

#: substrings marking a numeric field as a higher-is-better throughput
METRIC_MARKERS = ("events_per_second", "cells_per_second", "ratio", "speedup")


def throughput_metrics(document, prefix: str = "") -> Dict[str, float]:
    """Flatten a bench document into ``dotted.path -> value`` metrics."""
    metrics: Dict[str, float] = {}
    if not isinstance(document, dict):
        return metrics
    for key, value in document.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            metrics.update(throughput_metrics(value, f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if any(marker in key for marker in METRIC_MARKERS):
                metrics[path] = float(value)
    return metrics


def compare_directories(
    old_dir: Path, new_dir: Path, threshold: float
) -> List[str]:
    """Regression messages for every shared artifact/metric pair."""
    regressions: List[str] = []
    for new_file in sorted(Path(new_dir).glob("BENCH_*.json")):
        old_file = Path(old_dir) / new_file.name
        if not old_file.is_file():
            continue
        try:
            old_doc = json.loads(old_file.read_text(encoding="utf-8"))
            new_doc = json.loads(new_file.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue  # unreadable artifacts are not comparable
        old_metrics = throughput_metrics(old_doc)
        new_metrics = throughput_metrics(new_doc)
        for path, old_value in sorted(old_metrics.items()):
            new_value = new_metrics.get(path)
            if new_value is None or old_value <= 0:
                continue
            drop = (old_value - new_value) / old_value
            if drop > threshold:
                regressions.append(
                    f"{new_file.name}: {path} regressed {drop:.0%} "
                    f"({old_value:,.1f} -> {new_value:,.1f})"
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old_dir", help="previous run's artifact directory")
    parser.add_argument("new_dir", help="this run's artifact directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative drop that counts as a regression (default 0.20)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on regressions instead of warn-only",
    )
    args = parser.parse_args(argv)
    if not Path(args.old_dir).is_dir():
        print(f"no previous artifacts at {args.old_dir}; nothing to compare")
        return 0
    regressions = compare_directories(
        Path(args.old_dir), Path(args.new_dir), args.threshold
    )
    if not regressions:
        print(f"bench compare: no regression beyond {args.threshold:.0%}")
        return 0
    for message in regressions:
        print(f"::warning title=bench regression::{message}")
    print(f"bench compare: {len(regressions)} metric(s) regressed")
    return 1 if args.strict else 0


if __name__ == "__main__":
    sys.exit(main())
