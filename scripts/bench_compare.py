#!/usr/bin/env python3
"""Compare two directories of ``BENCH_*.json`` artifacts for regressions.

CI runs the bench-smoke job on every push, downloads the previous
successful run's artifacts, and diffs them against the fresh ones.
Two thresholds drive the outcome:

* drops beyond ``--threshold`` (default 20%) print GitHub
  ``::warning::`` annotations — visible on the workflow summary, but
  shared-runner noise at this level is common, so they do not fail the
  build;
* drops beyond ``--fail-on-regression`` (e.g. 0.35) print ``::error::``
  annotations and exit 1 — the hard gate: a >35% throughput drop is
  beyond plausible runner jitter for these benches.

Metrics present in only one side are never silently ignored: new metric
names (added benchmarks) and removed ones (renamed/deleted) are listed
as ``::notice::`` lines so artifact drift stays visible in the summary.

Usage::

    python scripts/bench_compare.py <old-dir> <new-dir> [--threshold 0.20]
    python scripts/bench_compare.py previous-bench artifacts \\
        --threshold 0.20 --fail-on-regression 0.35
    python scripts/bench_compare.py previous-bench artifacts --strict

``--strict`` exits 1 when *any* regression beyond the warn threshold is
found (for local use). Only throughput-like metrics are compared (key
contains one of the :data:`METRIC_MARKERS` substrings); raw wall-clock
and count fields are ignored.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

#: substrings marking a numeric field as a higher-is-better throughput
METRIC_MARKERS = (
    "events_per_second",
    "cells_per_second",
    "decisions_per_second",
    "ratio",
    "speedup",
)

#: metrics the hard gate refuses to pass without: the serving-cliff
#: rows cannot silently vanish from the artifact (deleted bench, typo'd
#: key) and still count as "no regression". Only enforced when a fail
#: threshold is set AND the previous run produced the artifact — warn-
#: only runs and bench subsets that skip the file stay tolerant.
REQUIRED_METRICS = {
    "BENCH_serve.json": (
        "single_shard.decisions_per_second",
        "batch_single_shard.decisions_per_second",
        "loopback_binary.decisions_per_second",
        "loopback_cluster_2w.decisions_per_second",
    ),
}


def throughput_metrics(document, prefix: str = "") -> Dict[str, float]:
    """Flatten a bench document into ``dotted.path -> value`` metrics."""
    metrics: Dict[str, float] = {}
    if not isinstance(document, dict):
        return metrics
    for key, value in document.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            metrics.update(throughput_metrics(value, f"{path}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if any(marker in key for marker in METRIC_MARKERS):
                metrics[path] = float(value)
    return metrics


@dataclass
class CompareReport:
    """Everything one artifact-directory comparison found."""

    #: warn-level drops (beyond the warn threshold, below the fail one)
    warnings: List[str] = field(default_factory=list)
    #: fail-level drops (beyond the fail threshold)
    failures: List[str] = field(default_factory=list)
    #: metrics present only in the new artifacts ("file: path (value)")
    added: List[str] = field(default_factory=list)
    #: metrics present only in the old artifacts
    removed: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[str]:
        """All regression messages, fail-level first."""
        return self.failures + self.warnings


def _load_metrics(path: Path) -> Dict[str, float]:
    try:
        return throughput_metrics(json.loads(path.read_text(encoding="utf-8")))
    except (OSError, ValueError):
        return {}  # unreadable artifacts are not comparable


def compare_directories(
    old_dir: Path,
    new_dir: Path,
    threshold: float,
    fail_threshold: float | None = None,
) -> CompareReport:
    """Compare every artifact pair; track added/removed metric names too."""
    report = CompareReport()
    if fail_threshold is not None:
        for name, required in REQUIRED_METRICS.items():
            if not (Path(old_dir) / name).is_file():
                continue
            present = _load_metrics(Path(new_dir) / name)
            for path in required:
                if path not in present:
                    report.failures.append(
                        f"{name}: required metric {path} missing from this run"
                    )
    old_files = {path.name for path in Path(old_dir).glob("BENCH_*.json")}
    new_files = {path.name for path in Path(new_dir).glob("BENCH_*.json")}
    for name in sorted(old_files - new_files):
        for path in sorted(_load_metrics(Path(old_dir) / name)):
            report.removed.append(f"{name}: {path}")
    for name in sorted(new_files):
        new_metrics = _load_metrics(Path(new_dir) / name)
        if name not in old_files:
            for path, value in sorted(new_metrics.items()):
                report.added.append(f"{name}: {path} ({value:,.1f})")
            continue
        old_metrics = _load_metrics(Path(old_dir) / name)
        for path, value in sorted(new_metrics.items()):
            if path not in old_metrics:
                report.added.append(f"{name}: {path} ({value:,.1f})")
        for path in sorted(set(old_metrics) - set(new_metrics)):
            report.removed.append(f"{name}: {path}")
        for path, old_value in sorted(old_metrics.items()):
            new_value = new_metrics.get(path)
            if new_value is None or old_value <= 0:
                continue
            drop = (old_value - new_value) / old_value
            if drop <= threshold:
                continue
            message = (
                f"{name}: {path} regressed {drop:.0%} "
                f"({old_value:,.1f} -> {new_value:,.1f})"
            )
            if fail_threshold is not None and drop > fail_threshold:
                report.failures.append(message)
            else:
                report.warnings.append(message)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old_dir", help="previous run's artifact directory")
    parser.add_argument("new_dir", help="this run's artifact directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative drop that warns (default 0.20)",
    )
    parser.add_argument(
        "--fail-on-regression",
        type=float,
        default=None,
        metavar="DROP",
        help=(
            "relative drop that fails the run with ::error:: annotations "
            "(e.g. 0.35); unset keeps the gate warn-only"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any regression beyond --threshold (for local use)",
    )
    args = parser.parse_args(argv)
    if args.fail_on_regression is not None and (
        args.fail_on_regression < args.threshold
    ):
        parser.error("--fail-on-regression must be >= --threshold")
    if not Path(args.old_dir).is_dir():
        print(f"no previous artifacts at {args.old_dir}; nothing to compare")
        return 0
    report = compare_directories(
        Path(args.old_dir),
        Path(args.new_dir),
        args.threshold,
        args.fail_on_regression,
    )
    for message in report.added:
        print(f"::notice title=new bench metric::{message}")
    for message in report.removed:
        print(f"::notice title=removed bench metric::{message}")
    for message in report.warnings:
        print(f"::warning title=bench regression::{message}")
    for message in report.failures:
        print(f"::error title=bench regression::{message}")
    if not report.regressions:
        print(f"bench compare: no regression beyond {args.threshold:.0%}")
        return 0
    print(
        f"bench compare: {len(report.regressions)} metric(s) regressed "
        f"({len(report.failures)} beyond the fail threshold)"
    )
    if report.failures:
        return 1
    return 1 if args.strict else 0


if __name__ == "__main__":
    sys.exit(main())
