"""Experiment harness: scenario assembly, sweeps, figures and reports.

* :mod:`repro.experiments.config` — declarative experiment configuration
  with the paper's defaults (§4.1).
* :mod:`repro.experiments.runner` — builds a configured simulation
  (overlay, nodes, churn, injectors, collectors) and runs it to the
  horizon, returning time series and accounting.
* :mod:`repro.experiments.suite` — declarative experiment suites and the
  parallel :class:`~repro.experiments.suite.SuiteRunner` that fans their
  cells across worker processes (``REPRO_WORKERS``).
* :mod:`repro.experiments.scale` — CI / medium / paper scale presets
  selected via the ``REPRO_SCALE`` environment variable.
* :mod:`repro.experiments.figures` — the per-figure harnesses (Figures
  1–5) that the benchmark suite calls.
* :mod:`repro.experiments.sweep` — the §4.2 parameter-space exploration.
* :mod:`repro.experiments.report` — ASCII rendering of series tables and
  the speedup-versus-proactive summaries.
"""

from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.runner import (
    ConfigLike,
    Experiment,
    ExperimentResult,
    average_results,
    replicate_seeds,
    run_averaged,
    run_experiment,
)
from repro.experiments.scale import ScalePreset, current_scale, worker_count
from repro.experiments.suite import (
    CellResult,
    ExperimentSuite,
    SuiteExecutionError,
    SuiteResult,
    SuiteRunner,
    run_configs,
    run_suite,
)

__all__ = [
    "CellResult",
    "ConfigLike",
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSuite",
    "PAPER",
    "ScalePreset",
    "SuiteExecutionError",
    "SuiteResult",
    "SuiteRunner",
    "average_results",
    "current_scale",
    "replicate_seeds",
    "run_averaged",
    "run_configs",
    "run_experiment",
    "run_suite",
    "worker_count",
]
