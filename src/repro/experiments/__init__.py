"""Experiment harness: scenario assembly, sweeps, figures and reports.

* :mod:`repro.experiments.config` — declarative experiment configuration
  with the paper's defaults (§4.1).
* :mod:`repro.experiments.runner` — builds a configured simulation
  (overlay, nodes, churn, injectors, collectors) and runs it to the
  horizon, returning time series and accounting.
* :mod:`repro.experiments.scale` — CI / medium / paper scale presets
  selected via the ``REPRO_SCALE`` environment variable.
* :mod:`repro.experiments.figures` — the per-figure harnesses (Figures
  1–5) that the benchmark suite calls.
* :mod:`repro.experiments.sweep` — the §4.2 parameter-space exploration.
* :mod:`repro.experiments.report` — ASCII rendering of series tables and
  the speedup-versus-proactive summaries.
"""

from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.runner import Experiment, ExperimentResult, run_experiment
from repro.experiments.scale import ScalePreset, current_scale

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "PAPER",
    "ScalePreset",
    "current_scale",
    "run_experiment",
]
