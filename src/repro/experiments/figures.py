"""Per-figure harnesses: the code that regenerates each paper figure.

Every public function here computes the data behind one figure of the
paper and returns a :class:`FigureData` with labeled series plus derived
headline numbers. The benchmark suite calls these and prints the result;
tests assert the qualitative shape (who wins, by roughly what factor).

Representative parameter selection
----------------------------------
Figure 2/3/4 show "a representative selection" of the explored parameter
space. The exact picks are taken from the settings §4.2 discusses by
name: (A=1, C=5), (A=1, C=10), (A=5, C=10), (A=10, C=10), (A=10, C=20),
and C = 20 for the simple strategy, plus the proactive baseline (simple
with C = 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.churn.stats import (
    ever_online_fraction,
    login_logout_fractions,
    online_fraction,
    trace_summary,
)
from repro.churn.stunner import StunnerTraceConfig, generate_stunner_like_trace
from repro.core.meanfield import MeanFieldModel, randomized_equilibrium
from repro.core.strategies import RandomizedTokenAccount
from repro.experiments.config import PAPER, ExperimentConfig
from repro.experiments.runner import average_results
from repro.experiments.scale import ScalePreset, current_scale
from repro.experiments.suite import ExperimentSuite, run_suite
from repro.metrics.series import TimeSeries
from repro.metrics.smoothing import window_average
from repro.registry import applications
from repro.sim.randomness import RandomStreams

#: the (strategy, A, C) selection shown in Figures 2-4, per §4.2's text
REPRESENTATIVE_SELECTION: Tuple[Tuple[str, Optional[int], Optional[int]], ...] = (
    ("proactive", None, None),
    ("simple", None, 10),
    ("simple", None, 20),
    ("generalized", 1, 10),
    ("generalized", 5, 10),
    ("generalized", 10, 20),
    ("randomized", 1, 10),
    ("randomized", 5, 10),
    ("randomized", 10, 20),
)

#: a smaller selection for quick CI runs
QUICK_SELECTION: Tuple[Tuple[str, Optional[int], Optional[int]], ...] = (
    ("proactive", None, None),
    ("simple", None, 10),
    ("generalized", 5, 10),
    ("generalized", 10, 20),
    ("randomized", 5, 10),
    ("randomized", 10, 20),
)


@dataclass
class FigureData:
    """The computed content of one paper figure."""

    name: str
    description: str
    #: labeled series — one per plotted curve
    series: Dict[str, TimeSeries]
    #: per-curve data message rate (messages / node / period)
    message_rates: Dict[str, float] = field(default_factory=dict)
    #: free-form derived numbers (speedups, predictions, summaries)
    extras: Dict[str, object] = field(default_factory=dict)
    #: the scale preset the data was computed at
    scale_label: str = ""


def _selection_label(strategy: str, a: Optional[int], c: Optional[int]) -> str:
    if strategy == "proactive":
        return "proactive"
    if strategy == "simple":
        return f"simple C={c}"
    return f"{strategy[:4]}. A={a} C={c}"


def _run_selection(
    app: str,
    scenario: str,
    n: int,
    periods: int,
    repeats: int,
    selection: Sequence[Tuple[str, Optional[int], Optional[int]]],
    seed: int,
    smooth: Optional[float] = None,
    workers: Optional[int] = None,
    store=None,
    offline: bool = False,
) -> tuple[Dict[str, TimeSeries], Dict[str, float]]:
    """Run one app/scenario over a parameter selection.

    The (selection x repeats) fan executes as one parallel suite; the
    repetition groups are averaged exactly like the serial
    :func:`~repro.experiments.runner.run_averaged` path (same seeds, same
    pointwise merge), so results do not depend on the worker count.
    """
    if app == "chaotic-iteration":
        # Chaotic iteration is by far the noisiest application (single
        # runs wobble around the mean curve); always average at least
        # two seeds, like the paper's 10-run averages.
        repeats = max(2, repeats)
    suite = ExperimentSuite.from_configs(
        f"selection-{app}-{scenario}",
        [
            ExperimentConfig(
                app=app,
                strategy=strategy,
                spend_rate=a,
                capacity=c,
                n=n,
                periods=periods,
                scenario=scenario,
                seed=seed,
            )
            for strategy, a, c in selection
        ],
        description=f"{app} / {scenario}: {len(selection)} curves x {repeats} seeds",
    ).repeated(repeats)
    results = run_suite(suite, workers=workers, store=store, offline=offline).results()
    series: Dict[str, TimeSeries] = {}
    rates: Dict[str, float] = {}
    for group, (strategy, a, c) in enumerate(selection):
        merged = average_results(results[group * repeats : (group + 1) * repeats])
        label = _selection_label(strategy, a, c)
        curve = merged.metric
        if smooth is not None:
            curve = window_average(curve, smooth)
        series[label] = curve
        rates[label] = merged.messages_per_node_per_period
    return series, rates


# ----------------------------------------------------------------------
# Figure 1 — the churn trace
# ----------------------------------------------------------------------
def figure1(scale: Optional[ScalePreset] = None, seed: int = 1) -> FigureData:
    """Figure 1: online / ever-online proportions and login/logout bars."""
    scale = scale or current_scale()
    streams = RandomStreams(seed)
    config = StunnerTraceConfig()
    trace = generate_stunner_like_trace(
        scale.trace_users, streams.stream("figure1-trace"), config
    )
    hours = int(config.horizon // 3600)
    edges = [h * 3600.0 for h in range(hours + 1)]
    # Sample availability at hour *midpoints*: intervals are half-open,
    # so at exactly t = horizon nobody is online by construction.
    midpoints = [t + 1800.0 for t in edges[:-1]]
    online = TimeSeries(zip(midpoints, online_fraction(trace, midpoints)))
    ever = TimeSeries(zip(edges, ever_online_fraction(trace, edges)))
    logins, logouts = login_logout_fractions(trace, edges)
    login_series = TimeSeries(zip(midpoints, logins))
    logout_series = TimeSeries(zip(midpoints, [-x for x in logouts]))
    summary = trace_summary(trace)
    return FigureData(
        name="figure1",
        description=(
            "Proportion of users online / ever-online over the 2-day window "
            "with per-hour login (up) and logout (down) proportions"
        ),
        series={
            "online": online,
            "has been online": ever,
            "up": login_series,
            "down": logout_series,
        },
        extras={"summary": summary},
        scale_label=scale.label,
    )


# ----------------------------------------------------------------------
# Figure 2 — failure-free scenario, three applications
# ----------------------------------------------------------------------
def figure2(
    app: str,
    scale: Optional[ScalePreset] = None,
    seed: int = 1,
    quick: bool = False,
    workers: Optional[int] = None,
    store=None,
    offline: bool = False,
) -> FigureData:
    """Figure 2: token account strategies, failure-free, N = 5,000.

    ``app`` picks the row: gossip learning (top), push gossip (middle),
    chaotic iteration (bottom).
    """
    applications.get(app)  # fail fast with the registered choices
    scale = scale or current_scale()
    selection = QUICK_SELECTION if quick else REPRESENTATIVE_SELECTION
    smooth = PAPER.smoothing_window if app == "push-gossip" else None
    series, rates = _run_selection(
        app,
        "failure-free",
        scale.n,
        scale.periods,
        scale.repeats,
        selection,
        seed,
        smooth=smooth,
        workers=workers,
        store=store,
        offline=offline,
    )
    return FigureData(
        name=f"figure2-{app}",
        description=f"{app} in the failure-free scenario (N={scale.n})",
        series=series,
        message_rates=rates,
        scale_label=scale.label,
    )


# ----------------------------------------------------------------------
# Figure 3 — smartphone trace scenario
# ----------------------------------------------------------------------
def figure3(
    app: str,
    scale: Optional[ScalePreset] = None,
    seed: int = 1,
    quick: bool = False,
    workers: Optional[int] = None,
    store=None,
    offline: bool = False,
) -> FigureData:
    """Figure 3: strategies over the smartphone trace (gossip learning and
    push gossip only; the paper's Figure 3 excludes chaotic iteration —
    run the trace-driven chaotic combination through ``repro run`` /
    :class:`~repro.scenarios.ScenarioSpec` instead)."""
    applications.get(app)
    if app == "chaotic-iteration":
        raise ValueError("Figure 3 does not include chaotic iteration (§4.2)")
    scale = scale or current_scale()
    selection = QUICK_SELECTION if quick else REPRESENTATIVE_SELECTION
    smooth = PAPER.smoothing_window if app == "push-gossip" else None
    series, rates = _run_selection(
        app,
        "trace",
        scale.n,
        scale.periods,
        scale.repeats,
        selection,
        seed,
        smooth=smooth,
        workers=workers,
        store=store,
        offline=offline,
    )
    return FigureData(
        name=f"figure3-{app}",
        description=f"{app} over the smartphone trace (N={scale.n})",
        series=series,
        message_rates=rates,
        scale_label=scale.label,
    )


# ----------------------------------------------------------------------
# Figure 4 — large-scale failure-free scenario
# ----------------------------------------------------------------------
def figure4(
    app: str,
    scale: Optional[ScalePreset] = None,
    seed: int = 1,
    quick: bool = False,
    workers: Optional[int] = None,
    store=None,
    offline: bool = False,
) -> FigureData:
    """Figure 4: scalability run at the large network size.

    The interesting finite-size effect: the most aggressive reactive
    variants (A=1) are among the worst at small N but among the best at
    large N for gossip learning (§4.2).
    """
    applications.get(app)
    if app == "chaotic-iteration":
        raise ValueError("Figure 4 covers gossip learning and push gossip only")
    scale = scale or current_scale()
    selection = QUICK_SELECTION if quick else REPRESENTATIVE_SELECTION
    # Figure 4 is specifically about the A=1 variants; always include them.
    augmented = list(selection)
    for pick in (("generalized", 1, 5), ("generalized", 1, 10)):
        if pick not in augmented:
            augmented.append(pick)
    smooth = PAPER.smoothing_window if app == "push-gossip" else None
    series, rates = _run_selection(
        app,
        "failure-free",
        scale.n_large,
        scale.periods,
        max(1, scale.repeats // 2),
        augmented,
        seed,
        smooth=smooth,
        workers=workers,
        store=store,
        offline=offline,
    )
    return FigureData(
        name=f"figure4-{app}",
        description=f"{app} failure-free at large scale (N={scale.n_large})",
        series=series,
        message_rates=rates,
        scale_label=scale.label,
    )


# ----------------------------------------------------------------------
# Figure 5 — average token balance vs the mean-field prediction
# ----------------------------------------------------------------------
def figure5(
    scale: Optional[ScalePreset] = None,
    seed: int = 1,
    settings: Sequence[Tuple[int, int]] = ((1, 2), (5, 10), (10, 20), (20, 40)),
    workers: Optional[int] = None,
    store=None,
    offline: bool = False,
) -> FigureData:
    """Figure 5: average token count (gossip learning, randomized strategy).

    For each (A, C) the simulated average balance should settle at the
    §4.3 prediction ``a = A·C/(C+1) ≈ A``. The extras carry both the
    closed-form equilibria and the integrated mean-field trajectories.
    """
    scale = scale or current_scale()
    repeats = scale.repeats
    suite = ExperimentSuite.from_configs(
        "figure5-token-balance",
        [
            ExperimentConfig(
                app="gossip-learning",
                strategy="randomized",
                spend_rate=spend_rate,
                capacity=capacity,
                n=scale.n,
                periods=scale.periods,
                scenario="failure-free",
                seed=seed,
                collect_tokens=True,
            )
            for spend_rate, capacity in settings
        ],
        description=f"token balance fan: {len(settings)} settings x {repeats} seeds",
    ).repeated(repeats)
    results = run_suite(suite, workers=workers, store=store, offline=offline).results()
    series: Dict[str, TimeSeries] = {}
    predictions: Dict[str, float] = {}
    trajectories: Dict[str, object] = {}
    for group, (spend_rate, capacity) in enumerate(settings):
        result = average_results(results[group * repeats : (group + 1) * repeats])
        label = f"A={spend_rate} C={capacity}"
        assert result.tokens is not None
        series[label] = result.tokens
        predictions[label] = randomized_equilibrium(spend_rate, capacity)
        model = MeanFieldModel(
            RandomizedTokenAccount(spend_rate, capacity), result.config.period
        )
        trajectories[label] = model.integrate(result.config.horizon)
    return FigureData(
        name="figure5",
        description=(
            "Average number of tokens over time (gossip learning, randomized "
            "token account) against the mean-field prediction A*C/(C+1)"
        ),
        series=series,
        extras={"predictions": predictions, "meanfield": trajectories},
        scale_label=scale.label,
    )
