"""Export experiment results and figure data to CSV / JSON.

Downstream users typically want the raw series for their own plotting
stack. Two formats:

* **CSV** — one row per sample; figure data is written wide (one column
  per labeled series, empty cells where a series has no sample at that
  time).
* **JSON** — a self-describing document including the configuration, the
  series, and the accounting; round-trips through
  :func:`load_result_json`.

Used by the CLI (``--save out.json`` / ``--save out.csv``) and directly::

    from repro.experiments.export import save_result
    save_result(result, "run.json")
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Dict, Union

from repro.experiments.figures import FigureData
from repro.experiments.runner import ExperimentResult
from repro.experiments.suite import SuiteResult
from repro.metrics.series import TimeSeries
from repro.scenarios import ScenarioSpec

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Experiment results
# ----------------------------------------------------------------------
def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-serializable view of an experiment result.

    ``config`` is the flat :class:`ExperimentConfig` shape for legacy
    runs; results built from a :class:`~repro.scenarios.ScenarioSpec`
    embed the nested spec shape instead and mark it with
    ``"config_format": "scenario-spec-v1"`` so schema-aware consumers
    can branch (the flat shape carries no marker).
    """
    config = dataclasses.asdict(result.config)
    # Tuples are not JSON round-trippable; normalize.
    config = {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in config.items()
    }
    document = {
        "format": "repro-result-v1",
        "label": result.label,
        "config": config,
        **(
            {"config_format": "scenario-spec-v1"}
            if isinstance(result.config, ScenarioSpec)
            else {}
        ),
        "metric": {
            "times": list(result.metric.times),
            "values": list(result.metric.values),
        },
        "data_messages": result.data_messages,
        "messages_per_node_per_period": result.messages_per_node_per_period,
        "network": {
            "sent": result.network.sent,
            "delivered": result.network.delivered,
            "lost_offline": result.network.lost_offline,
            "lost_dropped": result.network.lost_dropped,
            "lost_sender_offline": result.network.lost_sender_offline,
            "by_kind": dict(result.network.by_kind),
        },
        "ratelimit_violations": len(result.ratelimit_violations),
        "surviving_walks": result.surviving_walks,
        "elapsed_seconds": result.elapsed,
    }
    if result.tokens is not None:
        document["tokens"] = {
            "times": list(result.tokens.times),
            "values": list(result.tokens.values),
        }
    return document


def save_result(result: ExperimentResult, path: PathLike) -> None:
    """Write a result as JSON (``.json``) or CSV (anything else)."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        path.write_text(json.dumps(result_to_dict(result), indent=2), encoding="utf-8")
    else:
        _write_series_csv(path, {"metric": result.metric})


def load_result_json(path: PathLike) -> dict:
    """Load a JSON result document, restoring the series objects.

    Returns the document dict with ``metric`` (and ``tokens`` if present)
    replaced by :class:`TimeSeries` instances.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("format") != "repro-result-v1":
        raise ValueError(f"{path}: not a repro result document")
    document["metric"] = TimeSeries(
        zip(document["metric"]["times"], document["metric"]["values"])
    )
    if "tokens" in document:
        document["tokens"] = TimeSeries(
            zip(document["tokens"]["times"], document["tokens"]["values"])
        )
    return document


# ----------------------------------------------------------------------
# Figure data
# ----------------------------------------------------------------------
def figure_to_dict(data: FigureData) -> dict:
    """A JSON-serializable view of a figure's series and metadata."""
    return {
        "format": "repro-figure-v1",
        "name": data.name,
        "description": data.description,
        "scale": data.scale_label,
        "series": {
            label: {"times": list(series.times), "values": list(series.values)}
            for label, series in data.series.items()
        },
        "message_rates": dict(data.message_rates),
        "extras": {
            key: value
            for key, value in data.extras.items()
            if isinstance(value, (int, float, str, dict, list))
        },
    }


def save_figure(data: FigureData, path: PathLike) -> None:
    """Write figure data as JSON (``.json``) or wide CSV (anything else)."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        path.write_text(json.dumps(figure_to_dict(data), indent=2), encoding="utf-8")
    else:
        _write_series_csv(path, data.series)


# ----------------------------------------------------------------------
# Suite results
# ----------------------------------------------------------------------
def suite_to_dict(result: SuiteResult) -> dict:
    """A JSON-serializable view of a parallel suite run.

    Cells carrying :class:`ExperimentResult` payloads are embedded as
    full result documents; custom task payloads degrade to ``repr``.
    """
    cells = []
    for cell in result.cells:
        if isinstance(cell.result, ExperimentResult):
            payload = result_to_dict(cell.result)
        else:
            payload = {"repr": repr(cell.result)}
        cells.append(
            {
                "index": cell.index,
                "label": cell.config.label(),
                "seed": cell.config.seed,
                "wall_seconds": cell.wall_seconds,
                "events_processed": cell.events_processed,
                "cached": cell.cached,
                "result": payload,
            }
        )
    return {
        "format": "repro-suite-v1",
        "name": result.suite_name,
        "workers": result.workers,
        "serial_fallback_reason": result.serial_fallback_reason,
        "cache_hits": result.cache_hits,
        "simulated_cells": result.simulated_cells,
        "wall_seconds": result.wall_seconds,
        "total_cell_seconds": result.total_cell_seconds,
        "virtual_seconds": result.virtual_seconds,
        "total_events": result.total_events,
        "events_per_second": result.events_per_second,
        "cells_per_second": result.cells_per_second,
        "parallel_efficiency": result.parallel_efficiency,
        "cells": cells,
    }


def save_suite(result: SuiteResult, path: PathLike) -> None:
    """Write a suite result document as JSON."""
    Path(path).write_text(json.dumps(suite_to_dict(result), indent=2), encoding="utf-8")


# ----------------------------------------------------------------------
def _write_series_csv(path: Path, series_by_label: Dict[str, TimeSeries]) -> None:
    """Wide CSV: a shared time column plus one column per series."""
    all_times = sorted(
        {time for series in series_by_label.values() for time in series.times}
    )
    lookup = {
        label: dict(zip(series.times, series.values))
        for label, series in series_by_label.items()
    }
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time"] + list(series_by_label))
        for time in all_times:
            row = [repr(time)]
            for label in series_by_label:
                value = lookup[label].get(time)
                row.append("" if value is None else repr(value))
            writer.writerow(row)
