"""Terminal line charts for experiment series.

The evaluation environment has no plotting stack, so the CLI and the
benches can render figures as ASCII charts: one marker character per
series, resampled onto a fixed-size character grid, with optional log
scale (useful for the convergence metrics that span decades).

Example output (two series, 60x12)::

    gossip learning, failure-free
    0.82 |                               bbbbbbbbbbbbbbbbbbbbbb
         |                        bbbbbbb
         |                   bbbbb
         |              bbbbb
         |          bbbb
    0.41 |       bbb
         |     bb
         |    b
         |   b
         |  b
         | b aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa
    0.00 |baa
         +------------------------------------------------------
          0.0h                        24.0h                48.0h
    a = proactive   b = randomized A=10 C=20
"""

from __future__ import annotations

import math
import string
from typing import Dict

from repro.metrics.series import TimeSeries

#: marker characters assigned to series in insertion order
MARKERS = string.ascii_lowercase


def ascii_chart(
    series_by_label: Dict[str, TimeSeries],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
    time_unit: float = 3600.0,
    time_suffix: str = "h",
) -> str:
    """Render several time series as one ASCII line chart.

    Parameters
    ----------
    series_by_label:
        Labeled series; up to 26 (one marker letter each). Later series
        draw over earlier ones where they collide.
    width, height:
        Plot area size in characters (excluding axes).
    log_y:
        Log-scale the value axis; non-positive values are clamped to the
        smallest positive value present.
    title:
        Optional heading line.
    time_unit, time_suffix:
        Scaling for the x-axis labels (default: hours).
    """
    populated = {
        label: series for label, series in series_by_label.items() if not series.empty
    }
    if not populated:
        return "(no data to plot)"
    if len(populated) > len(MARKERS):
        raise ValueError(f"too many series to plot: {len(populated)}")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")

    t_min = min(series.times[0] for series in populated.values())
    t_max = max(series.times[-1] for series in populated.values())
    span = t_max - t_min or 1.0

    values = [v for series in populated.values() for v in series.values]
    if log_y:
        positive = [v for v in values if v > 0]
        if not positive:
            raise ValueError("log scale requires at least one positive value")
        floor = min(positive)
        values = [max(v, floor) for v in values]
    v_min, v_max = min(values), max(values)
    v_span = (v_max - v_min) or 1.0

    def value_to_row(value: float) -> int:
        if log_y:
            value = max(value, v_min)
            position = (math.log(value) - math.log(v_min)) / (
                (math.log(v_max) - math.log(v_min)) or 1.0
            )
        else:
            position = (value - v_min) / v_span
        return min(height - 1, max(0, round(position * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, series) in zip(MARKERS, populated.items()):
        for column in range(width):
            time = t_min + span * column / (width - 1)
            if time < series.times[0] - 1e-9:
                continue
            try:
                value = series.value_at(time)
            except ValueError:
                continue
            row = value_to_row(max(value, v_min) if log_y else value)
            grid[height - 1 - row][column] = marker

    def axis_label(value: float) -> str:
        return f"{value:8.3g}"

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = axis_label(v_max)
        elif row_index == height - 1:
            prefix = axis_label(v_min)
        elif row_index == height // 2:
            midpoint = (
                math.exp((math.log(v_min) + math.log(v_max)) / 2)
                if log_y
                else (v_min + v_max) / 2
            )
            prefix = axis_label(midpoint)
        else:
            prefix = " " * 8
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * 8 + " +" + "-" * width)
    left = f"{t_min / time_unit:.1f}{time_suffix}"
    right = f"{t_max / time_unit:.1f}{time_suffix}"
    middle = f"{(t_min + span / 2) / time_unit:.1f}{time_suffix}"
    gap_total = width - len(left) - len(middle) - len(right)
    gap = max(1, gap_total // 2)
    lines.append(" " * 10 + left + " " * gap + middle + " " * gap + right)
    legend = "   ".join(
        f"{marker} = {label}" for marker, label in zip(MARKERS, populated)
    )
    lines.append(legend)
    return "\n".join(lines)
