"""Parallel orchestration of experiment suites.

The paper's evaluation is a large fan of *independent* simulation runs:
a 63-cell (A, C) grid per strategy and application (§4.2), ten-seed
repetition fans behind every figure curve, and five figures. Each cell
is a self-contained :class:`~repro.experiments.config.ExperimentConfig`
whose seed fully determines its outcome — an embarrassingly parallel
workload. This module turns such fans into first-class objects:

* :class:`ExperimentSuite` — a named, ordered bundle of configs with
  builders for grids (:meth:`ExperimentSuite.from_grid`) and repetition
  fans (:meth:`ExperimentSuite.repeated`);
* :class:`SuiteRunner` — executes the cells, in-process or across a
  ``concurrent.futures.ProcessPoolExecutor``, with worker-count control
  (the ``REPRO_WORKERS`` environment variable, default
  ``os.cpu_count()``), progress/ETA callbacks, and fail-fast error
  propagation;
* :class:`SuiteResult` — per-cell results *in suite order* plus
  wall-clock vs. virtual-time throughput aggregates.

Determinism contract: cell results depend only on each cell's config
(never on scheduling), and :class:`SuiteResult` orders cells by suite
index — so the same suite produces identical results for any worker
count, including the serial fallback used where ``fork`` is
unavailable.
"""

from __future__ import annotations

import itertools
import multiprocessing
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.runner import (
    ConfigLike,
    ExperimentResult,
    replicate_seeds,
    run_experiment,
)
from repro.experiments.scale import worker_count
from repro.store import ResultStore, StoreMissError

#: signature of a cell task: one config in, one (picklable) result out.
#: Cells are :class:`ExperimentConfig` or :class:`ScenarioSpec` — both
#: frozen, picklable and seed-complete — and may be mixed in one suite.
CellTask = Callable[[ConfigLike], Any]

#: seed spacing between repetition fans (matches ``run_averaged``)
REPEAT_SEED_OFFSET = 1000


# ----------------------------------------------------------------------
# The declarative bundle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSuite:
    """A named, ordered bundle of experiment configurations.

    The order of ``configs`` is the order of the cells in the
    :class:`SuiteResult`; builders and callers rely on it to map cells
    back to grid coordinates or repetition groups by index arithmetic.
    """

    name: str
    configs: Tuple[ConfigLike, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.configs:
            raise ValueError(f"suite {self.name!r} has no configs")

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self) -> Iterator[ConfigLike]:
        return iter(self.configs)

    # ------------------------------------------------------------------
    @classmethod
    def from_configs(
        cls,
        name: str,
        configs: Iterable[ConfigLike],
        description: str = "",
    ) -> "ExperimentSuite":
        """Bundle an explicit config sequence into a named suite."""
        return cls(name=name, configs=tuple(configs), description=description)

    @classmethod
    def from_grid(
        cls,
        name: str,
        base: ConfigLike,
        description: str = "",
        **axes: Sequence[Any],
    ) -> "ExperimentSuite":
        """Cartesian product of config-field axes over a base config.

        ``axes`` maps config (or spec) field names to value
        sequences; the grid is enumerated in row-major order with the
        *last* keyword varying fastest (like nested loops)::

            suite = ExperimentSuite.from_grid(
                "ac-grid", base, spend_rate=(1, 5), capacity=(10, 20)
            )
        """
        if not axes:
            raise ValueError("from_grid needs at least one axis")
        names = list(axes)
        configs = [
            base.with_overrides(**dict(zip(names, combo)))
            for combo in itertools.product(*(axes[k] for k in names))
        ]
        return cls(name=name, configs=tuple(configs), description=description)

    def repeated(
        self, repeats: int, seed_offset: int = REPEAT_SEED_OFFSET
    ) -> "ExperimentSuite":
        """Fan every cell into ``repeats`` deterministic seed variants.

        Cell ``i`` of the original suite becomes cells
        ``[i * repeats, (i + 1) * repeats)`` with seeds
        ``seed + j * seed_offset`` — the same seeds
        :func:`repro.experiments.runner.run_averaged` uses, so averaging
        the fan reproduces the serial path bit-for-bit.
        """
        if repeats == 1:
            return self
        fanned = [
            variant
            for config in self.configs
            for variant in replicate_seeds(config, repeats, seed_offset)
        ]
        return ExperimentSuite(
            name=self.name,
            configs=tuple(fanned),
            description=self.description,
        )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """One executed cell: its config, payload, and worker-side timing."""

    index: int
    config: ConfigLike
    #: whatever the task returned; :class:`ExperimentResult` by default
    result: Any
    #: wall-clock seconds the cell took inside its worker (0.0 when the
    #: result came out of the store instead of a simulation)
    wall_seconds: float
    #: whether the result was served from the result store (cache hit)
    cached: bool = False

    @property
    def events_processed(self) -> int:
        """Engine events the cell's simulation processed."""
        return getattr(self.result, "events_processed", 0)


@dataclass
class SuiteResult:
    """All cells of one suite run, in suite order, plus aggregates."""

    suite_name: str
    cells: List[CellResult]
    #: worker processes used (1 = in-process serial execution)
    workers: int
    #: wall-clock seconds for the whole suite (orchestrator-side)
    wall_seconds: float
    #: why execution fell back to serial, if it did (e.g. "no-fork")
    serial_fallback_reason: Optional[str] = None

    def results(self) -> List[Any]:
        """The per-cell payloads, in suite order."""
        return [cell.result for cell in self.cells]

    # ------------------------------------------------------------------
    # Throughput accounting
    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        """Engine events processed across all cells."""
        return sum(cell.events_processed for cell in self.cells)

    @property
    def total_cell_seconds(self) -> float:
        """Sum of per-cell wall times (the serial-equivalent cost)."""
        return sum(cell.wall_seconds for cell in self.cells)

    @property
    def virtual_seconds(self) -> float:
        """Total simulated virtual time across all cells."""
        return sum(cell.config.horizon for cell in self.cells)

    @property
    def events_per_second(self) -> float:
        """Engine events per wall-clock second, across workers."""
        return self.total_events / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def cells_per_second(self) -> float:
        """Finished cells (cached or simulated) per wall-clock second."""
        return len(self.cells) / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def cache_hits(self) -> int:
        """How many cells were served from the result store."""
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def simulated_cells(self) -> int:
        """How many cells were actually executed (store misses)."""
        return len(self.cells) - self.cache_hits

    @property
    def parallel_efficiency(self) -> float:
        """Aggregate cell time over (wall time x workers); 1.0 is ideal."""
        denominator = self.wall_seconds * self.workers
        return self.total_cell_seconds / denominator if denominator else 0.0

    def summary(self) -> str:
        """One-line human-readable digest."""
        cached = f", {self.cache_hits} cached" if self.cache_hits else ""
        return (
            f"{self.suite_name}: {len(self.cells)} cells{cached} in "
            f"{self.wall_seconds:.2f}s with {self.workers} worker(s) — "
            f"{self.events_per_second:,.0f} events/s, "
            f"{self.cells_per_second:.2f} cells/s, "
            f"efficiency {self.parallel_efficiency:.0%}"
        )


class SuiteExecutionError(RuntimeError):
    """A cell failed; carries the cell's index and config.

    Raised by :meth:`SuiteRunner.run` with the original exception as
    ``__cause__`` — identically for serial and pooled execution, so
    callers handle worker failures the same way on every platform.
    """

    def __init__(self, index: int, config: ConfigLike, cause: BaseException):
        super().__init__(
            f"suite cell {index} ({config.label()}, seed={config.seed}) "
            f"failed: {cause!r}"
        )
        self.index = index
        self.config = config


@dataclass
class SuiteProgress:
    """A progress snapshot passed to the runner's callback per cell."""

    suite_name: str
    done: int
    total: int
    #: index of the cell that just finished
    index: int
    #: orchestrator wall-clock seconds since the suite started
    elapsed: float

    @property
    def eta_seconds(self) -> float:
        """Remaining-time estimate from the mean cell throughput so far."""
        if not self.done:
            return float("inf")
        return self.elapsed / self.done * (self.total - self.done)

    def render(self) -> str:
        """One status line: done/total cells, elapsed seconds, ETA."""
        eta = self.eta_seconds
        eta_text = "?" if eta == float("inf") else f"{eta:.0f}s"
        return (
            f"[{self.suite_name}] {self.done}/{self.total} cells "
            f"({self.elapsed:.1f}s elapsed, eta {eta_text})"
        )


def print_progress(progress: SuiteProgress) -> None:
    """A ready-made progress callback that writes to stderr."""
    print(progress.render(), file=sys.stderr)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute_cell(
    task: CellTask, index: int, config: ConfigLike
) -> Tuple[int, Any, float]:
    """Worker-side wrapper: run one cell and time it."""
    started = time.perf_counter()
    result = task(config)
    return index, result, time.perf_counter() - started


def _fork_available() -> bool:
    """True when worker processes can be safely forked.

    The pool path requires real ``fork``: ``spawn`` (Windows, macOS
    default) would re-import the repro package in a fresh interpreter
    that may not have it on ``sys.path`` when the caller relies on the
    ``PYTHONPATH=src`` shim. Forking is only trusted where it is the
    platform default (Linux) — macOS offers ``fork`` but CPython made
    ``spawn`` its default there because forked children can abort
    inside system frameworks — so everything else degrades to serial.
    """
    return (
        sys.platform.startswith("linux")
        and "fork" in multiprocessing.get_all_start_methods()
    )


class SuiteRunner:
    """Execute an :class:`ExperimentSuite`, serially or across processes.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` resolves via :func:`worker_count`
        (``REPRO_WORKERS`` or the CPU count). 1 runs in-process.
    task:
        The per-cell function, ``config -> result``. Defaults to
        :func:`repro.experiments.runner.run_experiment`. Must be a
        module-level callable (pickled to workers).
    progress:
        Optional callback receiving a :class:`SuiteProgress` after every
        finished cell (see :func:`print_progress`).
    max_queue_factor:
        How many cells are in flight per worker at once. Bounding the
        queue keeps memory flat on huge suites while still overlapping
        scheduling with execution.
    store:
        Optional :class:`~repro.store.ResultStore`. Before dispatching a
        cell the runner checks the store and serves hits without
        simulating; every miss is persisted on completion, so a killed
        suite resumes from the cells it already finished (and a warm
        rerun simulates nothing at all).
    offline:
        Require every cell to come from ``store``; any miss raises
        :class:`~repro.store.StoreMissError` before anything executes.
        This is how ``repro report`` guarantees zero simulation.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        task: CellTask = run_experiment,
        progress: Optional[Callable[[SuiteProgress], None]] = None,
        max_queue_factor: int = 2,
        store: Optional[ResultStore] = None,
        offline: bool = False,
    ):
        self.workers = worker_count(workers)
        self.task = task
        self.progress = progress
        if max_queue_factor < 1:
            raise ValueError(f"max_queue_factor must be >= 1, got {max_queue_factor}")
        self.max_queue_factor = max_queue_factor
        if offline and store is None:
            raise ValueError("offline=True requires a result store")
        self.store = store
        self.offline = offline

    # ------------------------------------------------------------------
    def run(self, suite: ExperimentSuite) -> SuiteResult:
        """Run every cell; raise :class:`SuiteExecutionError` on failure.

        Results are assembled in suite order regardless of completion
        order. On failure the lowest-indexed failing cell wins and
        remaining queued cells are cancelled (in-flight cells finish).
        With a store attached, cached cells are served first and only
        the misses execute (each persisted the moment it completes).
        """
        started = time.perf_counter()
        workers = self.workers
        fallback_reason = None
        cached, pending = self._partition(suite)
        if self.offline and pending:
            raise StoreMissError(
                suite.name, [config for _, config in pending], self.store.root
            )
        if workers > 1 and not _fork_available():
            workers = 1
            fallback_reason = "no-fork"
        if not pending:
            executed: Dict[int, CellResult] = {}
        elif workers > 1:
            executed = self._run_pooled(suite, pending, len(cached), workers)
        else:
            executed = self._run_serial(suite, pending, len(cached))
        executed.update(cached)
        return SuiteResult(
            suite_name=suite.name,
            cells=[executed[i] for i in sorted(executed)],
            workers=workers,
            wall_seconds=time.perf_counter() - started,
            serial_fallback_reason=fallback_reason,
        )

    # ------------------------------------------------------------------
    def _partition(
        self, suite: ExperimentSuite
    ) -> Tuple[Dict[int, CellResult], List[Tuple[int, ConfigLike]]]:
        """Split the suite into store hits and cells that must execute."""
        cached: Dict[int, CellResult] = {}
        pending: List[Tuple[int, ConfigLike]] = []
        if self.store is None:
            return cached, list(enumerate(suite))
        for index, config in enumerate(suite):
            hit = self.store.get(config, task=self.task)
            if hit is not None:
                cached[index] = CellResult(
                    index=index,
                    config=config,
                    result=hit,
                    wall_seconds=0.0,
                    cached=True,
                )
            else:
                pending.append((index, config))
        return cached, pending

    def _persist(self, config: ConfigLike, result: Any) -> None:
        """Write one finished cell to the store (when one is attached)."""
        if self.store is not None:
            self.store.put(config, result, task=self.task)

    def _report(self, suite: ExperimentSuite, done: int, index: int, t0: float) -> None:
        if self.progress is None:
            return
        self.progress(
            SuiteProgress(
                suite_name=suite.name,
                done=done,
                total=len(suite),
                index=index,
                elapsed=time.perf_counter() - t0,
            )
        )

    def _run_serial(
        self,
        suite: ExperimentSuite,
        pending: List[Tuple[int, ConfigLike]],
        base_done: int,
    ) -> Dict[int, CellResult]:
        t0 = time.perf_counter()
        cells: Dict[int, CellResult] = {}
        for index, config in pending:
            try:
                _, result, wall = _execute_cell(self.task, index, config)
            except Exception as error:
                raise SuiteExecutionError(index, config, error) from error
            self._persist(config, result)
            cells[index] = CellResult(
                index=index, config=config, result=result, wall_seconds=wall
            )
            self._report(suite, base_done + len(cells), index, t0)
        return cells

    def _run_pooled(
        self,
        suite: ExperimentSuite,
        pending: List[Tuple[int, ConfigLike]],
        base_done: int,
        workers: int,
    ) -> Dict[int, CellResult]:
        t0 = time.perf_counter()
        by_index: Dict[int, CellResult] = {}
        window = workers * self.max_queue_factor
        queue = iter(pending)
        failure: Optional[SuiteExecutionError] = None
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            in_flight = {}
            for index, config in itertools.islice(queue, window):
                in_flight[pool.submit(_execute_cell, self.task, index, config)] = (
                    index,
                    config,
                )
            while in_flight:
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in finished:
                    index, config = in_flight.pop(future)
                    try:
                        cell_index, result, wall = future.result()
                    except Exception as error:
                        candidate = SuiteExecutionError(index, config, error)
                        candidate.__cause__ = error
                        if failure is None or index < failure.index:
                            failure = candidate
                        continue
                    self._persist(config, result)
                    by_index[cell_index] = CellResult(
                        index=cell_index,
                        config=config,
                        result=result,
                        wall_seconds=wall,
                    )
                    self._report(suite, base_done + len(by_index), cell_index, t0)
                if failure is None:
                    for index, config in itertools.islice(
                        queue, window - len(in_flight)
                    ):
                        in_flight[
                            pool.submit(_execute_cell, self.task, index, config)
                        ] = (index, config)
        if failure is not None:
            raise failure
        return by_index


# ----------------------------------------------------------------------
# Convenience entry points
# ----------------------------------------------------------------------
def run_suite(
    suite: ExperimentSuite,
    workers: Optional[int] = None,
    progress: Optional[Callable[[SuiteProgress], None]] = None,
    store: Optional[ResultStore] = None,
    offline: bool = False,
) -> SuiteResult:
    """Build a :class:`SuiteRunner` and run ``suite`` (one-call helper)."""
    return SuiteRunner(
        workers=workers, progress=progress, store=store, offline=offline
    ).run(suite)


def run_configs(
    name: str,
    configs: Iterable[ConfigLike],
    workers: Optional[int] = None,
    progress: Optional[Callable[[SuiteProgress], None]] = None,
    store: Optional[ResultStore] = None,
) -> List[ExperimentResult]:
    """Run a bag of configs and return their results in input order.

    The minimal bridge for call sites that used to loop over
    :func:`run_experiment`: same inputs, same outputs, parallel inside.
    """
    suite = ExperimentSuite.from_configs(name, configs)
    return run_suite(suite, workers=workers, progress=progress, store=store).results()
