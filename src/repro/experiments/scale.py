"""Scale presets for the benchmark harness.

The paper's evaluation simulates N = 5,000 nodes for 1,000 periods (and
N = 500,000 in Figure 4). A pure-Python discrete-event simulation of the
full setup is hours of wall-clock per run, so the benches run a scaled
configuration by default and accept an environment variable to restore
the paper's numbers::

    REPRO_SCALE=ci      # default: minutes for the whole bench suite
    REPRO_SCALE=medium  # tens of minutes; tighter to the paper's curves
    REPRO_SCALE=paper   # the published N / periods / repetitions

A second knob, ``REPRO_WORKERS``, sets how many worker processes the
suite orchestrator (:mod:`repro.experiments.suite`) fans cells across;
it defaults to the machine's CPU count.

Every scaled-down dimension preserves the phenomena the figures
demonstrate (see DESIGN.md, substitutions 4 and 5): the crossovers happen
within the first quarter of the simulated window and at network sizes two
orders of magnitude below the published ones, because they are driven by
the ratio Δ/transfer-time (fixed at 100, as published) and by the token
parameters A and C (always exactly as published).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ScalePreset:
    """One bench scale: network sizes, horizon, and repetition count."""

    name: str
    #: network size for Figure 2/3/5 style experiments (paper: 5,000)
    n: int
    #: network size for the Figure 4 scalability experiment (paper: 500,000)
    n_large: int
    #: simulated proactive periods (paper: 1,000 = two days)
    periods: int
    #: independent repetitions to average (paper: 10)
    repeats: int
    #: trace segments for the Figure 1 statistics (paper: 40,658)
    trace_users: int

    @property
    def label(self) -> str:
        return (
            f"{self.name}(N={self.n}, N_large={self.n_large}, "
            f"periods={self.periods}, repeats={self.repeats})"
        )


_PRESETS = {
    "smoke": ScalePreset(
        name="smoke", n=60, n_large=150, periods=20, repeats=1, trace_users=300
    ),
    "ci": ScalePreset(
        name="ci", n=400, n_large=2000, periods=200, repeats=1, trace_users=2000
    ),
    "medium": ScalePreset(
        name="medium", n=2000, n_large=20000, periods=500, repeats=2, trace_users=10000
    ),
    "paper": ScalePreset(
        name="paper",
        n=5000,
        n_large=500_000,
        periods=1000,
        repeats=10,
        trace_users=40_658,
    ),
}


def scale_names() -> tuple:
    """Valid ``REPRO_SCALE`` / ``--scale`` preset names, smallest first."""
    return tuple(_PRESETS)


def scale_preset(name: str) -> ScalePreset:
    """Look up one preset by name (the ``--scale`` resolution path).

    This is how an explicit scale choice must be resolved: directly,
    without touching ``REPRO_SCALE``. Mutating the environment instead
    (the old CLI behaviour) leaks the choice into every later
    in-process invocation and into spawned workers.
    """
    try:
        return _PRESETS[name.strip().lower()]
    except KeyError:
        valid = ", ".join(sorted(_PRESETS))
        raise ValueError(f"unknown scale {name!r}; expected one of: {valid}") from None


def current_scale() -> ScalePreset:
    """The scale preset selected by ``REPRO_SCALE`` (default ``ci``)."""
    name = os.environ.get("REPRO_SCALE", "ci").strip().lower()
    try:
        return _PRESETS[name]
    except KeyError:
        valid = ", ".join(sorted(_PRESETS))
        raise ValueError(f"REPRO_SCALE={name!r}; expected one of: {valid}") from None


def worker_count(override: Optional[int] = None) -> int:
    """Resolve the suite worker count (see ``repro.experiments.suite``).

    Precedence: explicit ``override`` > the ``REPRO_WORKERS`` environment
    variable > ``os.cpu_count()``. Always at least 1. Lives here with the
    other environment knob (``REPRO_SCALE``) so that one module defines
    how the process environment shapes a run.
    """
    if override is not None:
        if override < 1:
            raise ValueError(f"worker count must be >= 1, got {override}")
        return override
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_WORKERS={raw!r} is not an integer") from None
        if value < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1
