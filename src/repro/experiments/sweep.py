"""Parameter-space exploration (§4.2).

"The parameter space included all the combinations defined by
A = 1, 2, 5, 10, 15, 20, 40 and C − A = 0, 1, 2, 5, 10, 15, 20, 40, 80
(note that we have to have A ≤ C)."

:func:`parameter_grid` reproduces that grid; :func:`run_sweep` evaluates
a figure-of-merit for every cell so that the bench can print the sweep
table the paper's exploration is based on. At CI scale a thinned grid is
used (the full grid is 63 cells × three strategies).

Cells are independent simulations, so :func:`run_sweep` builds an
:class:`~repro.experiments.suite.ExperimentSuite` and fans them across
worker processes (``REPRO_WORKERS`` / ``workers=``); results are
identical to the serial loop for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.scale import ScalePreset, current_scale
from repro.experiments.suite import ExperimentSuite, run_suite
from repro.registry import strategies

#: the paper's grid (§4.2)
PAPER_A_VALUES: Tuple[int, ...] = (1, 2, 5, 10, 15, 20, 40)
PAPER_C_MINUS_A: Tuple[int, ...] = (0, 1, 2, 5, 10, 15, 20, 40, 80)


def sweepable_strategies() -> Tuple[str, ...]:
    """Registered strategies the (A, C) grid applies to.

    Derived from the registry rather than hard-coded: anything with a
    ``capacity`` parameter can be swept over C, and strategies that also
    declare ``spend_rate`` sweep the full grid. New registered strategies
    show up in ``repro sweep`` / ``repro suite`` automatically.
    """
    return tuple(
        registration.name
        for registration in strategies
        if "capacity" in registration.param_names
    )


def _takes_spend_rate(strategy: str) -> bool:
    return "spend_rate" in strategies.get(strategy).param_names


#: thinned grid used at CI scale
QUICK_A_VALUES: Tuple[int, ...] = (1, 5, 10, 20)
QUICK_C_MINUS_A: Tuple[int, ...] = (0, 5, 10)


def parameter_grid(
    a_values: Sequence[int] = PAPER_A_VALUES,
    c_minus_a: Sequence[int] = PAPER_C_MINUS_A,
) -> List[Tuple[int, int]]:
    """All (A, C) combinations of the paper's sweep, with A <= C."""
    grid = []
    for a in a_values:
        for gap in c_minus_a:
            grid.append((a, a + gap))
    return grid


@dataclass(frozen=True)
class SweepCell:
    """One grid cell's outcome."""

    strategy: str
    spend_rate: int
    capacity: int
    #: the application metric at the end of the run
    final_metric: float
    #: data messages per node per period (rate-limit sanity)
    message_rate: float

    @property
    def label(self) -> str:
        return f"{self.strategy}(A={self.spend_rate}, C={self.capacity})"


def sweep_suite(
    app: str,
    strategy: str,
    scale: Optional[ScalePreset] = None,
    seed: int = 1,
    a_values: Optional[Sequence[int]] = None,
    c_minus_a: Optional[Sequence[int]] = None,
    scenario: str = "failure-free",
) -> Tuple[ExperimentSuite, List[Tuple[int, int]]]:
    """The declarative suite behind :func:`run_sweep`.

    Returns the suite plus the (A, C) coordinates of each cell, in cell
    order, so callers can map results back to grid positions.
    """
    scale = scale or current_scale()
    if a_values is None:
        a_values = PAPER_A_VALUES if scale.name == "paper" else QUICK_A_VALUES
    if c_minus_a is None:
        c_minus_a = PAPER_C_MINUS_A if scale.name == "paper" else QUICK_C_MINUS_A
    takes_spend_rate = _takes_spend_rate(strategy)
    coordinates: List[Tuple[int, int]] = []
    configs: List[ExperimentConfig] = []
    for spend_rate, capacity in parameter_grid(a_values, c_minus_a):
        if not takes_spend_rate and spend_rate != a_values[0]:
            continue  # strategies without an A parameter sweep C only
        coordinates.append((spend_rate, capacity))
        configs.append(
            ExperimentConfig(
                app=app,
                strategy=strategy,
                spend_rate=spend_rate if takes_spend_rate else None,
                capacity=capacity,
                n=scale.n,
                periods=scale.periods,
                scenario=scenario,
                seed=seed,
            )
        )
    suite = ExperimentSuite.from_configs(
        f"sweep-{app}-{strategy}",
        configs,
        description=f"§4.2 (A, C) exploration: {app} / {strategy} / {scenario}",
    )
    return suite, coordinates


def run_sweep(
    app: str,
    strategy: str,
    scale: Optional[ScalePreset] = None,
    seed: int = 1,
    a_values: Optional[Sequence[int]] = None,
    c_minus_a: Optional[Sequence[int]] = None,
    scenario: str = "failure-free",
    workers: Optional[int] = None,
    store=None,
    offline: bool = False,
) -> List[SweepCell]:
    """Evaluate one strategy over the (A, C) grid for one application.

    The figure of merit is the final value of the application's metric
    (relative speed for gossip learning — higher is better; lag for push
    gossip and angle for chaotic iteration — lower is better). Cells run
    in parallel (``workers`` / ``REPRO_WORKERS``); the returned list is
    in grid order regardless of worker scheduling.
    """
    suite, coordinates = sweep_suite(
        app, strategy, scale, seed, a_values, c_minus_a, scenario
    )
    results = run_suite(suite, workers=workers, store=store, offline=offline).results()
    return cells_from_results(strategy, coordinates, results)


def cells_from_results(
    strategy: str,
    coordinates: Sequence[Tuple[int, int]],
    results: Sequence,
) -> List[SweepCell]:
    """Zip grid coordinates with experiment results into sweep cells.

    The single place that defines the sweep's figure of merit (the final
    metric value) — shared by :func:`run_sweep` and the CLI's ``suite``
    command so both always report the same numbers for the same grid.
    """
    return [
        SweepCell(
            strategy=strategy,
            spend_rate=spend_rate,
            capacity=capacity,
            final_metric=result.metric.final(),
            message_rate=result.messages_per_node_per_period,
        )
        for (spend_rate, capacity), result in zip(coordinates, results)
    ]


def format_sweep_table(cells: Sequence[SweepCell], higher_is_better: bool) -> str:
    """Render sweep cells as an A x C matrix with the best cell marked."""
    if not cells:
        return "(empty sweep)"
    a_values = sorted({cell.spend_rate for cell in cells})
    c_values = sorted({cell.capacity for cell in cells})
    lookup: Dict[Tuple[int, int], SweepCell] = {
        (cell.spend_rate, cell.capacity): cell for cell in cells
    }
    best = (max if higher_is_better else min)(cells, key=lambda cell: cell.final_metric)
    corner = "A \\ C"
    header = f"{corner:>8} " + " ".join(f"{c:>10}" for c in c_values)
    lines = [header, "-" * len(header)]
    for a in a_values:
        row = [f"{a:>8} "]
        for c in c_values:
            cell = lookup.get((a, c))
            if cell is None:
                row.append(f"{'-':>10}")
            else:
                marker = "*" if cell is best else " "
                row.append(f"{cell.final_metric:>9.4g}{marker}")
        lines.append(" ".join(row))
    lines.append(f"(* best: {best.label} -> {best.final_metric:.4g})")
    return "\n".join(lines)
