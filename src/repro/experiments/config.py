"""Declarative experiment configuration with the paper's defaults (§4.1).

An :class:`ExperimentConfig` fully determines a run: application,
strategy, parameters A/C, network, timing, scenario and seed. Identical
configs produce identical results.

This is the *flat* legacy surface: a single dataclass whose fields cover
the common knobs of every built-in component. Internally it compiles
into a :class:`~repro.scenarios.ScenarioSpec` (:meth:`ExperimentConfig.to_spec`)
— the declarative app x strategy x overlay x churn x network composition
the runner actually builds — and all validation is delegated to the
component registries, so the accepted values for ``app``, ``strategy``,
``overlay`` and ``scenario`` are exactly the registered ones.

The module constant :data:`PAPER` (re-exported from
:mod:`repro.scenarios`) collects the published constants: Δ = 172.8 s
(1,000 periods over two days), transfer time 1.728 s (Δ/100), 20-out
overlay, Watts–Strogatz (4, 0.01) for chaotic iteration, one update
injection per 17.28 s for push gossip, zero initial tokens.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Optional

from repro.core.strategies import Strategy, make_strategy
from repro.registry import applications, overlays, strategies
from repro.scenarios import (
    PAPER,
    SCENARIOS,
    ComponentRef,
    NetworkSpec,
    PaperConstants,
    ScenarioSpec,
    scenario_preset,
)

__all__ = [
    "APPLICATIONS",
    "PAPER",
    "PaperConstants",
    "SCENARIOS",
    "ExperimentConfig",
]

#: applications known to the runner — derived from the registry
APPLICATIONS = applications.names()

#: legacy config fields feeding each overlay's parameters
_OVERLAY_LEGACY_PARAMS = {
    "kout": {"k": "out_degree"},
    "watts-strogatz": {"degree": "ws_degree", "rewire": "ws_rewire"},
}

#: legacy config fields forwarded as application parameters (same name
#: on both sides; filtered per app by the parameters the registered
#: plugin actually declares)
_APP_LEGACY_FIELDS = (
    "grading_scale",
    "pull_on_rejoin",
    "inject_interval",
    "reactive_injection",
    "target_replication",
    "objects_per_node",
    "fail_fraction",
    "fail_window",
    "detection_delay",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one simulation run.

    Parameters mirror the paper: ``strategy`` is one of ``proactive`` /
    ``simple`` / ``generalized`` / ``randomized`` (plus the ``reactive``
    reference and the graded extensions), ``spend_rate`` is A,
    ``capacity`` is C. ``repro list`` enumerates every registered
    component with its parameter schema.
    """

    app: str
    strategy: str
    spend_rate: Optional[int] = None
    capacity: Optional[int] = None
    n: int = PAPER.n_small
    periods: int = PAPER.periods
    period: float = PAPER.period
    transfer_time: float = PAPER.transfer_time
    scenario: str = "failure-free"
    seed: int = 1
    #: overlay registry name; ``None`` uses the app's default (§4.1:
    #: k-out for gossip, Watts–Strogatz for chaotic iteration)
    overlay: Optional[str] = None
    out_degree: int = PAPER.out_degree
    ws_degree: int = PAPER.ws_degree
    ws_rewire: float = PAPER.ws_rewire
    inject_interval: float = PAPER.inject_interval
    initial_tokens: int = PAPER.initial_tokens
    #: metric sampling interval; defaults to Δ/2
    sample_interval: Optional[float] = None
    #: collect the average token balance series (Figure 5)
    collect_tokens: bool = False
    #: record per-node send timestamps for burst auditing
    audit_sends: bool = False
    #: §4.1.2 pull request on rejoin (churn scenarios, push gossip)
    pull_on_rejoin: bool = True
    #: ablation: route injected updates through the reactive path
    reactive_injection: bool = False
    #: purely reactive reference fanout (strategy == "reactive" only)
    reactive_fanout: int = 1
    #: i.i.d. in-transit message drop probability (fault injection; the
    #: paper's default is reliable transfer, i.e. 0.0)
    loss_rate: float = 0.0
    #: relative uniform jitter on the per-message transfer time (0.0
    #: keeps the paper's deterministic latency)
    transfer_jitter: float = 0.0
    #: heterogeneous proactive periods: each node's period is drawn
    #: uniformly from ``period * (1 ± period_spread)``
    period_spread: float = 0.0
    #: graded usefulness scale (§3.1 future work); None keeps the
    #: paper's boolean usefulness
    grading_scale: Optional[float] = None
    #: replication-repair (§5 extension): replicas per object
    target_replication: int = 3
    #: replication-repair: objects placed per node
    objects_per_node: float = 1.0
    #: replication-repair: fraction of nodes failing permanently
    fail_fraction: float = 0.2
    #: replication-repair: failure window as fractions of the horizon
    #: (narrow window = correlated failure burst)
    fail_window: tuple = (0.25, 0.35)
    #: replication-repair: failure detection delay; None = one period
    detection_delay: Optional[float] = None
    #: simulation backend registry name (``"event"`` = the exact
    #: discrete-event reference, ``"vectorized"`` = the bulk-synchronous
    #: NumPy engine for large N; see :mod:`repro.backends`)
    backend: str = "event"

    def __post_init__(self) -> None:
        # Compiling to a spec runs the full registry validation chain:
        # unknown components, parameter schemas, strategy/plugin value
        # checks and churn compatibility all fail fast here.
        self.to_spec()

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> float:
        """Total simulated time in seconds."""
        return self.periods * self.period

    @property
    def effective_sample_interval(self) -> float:
        return self.sample_interval if self.sample_interval else self.period / 2

    # ------------------------------------------------------------------
    def to_spec(self) -> ScenarioSpec:
        """Compile into the declarative :class:`ScenarioSpec`.

        Legacy flat fields are routed to the component that declares
        them: ``out_degree`` feeds the k-out overlay, ``grading_scale``
        whichever app is selected, and so on. The reverse mapping does
        not exist — specs are the richer surface.

        The compiled spec is memoized (both dataclasses are frozen, so
        it can never go stale): ``__post_init__`` validation and the
        runner share one compilation instead of re-validating the whole
        registry chain per call.
        """
        cached = self.__dict__.get("_compiled_spec")
        if cached is not None:
            return cached
        preset = scenario_preset(self.scenario)
        app_registration = applications.get(self.app)
        app_params = {
            name: getattr(self, name)
            for name in _APP_LEGACY_FIELDS
            if name in app_registration.param_names
        }

        strategy_params = strategies.get(self.strategy).filter_params(
            {
                "spend_rate": self.spend_rate,
                "capacity": self.capacity,
                "fanout": self.reactive_fanout,
            }
        )

        overlay_name = (
            self.overlay
            if self.overlay is not None
            else app_registration.factory.default_overlay
        )
        overlay_registration = overlays.get(overlay_name)
        overlay_params = {
            param: getattr(self, field)
            for param, field in _OVERLAY_LEGACY_PARAMS.get(overlay_name, {}).items()
            if param in overlay_registration.param_names
        }

        spec = ScenarioSpec(
            app=ComponentRef.of(self.app, **app_params),
            strategy=ComponentRef.of(self.strategy, **strategy_params),
            overlay=ComponentRef.of(overlay_name, **overlay_params),
            churn=preset.churn,
            network=NetworkSpec(
                transfer_time=self.transfer_time,
                loss_rate=self.loss_rate,
                transfer_jitter=self.transfer_jitter,
            ),
            n=self.n,
            periods=self.periods,
            period=self.period,
            period_spread=self.period_spread,
            seed=self.seed,
            initial_tokens=self.initial_tokens,
            sample_interval=self.sample_interval,
            collect_tokens=self.collect_tokens,
            audit_sends=self.audit_sends,
            backend=self.backend,
        )
        # Frozen dataclass: cache via __dict__, not setattr.
        object.__setattr__(self, "_compiled_spec", spec)
        return spec

    def make_strategy(self) -> Strategy:
        """Instantiate the configured strategy."""
        return make_strategy(
            self.strategy,
            spend_rate=self.spend_rate,
            capacity=self.capacity,
            fanout=self.reactive_fanout,
        )

    def label(self) -> str:
        """Short human-readable label for reports and plots."""
        return f"{self.app}/{self.make_strategy().describe()}/{self.scenario}"

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    def canonical_dict(self) -> dict:
        """A canonical, JSON-ready identity dict for content hashing.

        Mirrors :meth:`repro.scenarios.ScenarioSpec.canonical_dict`: the
        result store keys flat legacy configs by their own fields (not
        by the compiled spec), so the two surfaces never share cache
        entries — a hit always returns a result whose ``config`` field
        is bit-identical to the one requested.
        """
        return {"kind": type(self).__name__, "fields": asdict(self)}
