"""Declarative experiment configuration with the paper's defaults (§4.1).

An :class:`ExperimentConfig` fully determines a run: application,
strategy, parameters A/C, network, timing, scenario and seed. Identical
configs produce identical results.

The module constant :data:`PAPER` collects the published constants:
Δ = 172.8 s (1,000 periods over two days), transfer time 1.728 s (Δ/100),
20-out overlay, Watts–Strogatz (4, 0.01) for chaotic iteration, one
update injection per 17.28 s for push gossip, zero initial tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.strategies import Strategy, make_strategy

#: applications known to the runner
APPLICATIONS = (
    "gossip-learning",
    "push-gossip",
    "push-pull-gossip",
    "chaotic-iteration",
    "replication-repair",
)

#: scenarios known to the runner
SCENARIOS = ("failure-free", "trace")


@dataclass(frozen=True)
class PaperConstants:
    """The fixed experimental constants of §4.1."""

    #: proactive period Δ in seconds ("allowing for 1000 periods during
    #: the two-day interval")
    period: float = 172.8
    #: transfer time for one message ("1.728 s, a hundredth of the
    #: proactive period")
    transfer_time: float = 1.728
    #: out-degree of the random overlay ("a fixed 20-out network")
    out_degree: int = 20
    #: Watts–Strogatz ring degree ("connected to its closest 4 neighbors")
    ws_degree: int = 4
    #: Watts–Strogatz rewiring probability ("a probability of 0.01")
    ws_rewire: float = 0.01
    #: push gossip injection period ("17.28 s, that is, ... 10 updates in
    #: every proactive period")
    inject_interval: float = 17.28
    #: initial tokens ("the number of initial tokens ... is zero")
    initial_tokens: int = 0
    #: push gossip smoothing window ("averaging measurements over 15
    #: minute periods")
    smoothing_window: float = 900.0
    #: network sizes of the paper's experiments
    n_small: int = 5000
    n_large: int = 500_000
    periods: int = 1000


PAPER = PaperConstants()


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one simulation run.

    Parameters mirror the paper: ``strategy`` is one of ``proactive`` /
    ``simple`` / ``generalized`` / ``randomized`` (plus the ``reactive``
    reference), ``spend_rate`` is A, ``capacity`` is C.
    """

    app: str
    strategy: str
    spend_rate: Optional[int] = None
    capacity: Optional[int] = None
    n: int = PAPER.n_small
    periods: int = PAPER.periods
    period: float = PAPER.period
    transfer_time: float = PAPER.transfer_time
    scenario: str = "failure-free"
    seed: int = 1
    out_degree: int = PAPER.out_degree
    ws_degree: int = PAPER.ws_degree
    ws_rewire: float = PAPER.ws_rewire
    inject_interval: float = PAPER.inject_interval
    initial_tokens: int = PAPER.initial_tokens
    #: metric sampling interval; defaults to Δ/2
    sample_interval: Optional[float] = None
    #: collect the average token balance series (Figure 5)
    collect_tokens: bool = False
    #: record per-node send timestamps for burst auditing
    audit_sends: bool = False
    #: §4.1.2 pull request on rejoin (trace scenario, push gossip)
    pull_on_rejoin: bool = True
    #: ablation: route injected updates through the reactive path
    reactive_injection: bool = False
    #: purely reactive reference fanout (strategy == "reactive" only)
    reactive_fanout: int = 1
    #: i.i.d. in-transit message drop probability (fault injection; the
    #: paper's default is reliable transfer, i.e. 0.0)
    loss_rate: float = 0.0
    #: graded usefulness scale (§3.1 future work); None keeps the
    #: paper's boolean usefulness
    grading_scale: Optional[float] = None
    #: replication-repair (§5 extension): replicas per object
    target_replication: int = 3
    #: replication-repair: objects placed per node
    objects_per_node: float = 1.0
    #: replication-repair: fraction of nodes failing permanently
    fail_fraction: float = 0.2
    #: replication-repair: failure window as fractions of the horizon
    #: (narrow window = correlated failure burst)
    fail_window: tuple = (0.25, 0.35)
    #: replication-repair: failure detection delay; None = one period
    detection_delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.app not in APPLICATIONS:
            raise ValueError(
                f"unknown app {self.app!r}; expected one of {APPLICATIONS}"
            )
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; expected one of {SCENARIOS}"
            )
        if self.app == "chaotic-iteration" and self.scenario == "trace":
            raise ValueError(
                "chaotic iteration is not defined under churn (§4.2: 'it is "
                "not possible to define convergence for this application')"
            )
        if self.app == "replication-repair":
            if self.scenario == "trace":
                raise ValueError(
                    "replication-repair uses permanent failures, not the "
                    "churn trace (offline != failed)"
                )
            if not 0.0 <= self.fail_fraction < 1.0:
                raise ValueError(
                    f"fail_fraction must be in [0, 1), got {self.fail_fraction}"
                )
            if not 0.0 <= self.fail_window[0] <= self.fail_window[1] <= 1.0:
                raise ValueError(f"invalid fail_window {self.fail_window}")
            if self.target_replication < 1:
                raise ValueError("target_replication must be >= 1")
        if self.n < 2:
            raise ValueError(f"need at least 2 nodes, got {self.n}")
        if self.periods < 1:
            raise ValueError(f"need at least 1 period, got {self.periods}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        # Fail fast on invalid strategy parameters.
        self.make_strategy()

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> float:
        """Total simulated time in seconds."""
        return self.periods * self.period

    @property
    def effective_sample_interval(self) -> float:
        return self.sample_interval if self.sample_interval else self.period / 2

    def make_strategy(self) -> Strategy:
        """Instantiate the configured strategy."""
        return make_strategy(
            self.strategy,
            spend_rate=self.spend_rate,
            capacity=self.capacity,
            fanout=self.reactive_fanout,
        )

    def label(self) -> str:
        """Short human-readable label for reports and plots."""
        return f"{self.app}/{self.make_strategy().describe()}/{self.scenario}"

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)
