"""ASCII reporting: series tables and speedup summaries.

The benches print, for every figure, the same series the paper plots —
one column per strategy setting, one row per sample time — plus the
derived headline numbers (speedup over the purely proactive baseline).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.metrics.series import TimeSeries

#: label used for the purely proactive baseline column
PROACTIVE_LABEL = "proactive"


def format_series_table(
    series_by_label: Dict[str, TimeSeries],
    rows: int = 12,
    time_unit: float = 3600.0,
    time_label: str = "t(h)",
    value_format: str = "{:>12.4g}",
) -> str:
    """Render several time series as one aligned ASCII table.

    Sample times are taken from the longest series, thinned to ``rows``
    evenly spaced rows; each other series contributes its most recent
    value at those times.
    """
    if not series_by_label:
        return "(no series)"
    reference = max(series_by_label.values(), key=len)
    if reference.empty:
        return "(empty series)"
    indices = _even_indices(len(reference), rows)
    labels = list(series_by_label)
    header = f"{time_label:>8} " + " ".join(f"{label:>12.12}" for label in labels)
    lines = [header, "-" * len(header)]
    for index in indices:
        time = reference.times[index]
        cells = []
        for label in labels:
            series = series_by_label[label]
            try:
                value = series.value_at(time)
                cells.append(value_format.format(value))
            except ValueError:
                cells.append(f"{'-':>12}")
        lines.append(f"{time / time_unit:>8.2f} " + " ".join(cells))
    return "\n".join(lines)


def _even_indices(length: int, rows: int) -> List[int]:
    if length <= rows:
        return list(range(length))
    step = (length - 1) / (rows - 1)
    return sorted({round(i * step) for i in range(rows)})


# ----------------------------------------------------------------------
# Speedup summaries
# ----------------------------------------------------------------------
def final_value_speedups(
    series_by_label: Dict[str, TimeSeries],
    baseline: str = PROACTIVE_LABEL,
) -> Dict[str, float]:
    """Speedup as ratio of final metric values (higher metric = better).

    Used for gossip learning, whose metric (eq. 6) *is* a relative speed:
    the ratio of final metrics is the paper's "order of magnitude
    speedup ... compared to the purely proactive implementation".
    """
    base = series_by_label[baseline]
    if base.empty or base.final() == 0:
        raise ValueError("baseline series is empty or zero")
    return {
        label: series.final() / base.final()
        for label, series in series_by_label.items()
        if not series.empty
    }


def steady_state_lag_ratios(
    series_by_label: Dict[str, TimeSeries],
    baseline: str = PROACTIVE_LABEL,
    tail_fraction: float = 0.5,
) -> Dict[str, float]:
    """Speedup as ratio of steady-state mean lags (lower lag = better).

    Used for push gossip: the paper reports "the delay of receiving the
    freshest update is one third of that of the proactive
    implementation", i.e. a ratio of steady-state average lags. The mean
    is taken over the last ``tail_fraction`` of each series to skip the
    cold-start transient.
    """
    base = series_by_label[baseline]
    if base.empty:
        raise ValueError("baseline series is empty")
    start = base.times[0] + (base.times[-1] - base.times[0]) * (1 - tail_fraction)
    base_mean = base.mean(start=start)
    ratios = {}
    for label, series in series_by_label.items():
        if series.empty:
            continue
        mean = series.mean(start=start)
        ratios[label] = base_mean / mean if mean > 0 else math.inf
    return ratios


def time_to_threshold_speedups(
    series_by_label: Dict[str, TimeSeries],
    baseline: str = PROACTIVE_LABEL,
    threshold: Optional[float] = None,
) -> Dict[str, Optional[float]]:
    """Speedup as ratio of times to first drop below a threshold.

    Used for chaotic iteration (metric: angle, lower = better). The
    default threshold is the baseline's final angle — "how long does each
    variant take to reach the accuracy the proactive baseline reaches by
    the end of the run". Variants that never reach it map to ``None``.
    """
    base = series_by_label[baseline]
    if base.empty:
        raise ValueError("baseline series is empty")
    if threshold is None:
        threshold = base.final() * 1.0000001  # the baseline itself qualifies
    base_time = base.first_time_below(threshold)
    if base_time is None:
        base_time = base.times[-1]
    speedups: Dict[str, Optional[float]] = {}
    for label, series in series_by_label.items():
        reach = series.first_time_below(threshold)
        speedups[label] = (base_time / reach) if reach and reach > 0 else None
    return speedups


def format_speedups(
    speedups: Dict[str, Optional[float]], title: str = "speedup vs proactive"
) -> str:
    """Render a speedup dictionary as aligned ASCII lines."""
    lines = [title]
    width = max((len(label) for label in speedups), default=8)
    for label, value in speedups.items():
        rendered = f"{value:.2f}x" if value is not None else "n/a"
        lines.append(f"  {label:<{width}}  {rendered}")
    return "\n".join(lines)


def format_messages_per_node(
    rates_by_label: Dict[str, float], period_label: str = "Δ"
) -> str:
    """Render the communication-rate check (§4: 'same overall rate')."""
    lines = [f"data messages per node per {period_label}:"]
    width = max((len(label) for label in rates_by_label), default=8)
    for label, rate in rates_by_label.items():
        lines.append(f"  {label:<{width}}  {rate:.3f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Result-store listings (``repro store ls`` / ``repro store diff``)
# ----------------------------------------------------------------------
def format_store_entries(entries) -> str:
    """Render result-store entries as an aligned ``ls`` table.

    ``entries`` is any iterable of :class:`repro.store.StoreEntry`-like
    objects (key, label, seed, summary dict, created_at, stale flag).
    """
    entries = list(entries)
    if not entries:
        return "(empty store)"
    rows = []
    for entry in sorted(entries, key=lambda e: (e.label, e.seed, e.key)):
        final = entry.summary.get("final_metric")
        size = entry.summary.get("n")
        periods = entry.summary.get("periods")
        rows.append(
            (
                entry.key[:12],
                entry.label,
                str(entry.seed),
                f"{size}x{periods}" if size is not None else "-",
                f"{final:.4g}" if final is not None else "-",
                entry.created_at or "-",
                "stale" if entry.stale else "",
            )
        )
    header = ("key", "label", "seed", "NxP", "final", "created (UTC)", "")
    widths = [
        max(len(row[column]) for row in rows + [header])
        for column in range(len(header))
    ]
    lines = [
        "  ".join(f"{cell:<{widths[i]}}" for i, cell in enumerate(header)).rstrip()
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            "  ".join(f"{cell:<{widths[i]}}" for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_store_diff(report: Dict[str, list], left: str, right: str) -> str:
    """Render a :func:`repro.store.diff_stores` report for the shell."""
    lines = [
        f"A = {left}",
        f"B = {right}",
        f"matching cells:  {len(report['matching'])}",
        f"differing cells: {len(report['differing'])}",
        f"only in A:       {len(report['only_left'])}",
        f"only in B:       {len(report['only_right'])}",
    ]
    for title, bucket in (
        ("differing", "differing"),
        ("only in A", "only_left"),
        ("only in B", "only_right"),
    ):
        for entry in report[bucket]:
            lines.append(
                f"  [{title}] {entry.key[:12]}  {entry.label} seed={entry.seed}"
            )
    return "\n".join(lines)
