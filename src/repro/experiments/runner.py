"""Build and run configured experiments over the component registries.

:func:`run_experiment` is the one-call entry point used by tests,
benches and examples. It accepts either the flat legacy
:class:`~repro.experiments.config.ExperimentConfig` or a declarative
:class:`~repro.scenarios.ScenarioSpec`::

    from repro.experiments import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(
        app="push-gossip", strategy="randomized", spend_rate=10,
        capacity=20, n=500, periods=100, seed=7,
    ))
    print(result.metric.final())

Assembly is entirely registry-driven (no application-specific imports or
branches live here): the spec names an app plugin, a strategy, an
overlay and a churn model by registry name, and :class:`Experiment`
composes them —

* one root seed feeds named streams for overlay wiring, node phases and
  periods, protocol coin flips, peer sampling, churn generation, message
  loss/jitter and workload injection — so changing one component never
  perturbs the randomness of another;
* the churn model may return an availability trace, applied through
  :class:`~repro.churn.schedule.ChurnSchedule`; metrics then average
  over online nodes only;
* the application plugin contributes per-node apps, the optional
  workload driver, named substrate objects and the sampled metric.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.churn.schedule import ChurnSchedule
from repro.core.protocol import TokenAccountNode
from repro.core.ratelimit import RateLimitAuditor
from repro.experiments.config import ExperimentConfig
from repro.metrics.collectors import MetricCollector, TokenBalanceCollector
from repro.metrics.series import TimeSeries
from repro.overlay.peer_sampling import PeerSampler
from repro.registry import BuildContext, churn_models, overlays
from repro.scenarios import ScenarioSpec
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkStats
from repro.sim.randomness import RandomStreams

#: what the runner accepts: the flat veneer or the declarative spec
ConfigLike = Union[ExperimentConfig, ScenarioSpec]


@dataclass
class ExperimentResult:
    """Time series and accounting from one finished run."""

    config: ConfigLike
    label: str
    #: the application's performance metric over time
    metric: TimeSeries
    #: average token balance over time (only when ``collect_tokens``)
    tokens: Optional[TimeSeries]
    #: transport counters
    network: NetworkStats
    #: total Algorithm-4 data messages sent
    data_messages: int
    #: data messages per node per period — the communication *rate*,
    #: which the token account service must keep at the proactive level
    messages_per_node_per_period: float
    #: §3.4 burst-bound violations (only when ``audit_sends``); must be []
    ratelimit_violations: List = field(default_factory=list)
    #: surviving distinct random walks (gossip learning only, §4.2)
    surviving_walks: Optional[int] = None
    #: every key the application plugin's ``result_extras`` returned
    #: (``surviving_walks`` is mirrored into the dedicated field above)
    extras: Dict[str, Any] = field(default_factory=dict)
    #: wall-clock seconds the run took
    elapsed: float = 0.0
    #: engine events processed (throughput accounting: events / elapsed)
    events_processed: int = 0

    def summary(self) -> str:
        """One-line human-readable digest."""
        parts = [
            self.label,
            (
                f"final={self.metric.final():.4g}"
                if not self.metric.empty
                else "final=n/a"
            ),
            f"msgs/node/period={self.messages_per_node_per_period:.3f}",
        ]
        if self.tokens is not None and not self.tokens.empty:
            parts.append(f"avg-tokens={self.tokens.final():.2f}")
        if self.surviving_walks is not None:
            parts.append(f"walks={self.surviving_walks}")
        return "  ".join(parts)


class Experiment:
    """A fully wired simulation, ready to run.

    Substrate objects contributed by the application plugin (placement
    maps, failure detectors/injectors, ...) are exposed as attributes
    under the names the plugin chose; the common ones default to
    ``None`` so callers can probe them uniformly.
    """

    def __init__(self, config: ConfigLike):
        self.config = config
        spec = config.to_spec() if isinstance(config, ExperimentConfig) else config
        self.spec = spec
        streams = RandomStreams(spec.seed)
        self.streams = streams
        self.sim = Simulator()
        net = spec.network
        self.network = Network(
            self.sim,
            net.transfer_time,
            loss_rate=net.loss_rate,
            loss_rng=(streams.stream("message-loss") if net.loss_rate > 0 else None),
            transfer_jitter=net.transfer_jitter,
            transfer_rng=(
                streams.stream("transfer-jitter")
                if net.transfer_jitter > 0
                else None
            ),
        )
        if spec.audit_sends:
            self.network.enable_send_log()
            self.auditor: Optional[RateLimitAuditor] = RateLimitAuditor(self.network)
        else:
            self.auditor = None

        # --- components from the registries ---------------------------
        self.plugin = spec.build_plugin()
        self.strategy = spec.build_strategy()

        # --- overlay -------------------------------------------------
        overlay_ref = spec.resolved_overlay()
        self.overlay = overlays.create(
            overlay_ref.name, spec.n, streams.stream("overlay"), **overlay_ref.kwargs
        )
        self.sampler = PeerSampler(
            self.overlay, self.network, streams.stream("peer-sampling")
        )

        # --- churn ----------------------------------------------------
        self.trace = churn_models.create(
            spec.churn.name,
            spec.n,
            streams.stream("churn"),
            spec.horizon,
            **spec.churn.kwargs,
        )
        self.schedule = ChurnSchedule(self.trace) if self.trace is not None else None

        # --- applications & nodes -------------------------------------
        context = BuildContext(
            spec=spec,
            sim=self.sim,
            network=self.network,
            overlay=self.overlay,
            sampler=self.sampler,
            streams=streams,
        )
        self._context = context
        apps = self.plugin.build_apps(context)
        phase_rng = streams.stream("phases")
        protocol_rng = streams.stream("protocol")
        period_rng = streams.stream("periods") if spec.period_spread > 0 else None
        self.nodes: List[TokenAccountNode] = []
        for node_id in range(spec.n):
            online = True
            if self.schedule is not None:
                online = self.schedule.initial_online(node_id)
            period = spec.period
            if period_rng is not None:
                # Heterogeneous proactive periods: uniform on ±spread.
                period *= 1.0 + spec.period_spread * (2.0 * period_rng.random() - 1.0)
            node = TokenAccountNode(
                node_id=node_id,
                sim=self.sim,
                network=self.network,
                peer_sampler=self.sampler,
                strategy=self.strategy,
                app=apps[node_id],
                period=period,
                rng=protocol_rng,
                initial_tokens=spec.initial_tokens,
                online=online,
            )
            # Each node gets its own phase but shares the protocol rng;
            # event order is deterministic, so this is reproducible and
            # avoids half a million Mersenne Twister states.
            node.process.phase = phase_rng.random() * period
            self.network.register(node)
            self.nodes.append(node)

        # --- application substrate ------------------------------------
        # Core state a plugin's environment keys must not clobber: what
        # exists already, plus the attributes assigned below.
        reserved = set(vars(self)) | {
            "workload",
            "injector",
            "collector",
            "token_collector",
        }
        self.placement = None
        self.failure_detector = None
        self.failure_injector = None
        for name, value in self.plugin.build_environment(
            context, self.nodes, apps
        ).items():
            if name in reserved:
                raise ValueError(
                    f"app {self.plugin.name!r} environment key {name!r} "
                    "collides with core Experiment state"
                )
            setattr(self, name, value)

        # --- bootstrap for never-proactive strategies ------------------
        # The flooding reference never initiates (proactive = 0); kick one
        # message per node at its phase so the cascades exist at all.
        if self.strategy.bootstrap_kick:
            for node in self.nodes:
                self.sim.schedule_at(node.process.phase, node.kick)

        # --- workload -------------------------------------------------
        self.workload = self.plugin.build_workload(context, self.nodes)
        #: legacy alias: push gossip's workload is its update injector
        self.injector = self.workload

        # --- metrics ---------------------------------------------------
        self._metric_obj = self.plugin.build_metric(context, self.nodes, self.workload)
        self.collector = MetricCollector(
            self.sim, spec.effective_sample_interval, self._metric_obj
        )
        self.token_collector: Optional[TokenBalanceCollector] = None
        if spec.collect_tokens:
            self.token_collector = TokenBalanceCollector(
                self.sim, spec.effective_sample_interval, self.nodes
            )

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the run to the horizon and assemble the result."""
        spec = self.spec
        started = _wallclock.perf_counter()
        if self.schedule is not None:
            self.schedule.apply(self.sim, self.nodes)
        for node in self.nodes:
            node.start()
        if self.workload is not None:
            self.workload.start()
        self.collector.start()
        if self.token_collector is not None:
            self.token_collector.start()
        self.sim.run(until=spec.horizon)
        elapsed = _wallclock.perf_counter() - started

        data_messages = self.network.stats.by_kind.get("data", 0)
        violations: List = []
        if self.auditor is not None and self.strategy.token_capacity is not None:
            # With heterogeneous periods the §3.4 bound must hold for the
            # fastest node, so audit against the smallest possible period.
            audit_period = spec.period * (1.0 - spec.period_spread)
            violations = self.auditor.check(audit_period, self.strategy.token_capacity)
        extras = self.plugin.result_extras(self._context, self._metric_obj)
        return ExperimentResult(
            config=self.config,
            label=self.config.label(),
            metric=self.collector.series,
            tokens=(self.token_collector.series if self.token_collector else None),
            network=self.network.stats,
            data_messages=data_messages,
            messages_per_node_per_period=data_messages / (spec.n * spec.periods),
            ratelimit_violations=violations,
            surviving_walks=extras.get("surviving_walks"),
            extras=extras,
            elapsed=elapsed,
            events_processed=self.sim.processed,
        )


def execute_backend(config: ConfigLike) -> ExperimentResult:
    """Dispatch one configuration to its simulation backend.

    The spec's ``backend`` field names a :data:`repro.registry.backends`
    entry (``"event"`` = the exact discrete-event reference built by
    :class:`Experiment`; ``"vectorized"`` = the bulk-synchronous NumPy
    engine). Every execution path — direct runs, suites, sweeps,
    figures — funnels through here, so a suite mixing backends just
    works and the store keys each cell under its backend.
    """
    from repro.registry import backends

    spec = config.to_spec() if isinstance(config, ExperimentConfig) else config
    return backends.create(spec.backend).run(config)


def run_experiment(config: ConfigLike, store=None) -> ExperimentResult:
    """Build and run one experiment (the main library entry point).

    With a :class:`~repro.store.ResultStore` passed as ``store``, the
    run is memoized: a prior result for the same configuration (and
    code-schema version) is returned without simulating, and a fresh
    result is persisted for the next caller. ``None`` (the default)
    always simulates.
    """
    if store is not None:
        cached = store.get(config)
        if cached is not None:
            return cached
    result = execute_backend(config)
    if store is not None:
        store.put(config, result)
    return result


def replicate_seeds(
    config: ConfigLike, repeats: int, seed_offset: int = 1000
) -> List[ConfigLike]:
    """The ``repeats`` seed variants behind an averaged run.

    Every repetition is the same configuration under an independent root
    seed (``seed + i * seed_offset``). Exposed separately from
    :func:`run_averaged` so that a suite can fan the repetitions out to
    worker processes and average afterwards with
    :func:`average_results`.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    return [
        config.with_overrides(seed=config.seed + i * seed_offset)
        for i in range(repeats)
    ]


def run_averaged(
    config: ConfigLike, repeats: int, seed_offset: int = 1000
) -> ExperimentResult:
    """Average the metric over ``repeats`` independent seeds (§4.2 runs 10).

    Series are averaged pointwise; all runs share the sampling grid, so
    this matches the paper's "the average of these runs is shown".
    """
    return average_results(
        [run_experiment(c) for c in replicate_seeds(config, repeats, seed_offset)]
    )


def average_results(results: List[ExperimentResult]) -> ExperimentResult:
    """Merge independent repetitions of one configuration (see §4.2)."""
    if not results:
        raise ValueError("no results to average")
    repeats = len(results)
    if repeats == 1:
        return results[0]
    base = results[0]
    merged_metric = _average_series([r.metric for r in results])
    merged_tokens = None
    if base.tokens is not None:
        merged_tokens = _average_series(
            [r.tokens for r in results if r.tokens is not None]
        )
    total_data = sum(r.data_messages for r in results)
    return ExperimentResult(
        config=base.config,
        label=base.label,
        metric=merged_metric,
        tokens=merged_tokens,
        network=base.network,
        data_messages=total_data // repeats,
        messages_per_node_per_period=(
            sum(r.messages_per_node_per_period for r in results) / repeats
        ),
        ratelimit_violations=[v for r in results for v in r.ratelimit_violations],
        surviving_walks=base.surviving_walks,
        extras=base.extras,
        elapsed=sum(r.elapsed for r in results),
        events_processed=sum(r.events_processed for r in results),
    )


def _average_series(series_list: List[TimeSeries]) -> TimeSeries:
    """Pointwise average of series sharing (approximately) one time grid."""
    if not series_list:
        raise ValueError("no series to average")
    shortest = min(len(s) for s in series_list)
    averaged = TimeSeries()
    for index in range(shortest):
        time = series_list[0].times[index]
        value = sum(s.values[index] for s in series_list) / len(series_list)
        averaged.append(time, value)
    return averaged
