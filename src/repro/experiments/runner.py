"""Build and run configured experiments.

:func:`run_experiment` is the one-call entry point used by tests,
benches and examples::

    from repro.experiments import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(
        app="push-gossip", strategy="randomized", spend_rate=10,
        capacity=20, n=500, periods=100, seed=7,
    ))
    print(result.metric.final())

Assembly (matching §4.1):

* one root seed feeds named streams for overlay wiring, node phases,
  protocol coin flips, peer sampling, churn trace and update injection —
  so changing the strategy does not perturb the overlay or the trace;
* gossip learning and push gossip run over the random 20-out overlay,
  chaotic iteration over the Watts–Strogatz ring;
* in the trace scenario a synthetic STUNner-like trace drives churn and
  metrics average over online nodes only.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.chaotic_iteration import ChaoticIterationMetric, build_chaotic_apps
from repro.apps.gossip_learning import GossipLearningApp, GossipLearningMetric
from repro.apps.replication import (
    FailureDetector,
    PermanentFailureInjector,
    ReplicationApp,
    ReplicationMetric,
    place_objects,
)
from repro.apps.push_gossip import (
    PushGossipApp,
    PushGossipMetric,
    PushPullGossipApp,
    UpdateInjector,
)
from repro.churn.schedule import ChurnSchedule
from repro.churn.stunner import StunnerTraceConfig, generate_stunner_like_trace
from repro.core.protocol import TokenAccountNode
from repro.core.ratelimit import RateLimitAuditor
from repro.experiments.config import ExperimentConfig
from repro.metrics.collectors import MetricCollector, TokenBalanceCollector
from repro.metrics.series import TimeSeries
from repro.overlay.kout import random_kout_overlay
from repro.overlay.peer_sampling import PeerSampler
from repro.overlay.watts_strogatz import watts_strogatz_overlay
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkStats
from repro.sim.randomness import RandomStreams


@dataclass
class ExperimentResult:
    """Time series and accounting from one finished run."""

    config: ExperimentConfig
    label: str
    #: the application's performance metric over time
    metric: TimeSeries
    #: average token balance over time (only when ``collect_tokens``)
    tokens: Optional[TimeSeries]
    #: transport counters
    network: NetworkStats
    #: total Algorithm-4 data messages sent
    data_messages: int
    #: data messages per node per period — the communication *rate*,
    #: which the token account service must keep at the proactive level
    messages_per_node_per_period: float
    #: §3.4 burst-bound violations (only when ``audit_sends``); must be []
    ratelimit_violations: List = field(default_factory=list)
    #: surviving distinct random walks (gossip learning only, §4.2)
    surviving_walks: Optional[int] = None
    #: wall-clock seconds the run took
    elapsed: float = 0.0
    #: engine events processed (throughput accounting: events / elapsed)
    events_processed: int = 0

    def summary(self) -> str:
        """One-line human-readable digest."""
        parts = [
            self.label,
            f"final={self.metric.final():.4g}" if not self.metric.empty else "final=n/a",
            f"msgs/node/period={self.messages_per_node_per_period:.3f}",
        ]
        if self.tokens is not None and not self.tokens.empty:
            parts.append(f"avg-tokens={self.tokens.final():.2f}")
        if self.surviving_walks is not None:
            parts.append(f"walks={self.surviving_walks}")
        return "  ".join(parts)


class Experiment:
    """A fully wired simulation, ready to run."""

    def __init__(self, config: ExperimentConfig):
        self.config = config
        streams = RandomStreams(config.seed)
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            config.transfer_time,
            loss_rate=config.loss_rate,
            loss_rng=(
                streams.stream("message-loss") if config.loss_rate > 0 else None
            ),
        )
        if config.audit_sends:
            self.network.enable_send_log()
            self.auditor: Optional[RateLimitAuditor] = RateLimitAuditor(self.network)
        else:
            self.auditor = None

        # --- overlay -------------------------------------------------
        if config.app == "chaotic-iteration":
            self.overlay = watts_strogatz_overlay(
                config.n, config.ws_degree, config.ws_rewire, streams.stream("overlay")
            )
        else:
            self.overlay = random_kout_overlay(
                config.n, config.out_degree, streams.stream("overlay")
            )
        self.sampler = PeerSampler(
            self.overlay, self.network, streams.stream("peer-sampling")
        )

        # --- churn ----------------------------------------------------
        self.trace = None
        self.schedule = None
        if config.scenario == "trace":
            trace_config = StunnerTraceConfig(horizon=config.horizon)
            self.trace = generate_stunner_like_trace(
                config.n, streams.stream("churn"), trace_config
            )
            self.schedule = ChurnSchedule(self.trace)

        # --- applications & nodes -------------------------------------
        strategy = config.make_strategy()
        phase_rng = streams.stream("phases")
        protocol_rng = streams.stream("protocol")
        if config.app == "chaotic-iteration":
            apps = build_chaotic_apps(
                self.overlay, grading_scale=config.grading_scale
            )
        elif config.app == "gossip-learning":
            apps = [
                GossipLearningApp(grading_scale=config.grading_scale)
                for _ in range(config.n)
            ]
        elif config.app == "replication-repair":
            apps = [
                ReplicationApp(config.target_replication)
                for _ in range(config.n)
            ]
        else:
            app_class = (
                PushPullGossipApp
                if config.app == "push-pull-gossip"
                else PushGossipApp
            )
            apps = [
                app_class(
                    pull_on_rejoin=config.pull_on_rejoin,
                    grading_scale=config.grading_scale,
                )
                for _ in range(config.n)
            ]
        self.nodes: List[TokenAccountNode] = []
        for node_id in range(config.n):
            online = True
            if self.schedule is not None:
                online = self.schedule.initial_online(node_id)
            node = TokenAccountNode(
                node_id=node_id,
                sim=self.sim,
                network=self.network,
                peer_sampler=self.sampler,
                strategy=strategy,
                app=apps[node_id],
                period=config.period,
                rng=protocol_rng,
                initial_tokens=config.initial_tokens,
                online=online,
            )
            # Each node gets its own phase but shares the protocol rng;
            # event order is deterministic, so this is reproducible and
            # avoids half a million Mersenne Twister states.
            node.process.phase = phase_rng.random() * config.period
            self.network.register(node)
            self.nodes.append(node)

        # --- replication-repair substrate -------------------------------
        self.placement = None
        self.failure_injector = None
        self.failure_detector = None
        if config.app == "replication-repair":
            n_objects = max(1, round(config.n * config.objects_per_node))
            self.placement = place_objects(
                apps,
                n_objects,
                config.target_replication,
                streams.stream("placement"),
            )
            self.failure_detector = FailureDetector(
                self.sim,
                self.nodes,
                delay=(
                    config.detection_delay
                    if config.detection_delay is not None
                    else config.period
                ),
            )
            self.failure_injector = PermanentFailureInjector(
                self.sim,
                self.nodes,
                self.failure_detector,
                config.fail_fraction,
                streams.stream("failures"),
                start=config.horizon * config.fail_window[0],
                end=config.horizon * config.fail_window[1],
            )

        # --- purely reactive bootstrap ---------------------------------
        # The flooding reference never initiates (proactive = 0); kick one
        # message per node at its phase so the cascades exist at all.
        if config.strategy == "reactive":
            for node in self.nodes:
                self.sim.schedule_at(node.process.phase, node.kick)

        # --- workload -------------------------------------------------
        self.injector: Optional[UpdateInjector] = None
        if config.app in ("push-gossip", "push-pull-gossip"):
            self.injector = UpdateInjector(
                self.sim,
                self.nodes,
                config.inject_interval,
                streams.stream("injector"),
                reactive_injection=config.reactive_injection,
            )

        # --- metrics ---------------------------------------------------
        if config.app == "gossip-learning":
            self._metric_obj = GossipLearningMetric(self.nodes, config.transfer_time)
        elif config.app in ("push-gossip", "push-pull-gossip"):
            assert self.injector is not None
            self._metric_obj = PushGossipMetric(self.nodes, self.injector)
        elif config.app == "replication-repair":
            n_objects = max(1, round(config.n * config.objects_per_node))
            self._metric_obj = ReplicationMetric(
                self.nodes, n_objects, config.target_replication
            )
        else:
            self._metric_obj = ChaoticIterationMetric(self.nodes, overlay=self.overlay)
        self.collector = MetricCollector(
            self.sim, config.effective_sample_interval, self._metric_obj
        )
        self.token_collector: Optional[TokenBalanceCollector] = None
        if config.collect_tokens:
            self.token_collector = TokenBalanceCollector(
                self.sim, config.effective_sample_interval, self.nodes
            )

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the run to the horizon and assemble the result."""
        config = self.config
        started = _wallclock.perf_counter()
        if self.schedule is not None:
            self.schedule.apply(self.sim, self.nodes)
        for node in self.nodes:
            node.start()
        if self.injector is not None:
            self.injector.start()
        self.collector.start()
        if self.token_collector is not None:
            self.token_collector.start()
        self.sim.run(until=config.horizon)
        elapsed = _wallclock.perf_counter() - started

        data_messages = self.network.stats.by_kind.get("data", 0)
        violations: List = []
        if self.auditor is not None and self.config.strategy != "reactive":
            capacity = config.make_strategy().token_capacity or 0
            violations = self.auditor.check(config.period, capacity)
        surviving = None
        if config.app == "gossip-learning":
            surviving = self._metric_obj.surviving_lineages()  # type: ignore[union-attr]
        return ExperimentResult(
            config=config,
            label=config.label(),
            metric=self.collector.series,
            tokens=(
                self.token_collector.series if self.token_collector else None
            ),
            network=self.network.stats,
            data_messages=data_messages,
            messages_per_node_per_period=data_messages / (config.n * config.periods),
            ratelimit_violations=violations,
            surviving_walks=surviving,
            elapsed=elapsed,
            events_processed=self.sim.processed,
        )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build and run one experiment (the main library entry point)."""
    return Experiment(config).run()


def replicate_seeds(
    config: ExperimentConfig, repeats: int, seed_offset: int = 1000
) -> List[ExperimentConfig]:
    """The ``repeats`` seed variants behind an averaged run.

    Every repetition is the same configuration under an independent root
    seed (``seed + i * seed_offset``). Exposed separately from
    :func:`run_averaged` so that a suite can fan the repetitions out to
    worker processes and average afterwards with
    :func:`average_results`.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    return [
        config.with_overrides(seed=config.seed + i * seed_offset)
        for i in range(repeats)
    ]


def run_averaged(
    config: ExperimentConfig, repeats: int, seed_offset: int = 1000
) -> ExperimentResult:
    """Average the metric over ``repeats`` independent seeds (§4.2 runs 10).

    Series are averaged pointwise; all runs share the sampling grid, so
    this matches the paper's "the average of these runs is shown".
    """
    return average_results(
        [run_experiment(c) for c in replicate_seeds(config, repeats, seed_offset)]
    )


def average_results(results: List[ExperimentResult]) -> ExperimentResult:
    """Merge independent repetitions of one configuration (see §4.2)."""
    if not results:
        raise ValueError("no results to average")
    repeats = len(results)
    if repeats == 1:
        return results[0]
    base = results[0]
    merged_metric = _average_series([r.metric for r in results])
    merged_tokens = None
    if base.tokens is not None:
        merged_tokens = _average_series(
            [r.tokens for r in results if r.tokens is not None]
        )
    total_data = sum(r.data_messages for r in results)
    return ExperimentResult(
        config=base.config,
        label=base.label,
        metric=merged_metric,
        tokens=merged_tokens,
        network=base.network,
        data_messages=total_data // repeats,
        messages_per_node_per_period=(
            sum(r.messages_per_node_per_period for r in results) / repeats
        ),
        ratelimit_violations=[v for r in results for v in r.ratelimit_violations],
        surviving_walks=base.surviving_walks,
        elapsed=sum(r.elapsed for r in results),
        events_processed=sum(r.events_processed for r in results),
    )


def _average_series(series_list: List[TimeSeries]) -> TimeSeries:
    """Pointwise average of series sharing (approximately) one time grid."""
    if not series_list:
        raise ValueError("no series to average")
    shortest = min(len(s) for s in series_list)
    averaged = TimeSeries()
    for index in range(shortest):
        time = series_list[0].times[index]
        value = sum(s.values[index] for s in series_list) / len(series_list)
        averaged.append(time, value)
    return averaged
