"""repro — Token Account Algorithms (Danner & Jelasity, ICDCS 2018).

A production-quality reproduction of *"Token Account Algorithms: The
Best of the Proactive and Reactive Worlds"*: a traffic-shaping service
for decentralized applications that spans the design space between
proactive (fixed-rate) and reactive (event-triggered) communication,
bounding bursts like a token bucket while approaching reactive-speed
convergence.

Quickstart::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(
        app="push-gossip",
        strategy="randomized", spend_rate=10, capacity=20,
        n=500, periods=100, seed=7,
    ))
    print(result.summary())

Package map:

* :mod:`repro.core` — the token account framework (strategies,
  Algorithm 4, burst-bound auditing, §4.3 mean-field model);
* :mod:`repro.sim` — deterministic discrete-event engine;
* :mod:`repro.overlay` — k-out and Watts–Strogatz overlays, peer
  sampling;
* :mod:`repro.churn` — availability traces and the synthetic
  STUNner-like smartphone trace;
* :mod:`repro.apps` — gossip learning, push gossip, chaotic power
  iteration;
* :mod:`repro.metrics` — the paper's performance metrics and collectors;
* :mod:`repro.experiments` — scenario assembly, figure harnesses,
  parameter sweeps, reporting;
* :mod:`repro.store` — content-addressed result store (memoized cells,
  resumable suites, offline ``repro report``).
"""

from repro.core import (
    Application,
    GeneralizedTokenAccount,
    MeanFieldModel,
    ProactiveStrategy,
    PureReactiveStrategy,
    RandomizedTokenAccount,
    RateLimitAuditor,
    SimpleTokenAccount,
    Strategy,
    TokenAccount,
    TokenAccountNode,
    burst_bound,
    make_strategy,
    rand_round,
    randomized_equilibrium,
)
from repro.experiments import ExperimentConfig, run_experiment
from repro.registry import applications, churn_models, overlays, strategies
from repro.scenarios import ComponentRef, NetworkSpec, ScenarioSpec
from repro.store import ResultStore

__version__ = "1.0.0"

__all__ = [
    "Application",
    "ComponentRef",
    "ExperimentConfig",
    "NetworkSpec",
    "ResultStore",
    "ScenarioSpec",
    "applications",
    "churn_models",
    "overlays",
    "strategies",
    "GeneralizedTokenAccount",
    "MeanFieldModel",
    "ProactiveStrategy",
    "PureReactiveStrategy",
    "RandomizedTokenAccount",
    "RateLimitAuditor",
    "SimpleTokenAccount",
    "Strategy",
    "TokenAccount",
    "TokenAccountNode",
    "burst_bound",
    "make_strategy",
    "rand_round",
    "randomized_equilibrium",
    "run_experiment",
    "__version__",
]
