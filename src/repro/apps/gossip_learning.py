"""Gossip learning over the token account service (§2.2, §3.2, §4.1.1).

Models perform random walks through the network; every visited node
applies one SGD step on its single local example and increments the
model's **age** (the number of nodes visited). The paper's evaluation
"did not implement any actual machine learning tasks, but just simulated
the age of the models as this forms the basis of our performance metric";
we do the same by default, and optionally carry a real
:class:`~repro.apps.sgd.LinearRegressionModel` to demonstrate the full
pipeline.

Framework semantics (§3.2):

* ``createMessage`` copies the current state — the walking model token.
* ``updateState(m)`` — "usefulness is 0 if the current model of the node
  is older (in terms of the number of visited nodes) than the received
  model, and 1 otherwise. In the former case, the state is unchanged,
  while in the latter case, the received model is trained on the local
  data and stored as the new state." Training increments the age. Keeping
  only the older walk is the mechanism behind the emergent "evolutionary
  process in which random walks fight for bandwidth" (§4.2).

Metric (eq. 6): the mean over nodes of ``n_i(t) / n*(t)`` where
``n_i(t)`` is the age of the model held by node ``i`` and
``n*(t) = t / transfer_time`` is the age of an ideal never-delayed "hot
potato" walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.apps.sgd import Example, LinearRegressionModel
from repro.core.api import Application
from repro.core.grading import saturating_grade
from repro.core.protocol import TokenAccountNode
from repro.registry import ApplicationPlugin, BuildContext, ParamSpec, applications


@dataclass(frozen=True)
class ModelToken:
    """The walking state: a model identified by lineage, with an age.

    Attributes
    ----------
    age:
        Number of nodes the model has visited (SGD steps applied).
    lineage:
        Id of the node whose ``initModel()`` created this walk; purely
        diagnostic (it lets experiments count surviving walks, §4.2).
    weights:
        Optional real model weights (the age-only evaluation leaves this
        ``None``, exactly like the paper's simulations).
    """

    age: int
    lineage: int
    weights: Optional[Tuple[float, ...]] = None


class GossipLearningApp(Application):
    """Per-node gossip learning logic for the token account framework.

    Parameters
    ----------
    example:
        The node's single local training example ``(x, y)``, or ``None``
        for the age-only simulation used in the paper's evaluation.
    learning_rate:
        SGD step size when a real model is carried.
    always_adopt:
        If ``True``, reproduce classic Algorithm 1 exactly: every
        received model is trained and stored, with no age comparison.
        Only meaningful under the purely proactive baseline (Algorithm 1
        predates the usefulness notion); the framework evaluation keeps
        the default ``False``.
    """

    def __init__(
        self,
        example: Optional[Example] = None,
        learning_rate: float = 0.05,
        always_adopt: bool = False,
        grading_scale: Optional[float] = None,
    ):
        super().__init__()
        self.example = example
        self.learning_rate = learning_rate
        self.always_adopt = always_adopt
        self.grading_scale = grading_scale
        self.age = 0
        self.lineage: Optional[int] = None
        self.model: Optional[LinearRegressionModel] = None
        self.adopted = 0
        self.discarded = 0

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """``initModel()``: a fresh age-0 model rooted at this node."""
        assert self.node is not None
        if self.lineage is None:
            self.lineage = self.node.node_id
            if self.example is not None:
                dimension = len(self.example[0])
                self.model = LinearRegressionModel(dimension)

    # ------------------------------------------------------------------
    # The paper's two methods
    # ------------------------------------------------------------------
    def create_message(self) -> ModelToken:
        weights = self.model.to_payload() if self.model is not None else None
        return ModelToken(self.age, self.lineage or 0, weights)

    def update_state(self, payload: ModelToken, sender: int):
        useful = self.always_adopt or payload.age >= self.age
        if not useful:
            self.discarded += 1
            return False
        # Train the received model on the local example and adopt it.
        age_gain = payload.age + 1 - self.age
        self.age = payload.age + 1
        self.lineage = payload.lineage
        if self.example is not None and payload.weights is not None:
            model = LinearRegressionModel.from_payload(
                payload.weights, len(self.example[0])
            )
            model.sgd_step(self.example[0], self.example[1], self.learning_rate)
            self.model = model
        self.adopted += 1
        if self.grading_scale is not None:
            # Graded usefulness (§3.1 future work): a model far older
            # than the local one is worth proportionally more tokens.
            return saturating_grade(age_gain, self.grading_scale)
        return True


class GossipLearningMetric:
    """Metric eq. (6): mean relative walk speed over online nodes.

    ``metric(t) = (1 / (N·n*(t))) · Σ_i n_i(t)`` with
    ``n*(t) = t / transfer_time``. A value of 1 means every node holds a
    model as old as the ideal hot-potato walk; the purely proactive
    protocol hovers around ``transfer_time / Δ`` (0.01 in the paper's
    setup). Undefined (``None``) at ``t = 0``.
    """

    def __init__(self, nodes: Sequence[TokenAccountNode], transfer_time: float):
        if transfer_time <= 0:
            raise ValueError(f"transfer_time must be positive, got {transfer_time}")
        self.nodes = nodes
        self.transfer_time = transfer_time

    def __call__(self, now: float) -> Optional[float]:
        if now <= 0:
            return None
        ideal_age = now / self.transfer_time
        ages = [
            node.app.age for node in self.nodes if node.online  # type: ignore[attr-defined]
        ]
        if not ages:
            return None
        return sum(ages) / (len(ages) * ideal_age)

    def surviving_lineages(self) -> int:
        """Number of distinct walks still held by online nodes (§4.2)."""
        lineages = {
            node.app.lineage  # type: ignore[attr-defined]
            for node in self.nodes
            if node.online
        }
        lineages.discard(None)
        return len(lineages)


@applications.register(
    "gossip-learning",
    summary="random-walk model gossip aged by SGD steps (§2.2); metric eq. (6)",
    params=(
        ParamSpec(
            "grading_scale",
            "float",
            default=None,
            help="graded usefulness saturation (None = boolean usefulness)",
        ),
    ),
)
class GossipLearningPlugin(ApplicationPlugin):
    """Registry assembly hooks for gossip learning."""

    name = "gossip-learning"
    default_overlay = "kout"
    supports_churn = True

    def __init__(self, grading_scale: Optional[float] = None):
        self.grading_scale = grading_scale

    def build_apps(self, ctx: BuildContext) -> list:
        return [
            GossipLearningApp(grading_scale=self.grading_scale)
            for _ in range(ctx.spec.n)
        ]

    def build_metric(self, ctx: BuildContext, nodes, workload) -> GossipLearningMetric:
        return GossipLearningMetric(nodes, ctx.spec.network.transfer_time)

    def result_extras(self, ctx: BuildContext, metric) -> dict:
        return {"surviving_walks": metric.surviving_lineages()}
