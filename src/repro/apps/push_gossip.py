"""Push gossip broadcast over the token account service (§2.3, §4.1.2).

Every node stores the freshest update it has seen; updates are injected
into random online nodes in regular intervals (10 per proactive period in
the paper: one injection every 17.28 s). Framework semantics (§3.2):

* ``createMessage`` copies the stored update (possibly the initial
  ``null`` — Algorithm 2 also pushes its ``null`` update);
* ``updateState`` adopts strictly fresher updates; "usefulness is 1 if
  and only if the received message contains a newer update than the
  locally stored update at the node".

Churn extra (§4.1.2): "nodes that come back online first send a single
initial pull request to a random online neighbor. If this neighbor has
tokens, a message is sent back with the latest update (burning a token).
Otherwise, no answer is given so the pull request is unsuccessful." The
pull *request* is a control message outside the token accounting; the
*reply* burns a token and travels as a data message (it enters the
receiving node's normal ONMESSAGE path).

Metric (eq. 7): the average lag ``t − (1/N)·Σ t_i`` in update indices,
over online nodes, where ``t`` is the index of the freshest update
injected anywhere and ``t_i`` the index stored at node ``i``.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.api import Application
from repro.core.grading import saturating_grade
from repro.core.protocol import DATA, TokenAccountNode
from repro.registry import ApplicationPlugin, BuildContext, ParamSpec, applications
from repro.scenarios import PAPER
from repro.sim.engine import Simulator
from repro.sim.network import Message
from repro.sim.process import PeriodicProcess

#: control-plane message kind for the rejoin pull request
PULL_REQUEST = "pull-request"


class PushGossipApp(Application):
    """Per-node push gossip logic for the token account framework.

    Parameters
    ----------
    pull_on_rejoin:
        Enable the §4.1.2 pull request when transitioning to online.
        On by default; the ablation bench switches it off.
    grading_scale:
        Optional graded usefulness (§3.1 future work): ``updateState``
        returns ``min(1, freshness_gap / grading_scale)`` instead of a
        boolean. Binary strategies coarsen the grade via truthiness;
        the graded strategies consume it.
    """

    def __init__(
        self,
        pull_on_rejoin: bool = True,
        grading_scale: Optional[float] = None,
    ):
        super().__init__()
        self.update: Optional[int] = None
        self.pull_on_rejoin = pull_on_rejoin
        self.grading_scale = grading_scale
        self.pulls_sent = 0
        self.pulls_answered = 0
        self.pulls_refused = 0

    # ------------------------------------------------------------------
    # The paper's two methods
    # ------------------------------------------------------------------
    def create_message(self) -> Optional[int]:
        return self.update

    def update_state(self, payload: Optional[int], sender: int):
        if payload is None:
            return False
        if self.update is not None and payload <= self.update:
            return False
        gap = payload - (self.update or 0)
        self.update = payload
        if self.grading_scale is not None:
            # Graded usefulness (§3.1 future work): an update that
            # advances us by many indices is worth proportionally more.
            return saturating_grade(gap, self.grading_scale)
        return True

    # ------------------------------------------------------------------
    # Injection (never through the token accounting)
    # ------------------------------------------------------------------
    def receive_injection(self, index: int) -> bool:
        """Adopt an externally injected update (bypasses ONMESSAGE)."""
        if self.update is None or index > self.update:
            self.update = index
            return True
        return False

    # ------------------------------------------------------------------
    # Churn control plane (§4.1.2)
    # ------------------------------------------------------------------
    def on_online(self) -> None:
        if not self.pull_on_rejoin:
            return
        assert self.node is not None
        peer = self.node.peer_sampler.select_peer(self.node.node_id)
        if peer is None:
            return
        self.node.send_control(peer, None, PULL_REQUEST)
        self.pulls_sent += 1

    def handle_control(self, message: Message) -> bool:
        if message.kind != PULL_REQUEST:
            return False
        assert self.node is not None
        # Answer only if we have both an update to share and a token to
        # burn; "otherwise, no answer is given".
        if self.update is not None and self.node.try_spend_token():
            self.node.network.send(
                self.node.node_id, message.src, self.create_message(), DATA
            )
            self.pulls_answered += 1
        else:
            self.pulls_refused += 1
        return True


class PushPullGossipApp(PushGossipApp):
    """Push-pull gossip within the token economy (§2.3).

    The paper chose plain push "for the sake of simplicity" but notes the
    push-pull variant "could also be used alongside our token account
    service". This extension adds the pull half in the same way §4.1.2
    prices pull replies: when a received push carries an *older* update
    than our own, we answer with ours — if we can burn a token for it.
    The answer is a data message, so it is rate-limited, audited, and
    enters the sender's normal ONMESSAGE path.

    Everything else (injection, metric, churn pull-on-rejoin) is
    inherited from :class:`PushGossipApp`.
    """

    def __init__(
        self,
        pull_on_rejoin: bool = True,
        grading_scale: Optional[float] = None,
    ):
        super().__init__(pull_on_rejoin=pull_on_rejoin, grading_scale=grading_scale)
        self.replies_sent = 0
        self.replies_suppressed = 0

    def update_state(self, payload: Optional[int], sender: int):
        useful = super().update_state(payload, sender)
        if useful:
            return useful
        # The sender pushed something older than what we hold: push back
        # the fresher update, paying for it with a token.
        assert self.node is not None
        sender_is_behind = self.update is not None and (
            payload is None or payload < self.update
        )
        if sender_is_behind:
            if self.node.try_spend_token():
                self.node.network.send(
                    self.node.node_id, sender, self.create_message(), DATA
                )
                self.replies_sent += 1
            else:
                self.replies_suppressed += 1
        return useful


class UpdateInjector:
    """Injects a fresh update into a random online node every ``interval``.

    "The period of inserting new updates is 17.28 s, that is, we insert
    10 updates in every proactive period" (§4.1.2). Injection sets the
    node's state directly — the spread starts with the node's own next
    proactive or reactive send. The ``reactive_injection`` flag instead
    routes the injection through the node's reactive path, as if the
    update had arrived as a useful message; it is off by default and
    exists for the ablation bench.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[TokenAccountNode],
        interval: float,
        rng: random.Random,
        reactive_injection: bool = False,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.nodes = nodes
        self.rng = rng
        self.reactive_injection = reactive_injection
        self.latest = 0
        self.injected = 0
        self.skipped_all_offline = 0
        self.process = PeriodicProcess(sim, interval, self._inject, phase=0.0)

    def start(self) -> "UpdateInjector":
        self.process.start()
        return self

    def stop(self) -> None:
        self.process.stop()

    def _inject(self) -> None:
        target = self._pick_online_node()
        if target is None:
            self.skipped_all_offline += 1
            return
        self.latest += 1
        self.injected += 1
        app = target.app
        assert isinstance(app, PushGossipApp)
        adopted = app.receive_injection(self.latest)
        if adopted and self.reactive_injection:
            target.react(useful=True)

    def _pick_online_node(self) -> Optional[TokenAccountNode]:
        nodes = self.nodes
        for _ in range(16):
            candidate = nodes[self.rng.randrange(len(nodes))]
            if candidate.online:
                return candidate
        online = [node for node in nodes if node.online]
        if not online:
            return None
        return online[self.rng.randrange(len(online))]


class PushGossipMetric:
    """Metric eq. (7): average update lag over online nodes.

    Nodes that have not received any update yet count with index 0, i.e.
    a lag equal to the full injected history — matching eq. (7), where
    every node contributes ``t − t_i``. Undefined (``None``) before the
    first injection.
    """

    def __init__(self, nodes: Sequence[TokenAccountNode], injector: UpdateInjector):
        self.nodes = nodes
        self.injector = injector

    def __call__(self, now: float) -> Optional[float]:
        latest = self.injector.latest
        if latest == 0:
            return None
        lags = [
            latest - (node.app.update or 0)  # type: ignore[attr-defined]
            for node in self.nodes
            if node.online
        ]
        if not lags:
            return None
        return sum(lags) / len(lags)


#: shared parameter schema of the push gossip variants
_PUSH_PARAMS = (
    ParamSpec(
        "pull_on_rejoin",
        "bool",
        default=True,
        help="§4.1.2 pull request when a node comes back online",
    ),
    ParamSpec(
        "inject_interval",
        "float",
        default=PAPER.inject_interval,
        help="seconds between update injections (paper: 17.28)",
    ),
    ParamSpec(
        "reactive_injection",
        "bool",
        default=False,
        help="route injections through the reactive path (ablation)",
    ),
    ParamSpec(
        "grading_scale",
        "float",
        default=None,
        help="graded usefulness saturation (None = boolean usefulness)",
    ),
)


@applications.register(
    "push-gossip",
    summary="freshest-update broadcast with continuous injection (§2.3); eq. (7)",
    params=_PUSH_PARAMS,
)
class PushGossipPlugin(ApplicationPlugin):
    """Registry assembly hooks for push gossip."""

    name = "push-gossip"
    default_overlay = "kout"
    supports_churn = True
    app_class = PushGossipApp

    def __init__(
        self,
        pull_on_rejoin: bool = True,
        inject_interval: float = PAPER.inject_interval,
        reactive_injection: bool = False,
        grading_scale: Optional[float] = None,
    ):
        if inject_interval <= 0:
            raise ValueError(f"inject_interval must be positive, got {inject_interval}")
        self.pull_on_rejoin = pull_on_rejoin
        self.inject_interval = inject_interval
        self.reactive_injection = reactive_injection
        self.grading_scale = grading_scale

    def build_apps(self, ctx: BuildContext) -> list:
        return [
            self.app_class(
                pull_on_rejoin=self.pull_on_rejoin,
                grading_scale=self.grading_scale,
            )
            for _ in range(ctx.spec.n)
        ]

    def build_workload(self, ctx: BuildContext, nodes) -> UpdateInjector:
        return UpdateInjector(
            ctx.sim,
            nodes,
            self.inject_interval,
            ctx.streams.stream("injector"),
            reactive_injection=self.reactive_injection,
        )

    def build_metric(self, ctx: BuildContext, nodes, workload) -> PushGossipMetric:
        assert workload is not None
        return PushGossipMetric(nodes, workload)


@applications.register(
    "push-pull-gossip",
    summary="push gossip plus token-priced pull replies to stale pushes (§2.3)",
    params=_PUSH_PARAMS,
)
class PushPullGossipPlugin(PushGossipPlugin):
    """Registry assembly hooks for the push-pull variant."""

    name = "push-pull-gossip"
    app_class = PushPullGossipApp
