"""A minimal SGD substrate for the gossip learning demo.

Gossip learning (§2.2) learns "from distributed data using stochastic
gradient descent"; the walking state is a model plus an age counter. For
the paper's metric only the age matters, and the evaluation simulates
ages alone. To demonstrate that our plumbing carries real models too,
this module implements the simplest honest instance: linear regression
under squared loss with the per-visit SGD update rule of Bottou [5]::

    w  <-  w − η · (wᵀx − y) · x

plus a synthetic regression problem generator whose examples can be
dealt one-per-node ("we assume that every node in the network has only
one training example"). The quickstart example walks such models through
the network and reports the mean squared error against the generating
weights.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import numpy as np

Example = Tuple[np.ndarray, float]


class LinearRegressionModel:
    """A linear model trained by per-example SGD steps.

    Parameters
    ----------
    dimension:
        Number of features (a bias term is appended internally).
    weights:
        Optional initial weights of length ``dimension + 1``; zeros by
        default (``initModel()`` in Algorithm 1).
    """

    def __init__(self, dimension: int, weights: Sequence[float] | None = None):
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self.dimension = dimension
        if weights is None:
            self.weights = np.zeros(dimension + 1)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (dimension + 1,):
                raise ValueError(
                    f"expected {dimension + 1} weights, got {weights.shape}"
                )
            self.weights = weights.copy()

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> float:
        """Model output for one example."""
        return float(self.weights[:-1] @ features + self.weights[-1])

    def sgd_step(
        self, features: np.ndarray, target: float, learning_rate: float
    ) -> None:
        """One stochastic gradient step on the squared loss."""
        residual = self.predict(features) - target
        self.weights[:-1] -= learning_rate * residual * features
        self.weights[-1] -= learning_rate * residual

    def mean_squared_error(self, examples: Sequence[Example]) -> float:
        """MSE over a set of examples."""
        if not examples:
            raise ValueError("no examples given")
        total = 0.0
        for features, target in examples:
            error = self.predict(features) - target
            total += error * error
        return total / len(examples)

    # ------------------------------------------------------------------
    # Message (de)serialization: models travel inside ModelToken payloads.
    # ------------------------------------------------------------------
    def to_payload(self) -> tuple:
        return tuple(self.weights.tolist())

    @classmethod
    def from_payload(cls, payload: tuple, dimension: int) -> "LinearRegressionModel":
        return cls(dimension, weights=payload)

    def copy(self) -> "LinearRegressionModel":
        return LinearRegressionModel(self.dimension, weights=self.weights)


def make_synthetic_regression(
    n_examples: int,
    dimension: int,
    rng: random.Random,
    noise: float = 0.05,
) -> tuple[List[Example], np.ndarray]:
    """Generate a linear regression problem with one example per node.

    Returns ``(examples, true_weights)`` where ``true_weights`` has the
    bias as its last component. Features are standard normal; targets are
    the linear response plus Gaussian noise.
    """
    if n_examples < 1:
        raise ValueError(f"need at least one example, got {n_examples}")
    np_rng = np.random.default_rng(rng.getrandbits(64))
    true_weights = np_rng.normal(size=dimension + 1)
    examples: List[Example] = []
    for _ in range(n_examples):
        features = np_rng.normal(size=dimension)
        target = float(true_weights[:-1] @ features + true_weights[-1])
        target += float(np_rng.normal(scale=noise))
        examples.append((features, target))
    return examples, true_weights
