"""Token-budgeted replication repair — the §5 research direction, built.

The paper's related-work section points at decentralized replication as a
natural home for token accounts: the classic approaches are either purely
*reactive* (re-replicate the moment a replica is lost — fast but bursty,
exactly the failure mode Sit et al. [14] observed) or purely *proactive*
(replicate on a fixed budget — smooth but slow after correlated
failures), with hybrids like Duminuco et al. [15] switching modes.
"Controlling the available repair-budget with the help of a token account
method is a promising approach in this area as well."

This module embeds replication repair in the token account framework:

* **State** — each node holds a set of object replicas, each with a
  *holder view* (the peers believed to also hold the object).
* ``createMessage`` — offer a replica of the node's most under-replicated
  held object (with its merged holder view) to a random peer; ``None``
  when every held object meets its target (idle nodes push no data).
* ``updateState`` — adopt a new replica (useful), or merge holder views
  for an already-held object (useful only if the view changed).
* **Failure detection** — when a node fails permanently, peers that
  believe they co-hold an object with it are notified after a detection
  delay (the §2.1 model assumes neighbor failures are detected). The
  notification removes the failed node from holder views and — this is
  the reactive hook — triggers the node's Algorithm 4 reactive path as if
  a useful message had arrived, so repair urgency translates into
  token-bounded repair traffic.

The repair *budget* is thus governed entirely by the strategy: purely
proactive repairs once per round, purely reactive repairs instantly and
unboundedly on detection, and the token account strategies sit in
between — responsive after failures, but never exceeding the §3.4 burst
bound.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.api import Application
from repro.core.protocol import TokenAccountNode
from repro.registry import ApplicationPlugin, BuildContext, ParamSpec, applications
from repro.sim.engine import Simulator

#: payload: (object id, believed holder ids)
ReplicaPayload = Tuple[int, FrozenSet[int]]


class ReplicationApp(Application):
    """Per-node replica store and repair logic.

    Parameters
    ----------
    target_replication:
        Desired number of live holders per object (``R``).
    reactive_detection:
        Treat a co-holder failure notification like a useful incoming
        message (triggering the strategy's reactive response). This is
        the mechanism that makes repair *responsive*; disabling it leaves
        only the proactive schedule (for the ablation).
    """

    def __init__(self, target_replication: int, reactive_detection: bool = True):
        super().__init__()
        if target_replication < 1:
            raise ValueError(
                f"target replication must be >= 1, got {target_replication}"
            )
        self.target = target_replication
        self.reactive_detection = reactive_detection
        #: object id -> believed holders (always includes this node)
        self.holder_views: Dict[int, Set[int]] = {}
        self.adopted = 0
        self.duplicates = 0
        self.detections = 0
        self._rotation = 0

    # ------------------------------------------------------------------
    def hold(self, object_id: int, holders: Set[int]) -> None:
        """Install a replica at setup time (initial placement)."""
        assert self.node is not None
        self.holder_views[object_id] = set(holders) | {self.node.node_id}

    def deficit(self, object_id: int) -> int:
        """How many holders the object is believed to be missing."""
        return self.target - len(self.holder_views[object_id])

    def most_urgent_object(self) -> Optional[int]:
        """A held object furthest below target, or ``None`` if all met.

        Ties rotate (deterministically) over the tied objects: a node
        holding several equally deficient replicas must not let one of
        them monopolize its repair slots, or the rest starve until the
        first one's view converges.
        """
        worst_deficit = 0
        tied: List[int] = []
        for object_id in sorted(self.holder_views):
            deficit = self.deficit(object_id)
            if deficit > worst_deficit:
                worst_deficit = deficit
                tied = [object_id]
            elif deficit == worst_deficit and worst_deficit > 0:
                tied.append(object_id)
        if not tied:
            return None
        choice = tied[self._rotation % len(tied)]
        self._rotation += 1
        return choice

    def _anti_entropy_object(self) -> Optional[int]:
        """Round-robin over held objects when none is under target.

        Keeps holder views converging even in a healthy system, so that
        later failures are detected by as many co-holders as possible.
        """
        if not self.holder_views:
            return None
        held = sorted(self.holder_views)
        choice = held[self._rotation % len(held)]
        self._rotation += 1
        return choice

    # ------------------------------------------------------------------
    # The paper's two methods
    # ------------------------------------------------------------------
    def create_message(self) -> Optional[ReplicaPayload]:
        object_id = self.most_urgent_object()
        if object_id is None:
            object_id = self._anti_entropy_object()
        if object_id is None:
            return None  # the node holds nothing at all
        return (object_id, frozenset(self.holder_views[object_id]))

    def update_state(self, payload: Optional[ReplicaPayload], sender: int) -> bool:
        if payload is None:
            return False
        assert self.node is not None
        object_id, holders = payload
        if object_id in self.holder_views:
            view = self.holder_views[object_id]
            before = len(view)
            view |= holders
            self.duplicates += 1
            return len(view) != before
        if len(holders) >= self.target:
            # A healthy object's anti-entropy message: adopting it would
            # inflate replication beyond the target (and waste the repair
            # budget); not holding it, we have no view to merge either.
            self.duplicates += 1
            return False
        # The object is under target: adopt the replica, become a holder.
        self.holder_views[object_id] = set(holders) | {self.node.node_id}
        self.adopted += 1
        return True

    # ------------------------------------------------------------------
    # Failure detection hook (driven by the FailureDetector service)
    # ------------------------------------------------------------------
    def on_coholder_failed(self, failed_node: int) -> None:
        """Remove a failed peer from every holder view; maybe react."""
        assert self.node is not None
        affected = False
        for view in self.holder_views.values():
            if failed_node in view:
                view.discard(failed_node)
                affected = True
        if not affected:
            return
        self.detections += 1
        if self.reactive_detection and self.node.online:
            # Failure news is as useful as a fresh message: let the
            # strategy decide how many repair messages it buys.
            self.node.react(useful=True)


# ----------------------------------------------------------------------
# Substrate services
# ----------------------------------------------------------------------
def place_objects(
    apps: Sequence[ReplicationApp],
    n_objects: int,
    target_replication: int,
    rng: random.Random,
) -> Dict[int, Set[int]]:
    """Place ``n_objects`` on random distinct nodes, R replicas each.

    Returns the ground-truth placement ``{object_id: holder node ids}``
    and installs the replicas (with consistent initial holder views).
    """
    if target_replication > len(apps):
        raise ValueError(
            f"cannot place {target_replication} replicas on {len(apps)} nodes"
        )
    placement: Dict[int, Set[int]] = {}
    node_ids = range(len(apps))
    for object_id in range(n_objects):
        holders = set(rng.sample(node_ids, target_replication))
        placement[object_id] = holders
        for node_id in holders:
            apps[node_id].hold(object_id, holders)
    return placement


class FailureDetector:
    """Delivers co-holder failure notifications after a fixed delay.

    The §2.1 model assumes "the failure of a neighbor is detected by the
    node"; the delay models the detection timeout. Notifications go to
    every online node that *believes* it shares an object with the failed
    node (consulting beliefs, not ground truth — a node that never heard
    of the replica cannot detect its loss).
    """

    def __init__(self, sim: Simulator, nodes: Sequence[TokenAccountNode], delay: float):
        if delay < 0:
            raise ValueError(f"detection delay must be >= 0, got {delay}")
        self.sim = sim
        self.nodes = nodes
        self.delay = delay
        self.notifications = 0

    def node_failed(self, failed_id: int) -> None:
        """Schedule detection at every believed co-holder."""
        self.sim.schedule(self.delay, self._notify_all, failed_id)

    def _notify_all(self, failed_id: int) -> None:
        for node in self.nodes:
            if node.node_id == failed_id or not node.online:
                continue
            app = node.app
            assert isinstance(app, ReplicationApp)
            if any(failed_id in view for view in app.holder_views.values()):
                self.notifications += 1
                app.on_coholder_failed(failed_id)


class PermanentFailureInjector:
    """Kills a fraction of nodes permanently at random times.

    Unlike the churn trace (§4.1), failed nodes never return — their
    replicas are gone, which is what makes repair necessary. Failures are
    spread uniformly over ``[start, end]``; a burst can be modeled with a
    narrow window.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[TokenAccountNode],
        detector: FailureDetector,
        fail_fraction: float,
        rng: random.Random,
        start: float,
        end: float,
    ):
        if not 0.0 <= fail_fraction < 1.0:
            raise ValueError(f"fail_fraction must be in [0, 1), got {fail_fraction}")
        if end < start:
            raise ValueError("failure window end precedes start")
        self.sim = sim
        self.detector = detector
        self.failed: List[int] = []
        count = int(round(fail_fraction * len(nodes)))
        victims = rng.sample(range(len(nodes)), count)
        for victim in victims:
            when = start + rng.random() * (end - start) if end > start else start
            sim.schedule_at(when, self._fail, nodes[victim])

    def _fail(self, node: TokenAccountNode) -> None:
        if not node.online:
            return
        node.set_online(False)
        node.stop()
        self.failed.append(node.node_id)
        self.detector.node_failed(node.node_id)


class ReplicationMetric:
    """Ground-truth replication health, sampled over time.

    ``__call__`` returns the fraction of *surviving* objects currently
    below the replication target (0 = fully repaired system). An object
    survives while at least one online node truly holds it; objects whose
    every holder failed are **lost** and tracked separately.
    """

    def __init__(
        self,
        nodes: Sequence[TokenAccountNode],
        n_objects: int,
        target_replication: int,
    ):
        self.nodes = nodes
        self.n_objects = n_objects
        self.target = target_replication

    def _true_holder_counts(self) -> List[int]:
        counts = [0] * self.n_objects
        for node in self.nodes:
            if not node.online:
                continue
            app = node.app
            assert isinstance(app, ReplicationApp)
            for object_id in app.holder_views:
                counts[object_id] += 1
        return counts

    def lost_objects(self) -> int:
        """Objects with zero live replicas (unrecoverable)."""
        return sum(1 for count in self._true_holder_counts() if count == 0)

    def under_replicated(self) -> int:
        """Surviving objects below the replication target."""
        return sum(1 for count in self._true_holder_counts() if 0 < count < self.target)

    def mean_replication(self) -> float:
        """Average live replica count over surviving objects."""
        counts = [c for c in self._true_holder_counts() if c > 0]
        if not counts:
            return 0.0
        return sum(counts) / len(counts)

    def __call__(self, now: float) -> float:
        counts = self._true_holder_counts()
        surviving = [c for c in counts if c > 0]
        if not surviving:
            return 0.0
        return sum(1 for c in surviving if c < self.target) / len(surviving)


@applications.register(
    "replication-repair",
    summary="token-budgeted replica repair under permanent failures (§5 direction)",
    params=(
        ParamSpec(
            "target_replication",
            "int",
            default=3,
            help="R — desired live holders per object",
        ),
        ParamSpec(
            "objects_per_node",
            "float",
            default=1.0,
            help="objects placed per node",
        ),
        ParamSpec(
            "fail_fraction",
            "float",
            default=0.2,
            help="fraction of nodes failing permanently",
        ),
        ParamSpec(
            "fail_window",
            "tuple",
            default=(0.25, 0.35),
            help="failure window as fractions of the horizon",
        ),
        ParamSpec(
            "detection_delay",
            "float",
            default=None,
            help="failure detection delay in seconds (None = one period)",
        ),
    ),
)
class ReplicationRepairPlugin(ApplicationPlugin):
    """Registry assembly hooks for replication repair.

    Churn schedules are rejected: the application models *permanent*
    failures with detection, and a node that is merely offline is not a
    lost replica.
    """

    name = "replication-repair"
    default_overlay = "kout"
    supports_churn = False
    churn_note = "replication uses permanent failures, not churn (offline != failed)"

    def __init__(
        self,
        target_replication: int = 3,
        objects_per_node: float = 1.0,
        fail_fraction: float = 0.2,
        fail_window: Tuple[float, float] = (0.25, 0.35),
        detection_delay: Optional[float] = None,
    ):
        if target_replication < 1:
            raise ValueError("target_replication must be >= 1")
        if objects_per_node <= 0:
            raise ValueError(
                f"objects_per_node must be positive, got {objects_per_node}"
            )
        if not 0.0 <= fail_fraction < 1.0:
            raise ValueError(f"fail_fraction must be in [0, 1), got {fail_fraction}")
        if not 0.0 <= fail_window[0] <= fail_window[1] <= 1.0:
            raise ValueError(f"invalid fail_window {fail_window}")
        self.target_replication = target_replication
        self.objects_per_node = objects_per_node
        self.fail_fraction = fail_fraction
        self.fail_window = tuple(fail_window)
        self.detection_delay = detection_delay

    def _n_objects(self, ctx: BuildContext) -> int:
        return max(1, round(ctx.spec.n * self.objects_per_node))

    def build_apps(self, ctx: BuildContext) -> List[ReplicationApp]:
        return [ReplicationApp(self.target_replication) for _ in range(ctx.spec.n)]

    def build_environment(self, ctx: BuildContext, nodes, apps) -> dict:
        placement = place_objects(
            apps,
            self._n_objects(ctx),
            self.target_replication,
            ctx.streams.stream("placement"),
        )
        detector = FailureDetector(
            ctx.sim,
            nodes,
            delay=(
                self.detection_delay
                if self.detection_delay is not None
                else ctx.spec.period
            ),
        )
        injector = PermanentFailureInjector(
            ctx.sim,
            nodes,
            detector,
            self.fail_fraction,
            ctx.streams.stream("failures"),
            start=ctx.spec.horizon * self.fail_window[0],
            end=ctx.spec.horizon * self.fail_window[1],
        )
        return {
            "placement": placement,
            "failure_detector": detector,
            "failure_injector": injector,
        }

    def build_metric(self, ctx: BuildContext, nodes, workload) -> "ReplicationMetric":
        return ReplicationMetric(nodes, self._n_objects(ctx), self.target_replication)
