"""The paper's three demonstrator applications (§2, §3.2).

* :mod:`repro.apps.gossip_learning` — models performing random walks,
  aged by SGD updates at every visited node (§2.2); metric eq. (6).
* :mod:`repro.apps.push_gossip` — freshest-update broadcast with a
  continuous injection stream (§2.3); metric eq. (7); pull-on-rejoin in
  the churn scenario (§4.1.2).
* :mod:`repro.apps.chaotic_iteration` — Lubachevsky–Mitra chaotic
  asynchronous power iteration (§2.4); angle-to-eigenvector metric.
* :mod:`repro.apps.sgd` — a small real SGD substrate (linear models on
  synthetic data) demonstrating that the gossip learning plumbing can
  carry actual models, not only ages.
"""

from repro.apps.chaotic_iteration import (
    ChaoticIterationApp,
    ChaoticIterationMetric,
    build_chaotic_apps,
)
from repro.apps.gossip_learning import (
    GossipLearningApp,
    GossipLearningMetric,
    ModelToken,
)
from repro.apps.push_gossip import (
    PULL_REQUEST,
    PushGossipApp,
    PushGossipMetric,
    PushPullGossipApp,
    UpdateInjector,
)
from repro.apps.replication import (
    FailureDetector,
    PermanentFailureInjector,
    ReplicationApp,
    ReplicationMetric,
    place_objects,
)
from repro.apps.sgd import LinearRegressionModel, make_synthetic_regression

__all__ = [
    "ChaoticIterationApp",
    "ChaoticIterationMetric",
    "GossipLearningApp",
    "GossipLearningMetric",
    "LinearRegressionModel",
    "ModelToken",
    "PULL_REQUEST",
    "PushGossipApp",
    "PushGossipMetric",
    "PushPullGossipApp",
    "FailureDetector",
    "PermanentFailureInjector",
    "ReplicationApp",
    "ReplicationMetric",
    "place_objects",
    "UpdateInjector",
    "build_chaotic_apps",
    "make_synthetic_regression",
]
