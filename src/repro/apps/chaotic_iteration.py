"""Chaotic asynchronous power iteration (§2.4, §4.1.3).

The Lubachevsky–Mitra framework [6] computes the dominant eigenvector of
a non-negative irreducible matrix with unit spectral radius by message
passing: node ``i`` holds vector element ``x_i`` and buffered values
``b_ki`` from its in-neighbors; it repeatedly recomputes

    x_i = Σ_k  A_ik · b_ki

and gossips ``x_i`` to neighbors. Convergence only requires a finite
bound on the age of the buffered values, so delays and drops are
tolerated — which is exactly what makes the application a good stress
test for traffic shaping.

Framework semantics (§3.2): the state is ``x_i``; ``createMessage``
copies it; ``updateState`` stores the received value in the buffer,
recomputes ``x_i``, and reports usefulness "1 if and only if the received
message causes a change in the local state".

The weight matrix is the column-normalized adjacency of the overlay
(``A_ik = 1/outdeg(k)``, see :mod:`repro.overlay.matrix`), and the
convergence metric is the angle between the global vector
``(x_1, ..., x_N)`` and the true dominant eigenvector.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.api import Application
from repro.core.grading import saturating_grade
from repro.core.protocol import TokenAccountNode
from repro.overlay.graph import Overlay
from repro.overlay.matrix import (
    angle_to,
    column_normalized_matrix,
    dominant_eigenvector,
)
from repro.registry import ApplicationPlugin, BuildContext, ParamSpec, applications


class ChaoticIterationApp(Application):
    """Per-node chaotic power iteration logic.

    Parameters
    ----------
    in_weights:
        ``{k: A_ik}`` for every in-neighbor ``k`` of this node.
    initial_buffer:
        Initial buffered value ``b_ki`` — "any positive value"
        (Algorithm 3 line 1); the default 1.0 makes the initial ``x_i``
        the row sum of the weight matrix.
    """

    def __init__(
        self,
        in_weights: Dict[int, float],
        initial_buffer: float = 1.0,
        grading_scale: Optional[float] = None,
    ):
        super().__init__()
        self.grading_scale = grading_scale
        if initial_buffer <= 0:
            raise ValueError(
                f"initial buffer must be positive (Algorithm 3), got {initial_buffer}"
            )
        if any(weight <= 0 for weight in in_weights.values()):
            raise ValueError("all in-link weights must be positive")
        self.in_weights = dict(in_weights)
        self.buffers: Dict[int, float] = {k: initial_buffer for k in self.in_weights}
        self.x = self._recompute()
        self.updates_applied = 0
        self.stale_messages = 0

    def _recompute(self) -> float:
        return sum(weight * self.buffers[k] for k, weight in self.in_weights.items())

    # ------------------------------------------------------------------
    # The paper's two methods
    # ------------------------------------------------------------------
    def create_message(self) -> float:
        return self.x

    def update_state(self, payload: float, sender: int):
        if sender not in self.in_weights:
            # A message routed over a link that the weight matrix does not
            # know about would corrupt the fixed point; treat as a bug.
            raise ValueError(f"received weight from non-in-neighbor {sender}")
        self.buffers[sender] = payload
        new_x = self._recompute()
        useful = new_x != self.x
        if useful:
            change = abs(new_x - self.x)
            reference = max(abs(self.x), 1e-12)
            self.x = new_x
            self.updates_applied += 1
            if self.grading_scale is not None:
                # Graded usefulness (§3.1 future work): grade by the
                # relative magnitude of the state change.
                return saturating_grade(change / reference, self.grading_scale)
            return True
        self.stale_messages += 1
        return False


def build_chaotic_apps(
    overlay: Overlay,
    initial_buffer: float = 1.0,
    grading_scale: Optional[float] = None,
) -> List[ChaoticIterationApp]:
    """One app per node, wired with the column-normalized in-weights.

    ``A_ik = 1 / outdeg(k)`` for each in-neighbor ``k`` of node ``i`` —
    consistent with :func:`repro.overlay.matrix.column_normalized_matrix`.
    """
    apps = []
    for i in range(overlay.n):
        weights = {k: 1.0 / overlay.out_degree(k) for k in overlay.in_neighbors(i)}
        apps.append(
            ChaoticIterationApp(
                weights,
                initial_buffer=initial_buffer,
                grading_scale=grading_scale,
            )
        )
    return apps


class ChaoticIterationMetric:
    """Convergence metric: angle between the global vector and ground truth.

    "The performance metric used in this application is simply the
    convergence rate of power iteration to the correct eigenvector
    expressed as the angle of the current approximation and the correct
    eigenvector. An angle of zero means a perfect solution." (§4.1.3)
    """

    def __init__(
        self,
        nodes: Sequence[TokenAccountNode],
        reference: Optional[np.ndarray] = None,
        overlay: Optional[Overlay] = None,
    ):
        if reference is None:
            if overlay is None:
                raise ValueError("provide either a reference vector or the overlay")
            reference = dominant_eigenvector(column_normalized_matrix(overlay))
        self.nodes = nodes
        self.reference = np.asarray(reference, dtype=float)
        if len(self.reference) != len(nodes):
            raise ValueError(
                f"reference has {len(self.reference)} entries for {len(nodes)} nodes"
            )

    def current_vector(self) -> np.ndarray:
        return np.array(
            [node.app.x for node in self.nodes],  # type: ignore[attr-defined]
            dtype=float,
        )

    def __call__(self, now: float) -> float:
        return angle_to(self.current_vector(), self.reference)


@applications.register(
    "chaotic-iteration",
    summary=(
        "Lubachevsky–Mitra chaotic power iteration (§2.4); "
        "angle-to-eigenvector metric"
    ),
    params=(
        ParamSpec(
            "initial_buffer",
            "float",
            default=1.0,
            help="initial buffered value (Algorithm 3: any positive value)",
        ),
        ParamSpec(
            "grading_scale",
            "float",
            default=None,
            help="graded usefulness saturation (None = boolean usefulness)",
        ),
    ),
)
class ChaoticIterationPlugin(ApplicationPlugin):
    """Registry assembly hooks for chaotic power iteration.

    The paper's evaluation excludes this application from the churn
    scenario ("it is not possible to define convergence for this
    application" under churn, §4.2) — the *figures* keep that exclusion.
    The scenario matrix does not: under churn the metric simply measures
    the angle of the full (online + frozen offline) vector, which is a
    well-defined stress test of how traffic shaping copes when parts of
    the iteration stall.
    """

    name = "chaotic-iteration"
    default_overlay = "watts-strogatz"
    supports_churn = True

    def __init__(
        self,
        initial_buffer: float = 1.0,
        grading_scale: Optional[float] = None,
    ):
        self.initial_buffer = initial_buffer
        self.grading_scale = grading_scale

    def build_apps(self, ctx: BuildContext) -> List[ChaoticIterationApp]:
        return build_chaotic_apps(
            ctx.overlay,
            initial_buffer=self.initial_buffer,
            grading_scale=self.grading_scale,
        )

    def build_metric(
        self, ctx: BuildContext, nodes, workload
    ) -> ChaoticIterationMetric:
        return ChaoticIterationMetric(nodes, overlay=ctx.overlay)
