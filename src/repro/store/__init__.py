"""Content-addressed result store: memoize deterministic experiment cells.

The determinism contract (same config + seed -> bit-identical result at
any worker count) makes every experiment cell a pure function of its
configuration. This package exploits that: results are persisted on disk
under a canonical hash of ``(configuration, seed, code-schema version,
cell task)``, so re-running a suite re-simulates only the cells that are
not in the store — a warm second run is near-instant, and a crashed
suite resumes from the cells it already completed.

Public surface:

* :func:`cell_key` / :data:`RESULT_SCHEMA_VERSION` — the canonical
  content hash (:mod:`repro.store.hashing`);
* :class:`ResultStore` / :class:`StoreEntry` / :class:`StoreMissError` —
  the on-disk store (:mod:`repro.store.store`);
* :func:`store_from_env` / :func:`resolve_store` — ``REPRO_STORE`` /
  ``--store`` resolution shared by the CLI and the suite layer.

The store is consumed by :class:`repro.experiments.suite.SuiteRunner`
(``store=`` / ``offline=``), by :func:`repro.experiments.runner.run_experiment`
(``store=``) and by the ``repro report`` / ``repro store`` CLI commands.
"""

from repro.store.hashing import (
    RESULT_SCHEMA_VERSION,
    canonical_json,
    cell_key,
    task_identity,
)
from repro.store.store import (
    ResultStore,
    StoreEntry,
    StoreMissError,
    diff_stores,
    resolve_store,
    store_from_env,
)

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "ResultStore",
    "StoreEntry",
    "StoreMissError",
    "canonical_json",
    "cell_key",
    "diff_stores",
    "resolve_store",
    "store_from_env",
    "task_identity",
]
