"""Canonical content hashing for experiment cells.

A cell's result is a pure function of three things: the configuration
(an :class:`~repro.experiments.config.ExperimentConfig` or a
:class:`~repro.scenarios.ScenarioSpec`, both of which embed the seed),
the per-cell task that turns the configuration into a result, and the
version of the code that computes it. :func:`cell_key` hashes exactly
those three into a hex digest used as the store address.

Canonicalisation rules:

* configurations serialize through ``dataclasses.asdict`` (or their own
  ``canonical_dict`` hook when they define one), tagged with the class
  name so the flat legacy surface and the declarative spec never
  collide even when they compile to the same simulation;
* the dict is rendered as minified JSON with sorted keys — tuples
  become arrays, floats use ``repr``-exact encoding, so equal
  configurations always produce byte-identical documents;
* the task contributes its ``module:qualname`` identity;
* :data:`RESULT_SCHEMA_VERSION` contributes the code-schema version —
  bump it whenever the shape or meaning of stored results changes, and
  every previously stored entry silently becomes a miss (``repro store
  gc`` then prunes the stale files).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Callable, Optional

#: Version of the stored-result schema. Part of every cell key: bumping
#: it invalidates all previously stored entries at once. Bump when the
#: fields of ``ExperimentResult`` / ``ExperimentConfig`` /
#: ``ScenarioSpec`` change shape or meaning, or when a simulation change
#: intentionally alters results for identical configurations.
#:
#: History:
#:
#: * 2 — the ``backend`` axis joined the config surface (and
#:   ``NetworkStats`` grew ``lost_sender_offline``): every pre-backend
#:   entry was produced by what is now the ``"event"`` backend but is
#:   keyed without the axis, so it must never satisfy a post-backend
#:   lookup. ``repro store gc`` prunes the stale entries.
#: * 1 — initial store format.
RESULT_SCHEMA_VERSION = 2


def task_identity(task: Optional[Callable[..., Any]]) -> str:
    """The stable string identity of a per-cell task callable.

    ``None`` maps to the default task (the library's
    :func:`~repro.experiments.runner.run_experiment`), so callers that
    never customise the task need not import it just to name it.
    """
    if task is None:
        return "repro.experiments.runner:run_experiment"
    module = getattr(task, "__module__", "") or ""
    qualname = getattr(task, "__qualname__", None) or getattr(
        task, "__name__", repr(task)
    )
    return f"{module}:{qualname}"


def config_fingerprint(config: Any) -> dict:
    """A JSON-ready canonical dict identifying one configuration.

    Dataclass configurations (the two built-in surfaces) are expanded
    recursively; anything else must provide a ``canonical_dict()``
    method. The class name is embedded so distinct surfaces with
    identical field values stay distinct.
    """
    hook = getattr(config, "canonical_dict", None)
    if callable(hook):
        return hook()
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            "kind": type(config).__name__,
            "fields": dataclasses.asdict(config),
        }
    raise TypeError(
        f"cannot fingerprint {type(config).__name__!r}: expected a dataclass "
        "config or an object with a canonical_dict() method"
    )


def canonical_json(document: Any) -> str:
    """Render a document as canonical (sorted, minified) JSON.

    The encoding is deterministic: dict keys are sorted, separators are
    minimal, tuples encode as arrays and floats keep ``repr`` precision,
    so equal documents always produce byte-identical text.
    """
    try:
        return json.dumps(document, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"configuration is not canonically serializable: {error}"
        ) from error


def cell_key(
    config: Any,
    task: Optional[Callable[..., Any]] = None,
    schema_version: int = RESULT_SCHEMA_VERSION,
) -> str:
    """The content address of one experiment cell (a sha256 hex digest).

    Two cells share a key exactly when they have equal configurations
    (including the seed), the same per-cell task and the same code
    schema version — precisely the conditions under which the
    determinism contract guarantees bit-identical results.
    """
    document = {
        "schema_version": schema_version,
        "task": task_identity(task),
        "config": config_fingerprint(config),
    }
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()
