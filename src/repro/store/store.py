"""The on-disk content-addressed result store.

Layout (one directory per store, safe to rsync or throw away)::

    <root>/
        store.json              # format marker, written on first put
        entries/<key>.pkl       # one pickled entry per cell key

Each entry file is a self-describing pickled dict carrying the cell key,
the schema version, light metadata (label, seed, creation time) and the
full result object. Writes go through a temporary file plus
``os.replace``, so a killed process never leaves a torn entry behind —
the property that makes mid-suite crash/resume sound. Unreadable or
mismatched entries are treated as misses on read and as garbage by
:meth:`ResultStore.gc`.

Results round-trip through :mod:`pickle`, the same serialization the
process-pool suite runner already requires of every result, so a cache
hit reproduces the original :class:`~repro.experiments.runner.ExperimentResult`
bit-identically — including ``extras`` and any custom task payload.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.store.hashing import RESULT_SCHEMA_VERSION, cell_key, task_identity

PathLike = Union[str, Path]

#: name of the environment variable holding the default store path
STORE_ENV_VAR = "REPRO_STORE"

_STORE_FORMAT = "repro-store-v1"
_ENTRY_FORMAT = "repro-store-entry-v1"


class StoreMissError(RuntimeError):
    """Raised in offline mode when cells are missing from the store.

    ``repro report`` runs suites with ``offline=True``: every cell must
    come from the store, and this error (listing the missing cells)
    tells the user which producing command to run first.
    """

    def __init__(self, suite_name: str, missing: Sequence[Any], root: PathLike):
        labels = [
            getattr(config, "label", lambda: repr(config))() for config in missing
        ]
        preview = ", ".join(labels[:3]) + ("..." if len(labels) > 3 else "")
        super().__init__(
            f"store {root} is missing {len(missing)} cell(s) of suite "
            f"{suite_name!r} ({preview}); run the producing command with "
            f"--store first"
        )
        self.suite_name = suite_name
        self.missing = list(missing)
        self.root = Path(root)


@dataclass
class StoreEntry:
    """Metadata view of one stored cell (``repro store ls`` rows)."""

    key: str
    schema_version: int
    task: str
    label: str
    seed: int
    config_kind: str
    created_at: str
    path: Path
    #: light derived numbers for listings/diffs (final metric, sizes)
    summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def stale(self) -> bool:
        """Whether this entry was written under an older schema version."""
        return self.schema_version != RESULT_SCHEMA_VERSION


class ResultStore:
    """A content-addressed store of experiment results on local disk.

    Parameters
    ----------
    root:
        Store directory; created lazily on the first :meth:`put`.
    schema_version:
        The code-schema version hashed into every key. Overriding the
        default is meant for tests (simulating a version bump) — normal
        callers must leave it at :data:`RESULT_SCHEMA_VERSION`.
    """

    def __init__(
        self, root: PathLike, schema_version: int = RESULT_SCHEMA_VERSION
    ) -> None:
        self.root = Path(root)
        self.schema_version = schema_version

    # ------------------------------------------------------------------
    @property
    def entries_dir(self) -> Path:
        """The directory holding one pickled file per cell."""
        return self.root / "entries"

    def key_for(self, config: Any, task: Optional[Callable[..., Any]] = None) -> str:
        """The content address of ``config`` under this store's schema."""
        return cell_key(config, task=task, schema_version=self.schema_version)

    def path_for_key(self, key: str) -> Path:
        """The entry file backing one cell key."""
        return self.entries_dir / f"{key}.pkl"

    # ------------------------------------------------------------------
    def get(
        self, config: Any, task: Optional[Callable[..., Any]] = None
    ) -> Optional[Any]:
        """The stored result for ``config``, or ``None`` on a miss.

        Corrupt, torn or key-mismatched entry files read as misses (the
        cell is simply recomputed and rewritten); the store never raises
        on bad cached data.
        """
        key = self.key_for(config, task=task)
        payload = self._load(self.path_for_key(key))
        if payload is None or payload.get("key") != key:
            return None
        return payload["result"]

    def contains(self, config: Any, task: Optional[Callable[..., Any]] = None) -> bool:
        """Whether a usable entry exists for ``config``."""
        return self.get(config, task=task) is not None

    def put(
        self,
        config: Any,
        result: Any,
        task: Optional[Callable[..., Any]] = None,
    ) -> str:
        """Persist one cell result; returns its key.

        The write is atomic (temp file + ``os.replace``): concurrent
        writers of the same key race benignly — both write identical
        bytes-equivalent entries — and a crash mid-write leaves either
        the old entry or none at all.
        """
        key = self.key_for(config, task=task)
        payload = {
            "format": _ENTRY_FORMAT,
            "key": key,
            "schema_version": self.schema_version,
            "task": task_identity(task),
            "label": self._label_of(config),
            "seed": getattr(config, "seed", 0),
            "config_kind": type(config).__name__,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "result": result,
        }
        self._ensure_layout()
        target = self.path_for_key(key)
        temporary = target.with_suffix(f".tmp.{os.getpid()}")
        with temporary.open("wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temporary, target)
        return key

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """The number of entry files currently on disk."""
        if not self.entries_dir.is_dir():
            return 0
        return sum(1 for _ in self.entries_dir.glob("*.pkl"))

    def keys(self) -> List[str]:
        """Every stored cell key, sorted."""
        if not self.entries_dir.is_dir():
            return []
        return sorted(path.stem for path in self.entries_dir.glob("*.pkl"))

    def entries(self) -> Iterator[StoreEntry]:
        """Iterate metadata for every readable entry, sorted by key.

        Unreadable files are skipped here (see :meth:`gc`, which removes
        them).
        """
        if not self.entries_dir.is_dir():
            return
        for path in sorted(self.entries_dir.glob("*.pkl")):
            payload = self._load(path)
            if payload is None:
                continue
            yield self._entry_of(path, payload)

    def gc(self, remove_all: bool = False) -> Tuple[int, int]:
        """Prune stale entries; returns ``(removed, kept)`` counts.

        Removes entries written under a different schema version (they
        can never hit again) plus unreadable files; ``remove_all=True``
        clears the store entirely.
        """
        removed = kept = 0
        if not self.entries_dir.is_dir():
            return (0, 0)
        # Orphaned temp files from writers killed mid-put are pure
        # garbage: os.replace never ran, so no entry references them.
        for leftover in sorted(self.entries_dir.glob("*.tmp.*")):
            leftover.unlink(missing_ok=True)
            removed += 1
        for path in sorted(self.entries_dir.glob("*.pkl")):
            payload = self._load(path)
            stale = (
                remove_all
                or payload is None
                or payload.get("schema_version") != self.schema_version
                or payload.get("key") != path.stem
            )
            if stale:
                path.unlink(missing_ok=True)
                removed += 1
            else:
                kept += 1
        return removed, kept

    # ------------------------------------------------------------------
    def _ensure_layout(self) -> None:
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        marker = self.root / "store.json"
        if not marker.exists():
            marker.write_text(f'{{"format": "{_STORE_FORMAT}"}}\n', encoding="utf-8")

    @staticmethod
    def _label_of(config: Any) -> str:
        label = getattr(config, "label", None)
        if callable(label):
            return label()
        return repr(config)

    @staticmethod
    def _load(path: Path) -> Optional[dict]:
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            # Torn writes, foreign files, entries pickled against code
            # that no longer unpickles — all read as misses, never as
            # errors; gc() removes them.
            return None
        if not isinstance(payload, dict) or payload.get("format") != _ENTRY_FORMAT:
            return None
        return payload

    @staticmethod
    def _entry_of(path: Path, payload: dict) -> StoreEntry:
        result = payload.get("result")
        summary: Dict[str, Any] = {"digest": _result_digest(result)}
        metric = getattr(result, "metric", None)
        if metric is not None and getattr(metric, "empty", True) is False:
            summary["final_metric"] = metric.final()
        for attribute in ("data_messages", "events_processed"):
            value = getattr(result, attribute, None)
            if value is not None:
                summary[attribute] = value
        config = getattr(result, "config", None)
        for attribute in ("n", "periods"):
            value = getattr(config, attribute, None)
            if value is not None:
                summary[attribute] = value
        return StoreEntry(
            key=payload["key"],
            schema_version=payload.get("schema_version", -1),
            task=payload.get("task", ""),
            label=payload.get("label", ""),
            seed=payload.get("seed", 0),
            config_kind=payload.get("config_kind", ""),
            created_at=payload.get("created_at", ""),
            path=path,
            summary=summary,
        )


def _result_digest(result: Any) -> str:
    """Hash the deterministic content of a result (wall-clock excluded).

    Backs :func:`diff_stores`: two runs of the same configuration must
    digest equal even though their ``elapsed`` wall-clock differs, while
    any drift in the series, counters or extras must change the digest.
    Payloads without a ``metric`` (custom task results) digest their
    pickled bytes.
    """
    metric = getattr(result, "metric", None)
    if metric is None:
        try:
            blob = pickle.dumps(result, protocol=4)
        except Exception:
            blob = repr(result).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()
    tokens = getattr(result, "tokens", None)
    parts = [
        repr(list(metric.times)),
        repr(list(metric.values)),
        repr(list(tokens.times)) if tokens is not None else "None",
        repr(list(tokens.values)) if tokens is not None else "None",
        repr(getattr(result, "data_messages", None)),
        repr(getattr(result, "messages_per_node_per_period", None)),
        repr(getattr(result, "surviving_walks", None)),
        repr(sorted(getattr(result, "extras", {}).items())),
        repr(getattr(result, "events_processed", None)),
        repr(getattr(result, "network", None)),
    ]
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Resolution helpers (CLI / environment)
# ----------------------------------------------------------------------
def store_from_env() -> Optional[ResultStore]:
    """The store named by ``REPRO_STORE``, or ``None`` when unset."""
    raw = os.environ.get(STORE_ENV_VAR, "").strip()
    return ResultStore(raw) if raw else None


def resolve_store(path: Optional[PathLike]) -> Optional[ResultStore]:
    """Resolve an explicit ``--store`` path, falling back to ``REPRO_STORE``."""
    if path is not None:
        return ResultStore(path)
    return store_from_env()


# ----------------------------------------------------------------------
# Store comparison (``repro store diff``)
# ----------------------------------------------------------------------
def diff_stores(left: ResultStore, right: ResultStore) -> Dict[str, List[StoreEntry]]:
    """Compare two stores' grids by cell key.

    Returns four entry lists keyed ``only_left`` / ``only_right`` /
    ``differing`` / ``matching``: cells present on one side only, cells
    present on both sides whose deterministic result content disagrees
    (a determinism or code-drift red flag — wall-clock fields are
    excluded from the comparison), and cells that agree.
    """
    left_entries = {entry.key: entry for entry in left.entries()}
    right_entries = {entry.key: entry for entry in right.entries()}
    report: Dict[str, List[StoreEntry]] = {
        "only_left": [],
        "only_right": [],
        "differing": [],
        "matching": [],
    }
    for key in sorted(set(left_entries) | set(right_entries)):
        if key not in right_entries:
            report["only_left"].append(left_entries[key])
        elif key not in left_entries:
            report["only_right"].append(right_entries[key])
        elif left_entries[key].summary != right_entries[key].summary:
            report["differing"].append(left_entries[key])
        else:
            report["matching"].append(left_entries[key])
    return report
