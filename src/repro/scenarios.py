"""Declarative scenarios: the app x strategy x overlay x churn x network matrix.

A :class:`ScenarioSpec` names one point in the evaluation matrix by
composing registry components (:mod:`repro.registry`) along five axes:

* **app** — which application plugin builds the per-node logic;
* **strategy** — the §3 proactive/reactive function pair;
* **overlay** — the communication topology (``None`` = the app's
  default, matching §4.1);
* **churn** — the availability model (``none`` / ``stunner-trace`` /
  ``flash-crowd`` / ...);
* **network** — transport behaviour: transfer time, an optional
  per-message transfer-time jitter, and i.i.d. in-transit loss;
* **backend** — the simulation engine that executes the scenario: the
  exact discrete-event reference (``"event"``) or the bulk-synchronous
  NumPy engine (``"vectorized"``) for large-N runs
  (:mod:`repro.backends`).

plus the structural knobs (``n``, ``periods``, ``period``, seeded
randomness) and ``period_spread`` for heterogeneous per-node proactive
periods. Components are referenced by registry name with validated
parameters, so *any* registered combination is runnable without touching
the runner — the paper's two hard-wired scenarios become just two named
presets in :data:`SCENARIO_PRESETS`, alongside combinations the original
harness could not express (chaotic iteration under the trace, lossy
small-world push gossip, a flash-crowd churn schedule).

Specs are frozen, picklable and fully determine a run together with
their ``seed`` — the same determinism contract as
:class:`~repro.experiments.config.ExperimentConfig`, which remains as
the flat legacy veneer and compiles into a spec via
``ExperimentConfig.to_spec()``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional, Tuple

# ----------------------------------------------------------------------
# The paper's fixed experimental constants (§4.1)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PaperConstants:
    """The fixed experimental constants of §4.1."""

    #: proactive period Δ in seconds ("allowing for 1000 periods during
    #: the two-day interval")
    period: float = 172.8
    #: transfer time for one message ("1.728 s, a hundredth of the
    #: proactive period")
    transfer_time: float = 1.728
    #: out-degree of the random overlay ("a fixed 20-out network")
    out_degree: int = 20
    #: Watts–Strogatz ring degree ("connected to its closest 4 neighbors")
    ws_degree: int = 4
    #: Watts–Strogatz rewiring probability ("a probability of 0.01")
    ws_rewire: float = 0.01
    #: push gossip injection period ("17.28 s, that is, ... 10 updates in
    #: every proactive period")
    inject_interval: float = 17.28
    #: initial tokens ("the number of initial tokens ... is zero")
    initial_tokens: int = 0
    #: push gossip smoothing window ("averaging measurements over 15
    #: minute periods")
    smoothing_window: float = 900.0
    #: network sizes of the paper's experiments
    n_small: int = 5000
    n_large: int = 500_000
    periods: int = 1000


PAPER = PaperConstants()


# ----------------------------------------------------------------------
# Component references
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ComponentRef:
    """A registry component by name, with frozen keyword parameters.

    Parameters are stored as a sorted tuple of ``(name, value)`` pairs so
    that refs are hashable, picklable and order-insensitive; build with
    :meth:`of` and read back with :attr:`kwargs`::

        ComponentRef.of("watts-strogatz", degree=4, rewire=0.1)
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "ComponentRef":
        """Build a ref from keyword parameters (canonically sorted)."""
        return cls(name, tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The frozen parameters as a plain keyword dict."""
        return dict(self.params)

    def with_params(self, **updates: Any) -> "ComponentRef":
        """A copy with the given parameters merged over the existing ones."""
        merged = self.kwargs
        merged.update(updates)
        return ComponentRef.of(self.name, **merged)

    def label(self) -> str:
        """Human-readable ``name(param=value, ...)`` rendering."""
        if not self.params:
            return self.name
        inner = ", ".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class NetworkSpec:
    """Transport axis: latency model and in-transit loss."""

    #: base per-message transfer time in virtual seconds
    transfer_time: float = PAPER.transfer_time
    #: i.i.d. in-transit drop probability (0.0 = the paper's reliable
    #: transfer assumption)
    loss_rate: float = 0.0
    #: relative uniform jitter on the transfer time: each message takes
    #: ``transfer_time * (1 ± jitter)``, drawn from a dedicated stream
    transfer_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.transfer_time <= 0:
            raise ValueError(
                f"transfer_time must be positive, got {self.transfer_time}"
            )
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if not 0.0 <= self.transfer_jitter < 1.0:
            raise ValueError(
                f"transfer_jitter must be in [0, 1), got {self.transfer_jitter}"
            )


# ----------------------------------------------------------------------
# Serving arrival patterns (the request-traffic side of the vocabulary)
# ----------------------------------------------------------------------
#: arrival patterns accepted by ``ArrivalSpec.pattern`` / ``repro loadgen``
ARRIVAL_PATTERNS: Tuple[str, ...] = ("uniform", "poisson", "flash-crowd")


@dataclass(frozen=True)
class ArrivalSpec:
    """A declarative request-arrival pattern for the serving layer.

    The load generator (:mod:`repro.serve.loadgen`) replays these
    open-loop against a live admission server. The flash-crowd fields
    mirror :class:`repro.churn.flash_crowd.FlashCrowdConfig` — the same
    surge vocabulary, applied to request traffic instead of node
    availability: a baseline rate, a burst window at ``peak_rate``, and
    an exponential decay back toward the baseline.
    """

    #: one of :data:`ARRIVAL_PATTERNS`
    pattern: str = "poisson"
    #: baseline arrival rate in requests per second
    rate: float = 100.0
    #: in-window rate of the flash crowd (ignored by other patterns)
    peak_rate: float = 1000.0
    #: start of the burst window, as a fraction of the run duration
    start_fraction: float = 0.10
    #: length of the burst window, as a fraction of the run duration
    window_fraction: float = 0.10
    #: post-burst decay time constant, as a fraction of the run duration
    #: (the analog of the churn model's mean sojourn)
    decay_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.pattern not in ARRIVAL_PATTERNS:
            raise ValueError(
                f"unknown arrival pattern {self.pattern!r}; "
                f"expected one of {ARRIVAL_PATTERNS}"
            )
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.pattern == "flash-crowd":
            if self.peak_rate < self.rate:
                raise ValueError(
                    f"peak_rate ({self.peak_rate}) must be >= rate ({self.rate})"
                )
            if not 0.0 <= self.start_fraction < 1.0:
                raise ValueError(
                    f"start_fraction must be in [0, 1), got {self.start_fraction}"
                )
            if self.window_fraction <= 0 or self.decay_fraction <= 0:
                raise ValueError(
                    "window_fraction and decay_fraction must be positive, got "
                    f"{self.window_fraction} and {self.decay_fraction}"
                )

    def label(self) -> str:
        """Short human-readable rendering for reports."""
        if self.pattern == "flash-crowd":
            return (
                f"flash-crowd({self.rate:g}->{self.peak_rate:g}/s "
                f"@{self.start_fraction:g}+{self.window_fraction:g})"
            )
        return f"{self.pattern}({self.rate:g}/s)"


# ----------------------------------------------------------------------
# Scenario presets (the named churn regimes behind ``--scenario``)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioPreset:
    """A named churn regime: the churn component plus a description."""

    name: str
    churn: ComponentRef
    summary: str = ""


SCENARIO_PRESETS: Dict[str, ScenarioPreset] = {
    "failure-free": ScenarioPreset(
        name="failure-free",
        churn=ComponentRef("none"),
        summary="every node online for the whole run (§4.1)",
    ),
    "trace": ScenarioPreset(
        name="trace",
        churn=ComponentRef("stunner-trace"),
        summary="synthetic STUNner-like smartphone availability trace (§4.1)",
    ),
    "flash-crowd": ScenarioPreset(
        name="flash-crowd",
        churn=ComponentRef("flash-crowd"),
        summary=(
            "a small always-on backbone joined by a sudden crowd that "
            "churns out again (extension)"
        ),
    ),
}

#: scenario names accepted by ``ExperimentConfig.scenario`` and the CLI
SCENARIOS: Tuple[str, ...] = tuple(SCENARIO_PRESETS)


def scenario_preset(name: str) -> ScenarioPreset:
    """Look up a preset; unknown names list the valid choices."""
    try:
        return SCENARIO_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {SCENARIOS}"
        ) from None


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One fully declarative point in the scenario matrix.

    Validation happens at construction: component names resolve against
    the registries, parameters check against the declared schemas, the
    strategy and application plugin instantiate (so invalid values fail
    fast), and churn-incompatible applications are rejected.
    """

    app: ComponentRef
    strategy: ComponentRef
    #: ``None`` uses the application plugin's default overlay
    overlay: Optional[ComponentRef] = None
    churn: ComponentRef = ComponentRef("none")
    network: NetworkSpec = NetworkSpec()
    n: int = PAPER.n_small
    periods: int = PAPER.periods
    period: float = PAPER.period
    #: heterogeneous proactive periods: node ``i`` ticks with its own
    #: period drawn uniformly from ``period * (1 ± period_spread)``
    period_spread: float = 0.0
    seed: int = 1
    initial_tokens: int = PAPER.initial_tokens
    #: metric sampling interval; ``None`` defaults to Δ/2
    sample_interval: Optional[float] = None
    #: collect the average token balance series (Figure 5)
    collect_tokens: bool = False
    #: record per-node send timestamps for burst auditing
    audit_sends: bool = False
    #: simulation backend registry name (``"event"`` is the exact
    #: discrete-event reference; ``"vectorized"`` the bulk-synchronous
    #: NumPy engine). Part of the cell identity: results from different
    #: backends never share a store key.
    backend: str = "event"

    def __post_init__(self) -> None:
        from repro.registry import (
            applications,
            backends,
            churn_models,
            overlays,
            strategies,
        )

        if self.n < 2:
            raise ValueError(f"need at least 2 nodes, got {self.n}")
        if self.periods < 1:
            raise ValueError(f"need at least 1 period, got {self.periods}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0.0 <= self.period_spread < 1.0:
            raise ValueError(
                f"period_spread must be in [0, 1), got {self.period_spread}"
            )
        backends.get(self.backend)  # unknown backend names fail fast
        app_registration = applications.get(self.app.name)
        app_registration.validate(self.app.kwargs)
        churn_models.get(self.churn.name).validate(self.churn.kwargs)
        if self.overlay is not None:
            overlays.get(self.overlay.name).validate(self.overlay.kwargs)
        if self.churn.name != "none" and not app_registration.factory.supports_churn:
            note = getattr(app_registration.factory, "churn_note", "")
            raise ValueError(
                f"app {self.app.name!r} does not support churn "
                f"(churn model {self.churn.name!r} requested)"
                + (f": {note}" if note else "")
            )
        # Instantiating the strategy and the plugin runs their own value
        # validation (C >= A, probability ranges, ...) at spec time.
        strategies.get(self.strategy.name).validate(self.strategy.kwargs)
        strategy = self.build_strategy()
        # The per-node account invariants, checked once up front so every
        # backend fails identically at spec time (the event engine would
        # raise from TokenAccount at node construction; the vectorized
        # kernel has no per-node accounts to catch it).
        if self.initial_tokens < 0 and not strategy.requires_overdraft:
            raise ValueError(
                f"initial_tokens must be >= 0, got {self.initial_tokens}"
            )
        capacity = strategy.token_capacity
        if capacity is not None and self.initial_tokens > capacity:
            raise ValueError(
                f"initial_tokens {self.initial_tokens} exceeds the strategy's "
                f"token capacity {capacity}"
            )
        self.build_plugin()

    # ------------------------------------------------------------------
    @property
    def horizon(self) -> float:
        """Total simulated time in seconds."""
        return self.periods * self.period

    @property
    def effective_sample_interval(self) -> float:
        """The metric sampling interval (default: half a period)."""
        return self.sample_interval if self.sample_interval else self.period / 2

    @property
    def scenario_name(self) -> str:
        """The preset name matching this spec's churn model, if any."""
        for preset in SCENARIO_PRESETS.values():
            if preset.churn.name == self.churn.name:
                return preset.name
        return self.churn.name

    # ------------------------------------------------------------------
    def build_plugin(self):
        """Instantiate the application plugin with this spec's parameters."""
        from repro.registry import applications

        return applications.create(self.app.name, **self.app.kwargs)

    def build_strategy(self):
        """Instantiate the configured strategy."""
        from repro.registry import strategies

        return strategies.create(self.strategy.name, **self.strategy.kwargs)

    def resolved_overlay(self) -> ComponentRef:
        """The overlay reference, falling back to the app's default."""
        if self.overlay is not None:
            return self.overlay
        from repro.registry import applications

        return ComponentRef(applications.get(self.app.name).factory.default_overlay)

    def label(self) -> str:
        """Short human-readable label for reports and plots."""
        return (
            f"{self.app.name}/{self.build_strategy().describe()}/"
            f"{self.scenario_name}"
        )

    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with the given top-level fields replaced."""
        return replace(self, **overrides)

    def canonical_dict(self) -> Dict[str, Any]:
        """A canonical, JSON-ready identity dict for content hashing.

        The result-store key (:func:`repro.store.cell_key`) is derived
        from this dict: it must cover every field that can influence a
        run, and nothing else. ``dataclasses.asdict`` does exactly that
        for a frozen spec — the ``kind`` tag keeps spec-built cells
        distinct from :class:`~repro.experiments.config.ExperimentConfig`
        cells whose compiled spec happens to coincide.
        """
        return {"kind": type(self).__name__, "fields": asdict(self)}
