"""Algorithm 4 — the token account protocol loop.

:class:`TokenAccountNode` binds together a strategy (the proactive and
reactive functions), an application (``createMessage`` / ``updateState``),
the peer sampling service and the per-node account, and executes the
paper's Algorithm 4 verbatim::

    a <- initial number of tokens
    loop:
        wait(Δ)
        do with probability proactive(a):
            send createMessage() to selectPeer()
        else:
            a <- a + 1

    procedure ONMESSAGE(m):
        u <- updateState(m)
        x <- randRound(reactive(a, u))
        a <- a - x
        for i <- 1 to x:
            send createMessage() to selectPeer()

Fidelity notes
--------------
* A proactive send does **not** touch the account: the round's token is
  consumed by the send itself. Only the skipped round banks a token.
* ``reactive(a, u) <= a`` and ``a`` is an integer, so the randomized
  rounding can never overdraw a guarded account (``⌈r⌉ <= a`` whenever
  ``r <= a``); the account class still asserts it.
* Each reactive message calls ``createMessage()`` *after* the state
  update, so all ``x`` copies carry the updated state — as in the
  pseudo-code, where ONMESSAGE calls ``createMessage()`` in the loop.
* Under churn, an offline node's timer does not fire tokens ("nodes only
  receive tokens when online") — we keep the timer running but the tick
  handler returns immediately while offline, which preserves the node's
  round phase across reconnects the way PeerSim's cycle-based scheduling
  does.
* If ``selectPeer()`` finds no online peer, a proactive send falls back
  to banking the token and a reactive send refunds unspent tokens; both
  paths keep the §3.4 burst bound intact (see
  :mod:`repro.core.account`).
"""

from __future__ import annotations

import random

from repro.core.account import TokenAccount
from repro.core.api import Application
from repro.core.rounding import rand_round
from repro.core.strategies import Strategy
from repro.overlay.peer_sampling import PeerSampler
from repro.sim.engine import Simulator
from repro.sim.network import Message, Network
from repro.sim.node import SimNode
from repro.sim.process import PeriodicProcess

#: message kind used for Algorithm 4 data messages
DATA = "data"


class TokenAccountNode(SimNode):
    """A simulated node running Algorithm 4.

    Parameters
    ----------
    node_id:
        Dense integer id, also the overlay index.
    sim, network, peer_sampler:
        The shared substrate services.
    strategy:
        The proactive/reactive function pair.
    app:
        The application bound to this node (one instance per node).
    period:
        The round length Δ.
    rng:
        Per-node random stream (phase, strategy coin flips, rounding).
    initial_tokens:
        Starting balance; the paper's experiments use 0.
    online:
        Initial availability.
    """

    # One instance per simulated node — at N = 500,000 the per-instance
    # dict is the dominant memory cost, so the class is slotted.
    __slots__ = (
        "sim",
        "network",
        "peer_sampler",
        "strategy",
        "app",
        "rng",
        "account",
        "process",
        "proactive_sends",
        "reactive_sends",
        "skipped_no_peer",
        "messages_received",
        "useful_received",
    )

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        peer_sampler: PeerSampler,
        strategy: Strategy,
        app: Application,
        period: float,
        rng: random.Random,
        initial_tokens: int = 0,
        online: bool = True,
    ):
        super().__init__(node_id, online=online)
        self.sim = sim
        self.network = network
        self.peer_sampler = peer_sampler
        self.strategy = strategy
        self.app = app
        self.rng = rng
        self.account = TokenAccount(
            initial=initial_tokens,
            capacity=strategy.token_capacity,
            allow_overdraft=strategy.requires_overdraft,
        )
        self.process = PeriodicProcess(sim, period, self._on_tick, rng=rng)
        self.proactive_sends = 0
        self.reactive_sends = 0
        self.skipped_no_peer = 0
        self.messages_received = 0
        self.useful_received = 0
        app.bind(self)
        self.add_online_listener(self._on_availability_change)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TokenAccountNode":
        """Begin the periodic loop and notify the application."""
        self.process.start()
        self.app.on_start()
        return self

    def stop(self) -> None:
        self.process.stop()

    def _on_availability_change(self, online: bool) -> None:
        if online:
            self.app.on_online()
        else:
            self.app.on_offline()

    # ------------------------------------------------------------------
    # Algorithm 4: the periodic loop
    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        if not self.online:
            return  # offline nodes neither bank nor spend tokens
        account = self.account
        if self.rng.random() < self.strategy.proactive(account.balance):
            peer = self.peer_sampler.select_peer(self.node_id)
            if peer is None:
                # No online neighbor: the send is impossible; bank the
                # round's token instead (clamped at capacity C).
                self.skipped_no_peer += 1
                account.grant()
                return
            self.network.send(self.node_id, peer, self.app.create_message(), DATA)
            self.proactive_sends += 1
        else:
            account.grant()

    # ------------------------------------------------------------------
    # Algorithm 4: ONMESSAGE
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        if message.kind != DATA:
            if not self.app.handle_control(message):
                raise RuntimeError(
                    f"node {self.node_id}: unhandled control message "
                    f"kind={message.kind!r}"
                )
            return
        self.messages_received += 1
        useful = self.app.update_state(message.payload, message.src)
        if useful:
            self.useful_received += 1
        self.react(useful)

    def react(self, useful: bool) -> int:
        """The reactive half of ONMESSAGE: spend tokens, send copies.

        Returns the number of messages actually sent. Exposed separately
        so that out-of-band state changes (e.g. an update injected
        directly into a node, §4.1.2 ablation) can trigger the reactive
        response without a network message.
        """
        desired = self.strategy.reactive(self.account.balance, useful)
        count = rand_round(desired, self.rng)
        if count == 0:
            return 0
        self.account.withdraw(count)
        sent = 0
        for _ in range(count):
            peer = self.peer_sampler.select_peer(self.node_id)
            if peer is None:
                break
            self.network.send(self.node_id, peer, self.app.create_message(), DATA)
            sent += 1
        self.reactive_sends += sent
        if sent < count:
            self.skipped_no_peer += count - sent
            self.account.refund(count - sent)
        return sent

    def kick(self, count: int = 1) -> int:
        """Send ``count`` data messages outside the token accounting.

        This bootstraps the purely reactive reference: with
        ``PROACTIVE ≡ 0`` no node would ever initiate, so the flooding
        baseline starts each node's cascade with one kicked message (the
        "hot potato" walks of §4.1.1). Never used by the token account
        strategies, whose proactive function self-starts.
        """
        if not self.online:
            return 0
        sent = 0
        for _ in range(count):
            peer = self.peer_sampler.select_peer(self.node_id)
            if peer is None:
                break
            self.network.send(self.node_id, peer, self.app.create_message(), DATA)
            sent += 1
        return sent

    # ------------------------------------------------------------------
    # Control-plane helper used by applications (e.g. push gossip pull)
    # ------------------------------------------------------------------
    def send_control(self, dst: int, payload: object, kind: str) -> None:
        """Send a non-Algorithm-4 message (application control plane)."""
        if kind == DATA:
            raise ValueError("control messages must not use the data kind")
        self.network.send(self.node_id, dst, payload, kind)

    def try_spend_token(self) -> bool:
        """Atomically burn one token if available (pull replies, §4.1.2)."""
        if self.account.balance > 0:
            self.account.withdraw(1)
            return True
        return False

    @property
    def total_sends(self) -> int:
        return self.proactive_sends + self.reactive_sends

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TokenAccountNode(id={self.node_id}, a={self.account.balance}, "
            f"strategy={self.strategy.describe()})"
        )
