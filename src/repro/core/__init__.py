"""The token account framework — the paper's core contribution (§3).

* :mod:`repro.core.account` — the per-node token account with its
  non-negativity and capacity invariants.
* :mod:`repro.core.rounding` — the probabilistic rounding used by
  Algorithm 4 (``randRound``).
* :mod:`repro.core.strategies` — the proactive/reactive function pairs:
  purely proactive, simple, generalized, randomized token account, plus
  the unbounded purely reactive reference.
* :mod:`repro.core.api` — the application-facing API
  (``createMessage`` / ``updateState``).
* :mod:`repro.core.protocol` — Algorithm 4 itself, binding a strategy and
  an application to a simulated node.
* :mod:`repro.core.ratelimit` — auditing of the §3.4 burst bound.
* :mod:`repro.core.meanfield` — the §4.3 mean-field model of the average
  token balance.
* :mod:`repro.core.discrete_balance` — exact Markov-chain refinement of
  the mean-field for small token budgets.
* :mod:`repro.core.grading` — graded usefulness (the paper's stated
  future work).
"""

from repro.core.account import TokenAccount
from repro.core.discrete_balance import (
    stationary_distribution,
    stationary_mean_balance,
)
from repro.core.api import Application
from repro.core.grading import (
    GradedGeneralizedTokenAccount,
    GradedRandomizedTokenAccount,
    as_grade,
    saturating_grade,
)
from repro.core.meanfield import (
    MeanFieldModel,
    MeanFieldTrajectory,
    randomized_equilibrium,
    solve_equilibrium,
)
from repro.core.protocol import TokenAccountNode
from repro.core.ratelimit import RateLimitAuditor, burst_bound
from repro.core.rounding import rand_round
from repro.core.strategies import (
    GeneralizedTokenAccount,
    ProactiveStrategy,
    PureReactiveStrategy,
    RandomizedTokenAccount,
    SimpleTokenAccount,
    Strategy,
    make_strategy,
)

__all__ = [
    "Application",
    "GradedGeneralizedTokenAccount",
    "GradedRandomizedTokenAccount",
    "as_grade",
    "saturating_grade",
    "GeneralizedTokenAccount",
    "MeanFieldModel",
    "MeanFieldTrajectory",
    "ProactiveStrategy",
    "PureReactiveStrategy",
    "RandomizedTokenAccount",
    "RateLimitAuditor",
    "SimpleTokenAccount",
    "Strategy",
    "TokenAccount",
    "TokenAccountNode",
    "burst_bound",
    "make_strategy",
    "rand_round",
    "randomized_equilibrium",
    "solve_equilibrium",
    "stationary_distribution",
    "stationary_mean_balance",
]
