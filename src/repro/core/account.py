"""The per-node token account (§3.1).

"Each node has an account, which can hold a non-negative integer number
of tokens." The account enforces its two invariants directly:

* the balance never goes negative ("we do not allow overspending");
* when the owning strategy has a finite token capacity ``C`` (the
  smallest balance at which the proactive function returns 1, §3.4),
  banking a token never pushes the balance above ``C``.

The second invariant needs one clarification beyond the paper. In the
failure-free flow the balance can never exceed ``C`` anyway: at ``a = C``
the proactive function is 1, so the round's token is always spent, never
banked. Under churn, however, a node whose online neighbors all vanished
may be *unable* to send its proactive message. We bank the token in that
case (the node earned it), but clamp at ``C`` so the §3.4 burst bound —
"a node cannot send more than ⌊t/Δ⌋ + C messages within a period of time
t" — survives arbitrary churn.

The purely reactive reference strategy needs overdraft ("with relaxing
the non-negativity constraint of the balance, the purely reactive
strategy can be expressed as well", §3.1); ``allow_overdraft=True``
disables the non-negativity check for that one case.
"""

from __future__ import annotations

from typing import Optional


class OverspendError(RuntimeError):
    """Raised when a withdrawal would push a guarded account negative."""


class TokenAccount:
    """An integer token balance with capacity and non-negativity invariants.

    Parameters
    ----------
    initial:
        Starting balance. The paper's experiments start every node at 0.
    capacity:
        The token capacity ``C`` of the owning strategy, or ``None`` for
        strategies without a finite capacity (purely reactive reference).
    allow_overdraft:
        Permit negative balances (purely reactive reference only).
    """

    __slots__ = ("balance", "capacity", "allow_overdraft", "granted", "spent")

    def __init__(
        self,
        initial: int = 0,
        capacity: Optional[int] = None,
        allow_overdraft: bool = False,
    ):
        if initial < 0 and not allow_overdraft:
            raise ValueError(f"initial balance must be >= 0, got {initial}")
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if capacity is not None and initial > capacity:
            raise ValueError(f"initial balance {initial} exceeds capacity {capacity}")
        self.balance = int(initial)
        self.capacity = capacity
        self.allow_overdraft = allow_overdraft
        self.granted = 0
        self.spent = 0

    # ------------------------------------------------------------------
    def grant(self) -> None:
        """Bank one token (the skipped-send branch of Algorithm 4).

        Clamps at the strategy's token capacity; see the module docstring
        for why clamping only matters under churn.
        """
        if self.capacity is not None and self.balance >= self.capacity:
            return
        self.balance += 1
        self.granted += 1

    def grant_many(self, count: int) -> int:
        """Bank up to ``count`` tokens at once; returns how many stuck.

        The wall-clock serving layer (:mod:`repro.serve`) advances an
        account by whole elapsed periods in one step — after an idle
        stretch that can be thousands of ticks, so the capacity clamp is
        applied arithmetically instead of looping :meth:`grant`.
        """
        if count < 0:
            raise ValueError(f"cannot grant a negative count: {count}")
        if self.capacity is not None:
            count = min(count, max(0, self.capacity - self.balance))
        self.balance += count
        self.granted += count
        return count

    def withdraw(self, amount: int) -> None:
        """Spend ``amount`` tokens on reactive messages."""
        if amount < 0:
            raise ValueError(f"cannot withdraw a negative amount: {amount}")
        if amount > self.balance and not self.allow_overdraft:
            raise OverspendError(
                f"withdrawal of {amount} exceeds balance {self.balance}"
            )
        self.balance -= amount
        self.spent += amount

    def refund(self, amount: int) -> None:
        """Return tokens withdrawn for sends that could not happen.

        Under churn a node may withdraw ``x`` tokens but find no online
        peer for some of the ``x`` messages; those tokens go back (still
        respecting the capacity clamp).
        """
        if amount < 0:
            raise ValueError(f"cannot refund a negative amount: {amount}")
        if amount == 0:
            return
        restored = self.balance + amount
        if self.capacity is not None:
            restored = min(restored, self.capacity)
        self.spent -= restored - self.balance
        self.balance = restored

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TokenAccount(balance={self.balance}, capacity={self.capacity}, "
            f"granted={self.granted}, spent={self.spent})"
        )
