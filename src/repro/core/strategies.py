"""Token account strategies: the proactive/reactive function pairs (§3).

A strategy is a pair of functions over the account balance ``a``:

* ``proactive(a)`` — probability of sending a proactive message this
  round; must be monotone non-decreasing in ``a``.
* ``reactive(a, u)`` — (possibly fractional) number of messages to send
  in reaction to an incoming message of usefulness ``u``; must be
  monotone non-decreasing in both ``a`` and ``u`` and must never exceed
  ``a`` (no overspending).

Implemented strategies
----------------------
=================  ==========================================  =================================================
name               ``proactive(a)``                            ``reactive(a, u)``
=================  ==========================================  =================================================
``proactive``      1                                           0
``simple``         1 if ``a >= C`` else 0                      1 if ``a > 0`` else 0
``generalized``    1 if ``a >= C`` else 0                      ``⌊(A−1+a)/A⌋`` if u else ``⌊(A−1+a)/(2A)⌋``
``randomized``     0 / linear on ``[A−1, C]`` / 1              ``a/A`` if u else 0   (randomized rounding)
``reactive``       0                                           ``k`` (or ``u·k``); unbounded reference only
=================  ==========================================  =================================================

``C`` is the **token capacity**: the smallest balance at which the
proactive function returns 1 (§3.4). It bounds the largest possible
burst. ``A`` controls the rate of token spending — at balance ``a ≈ A``
the reactive functions return about one message.

Each strategy also exposes ``continuous_proactive`` / ``continuous_reactive``
(the same formulas without integer rounding) for the mean-field model of
§4.3, which treats the balance as a real-valued mean.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from repro.registry import ParamSpec, strategies as strategy_registry

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.kernel import DecisionKernel

#: shared (A, C) parameter schema of the token account strategies
_AC_PARAMS = (
    ParamSpec("spend_rate", "int", required=True, help="A — token spending rate"),
    ParamSpec("capacity", "int", required=True, help="C — token capacity (C >= A)"),
)


class Strategy(ABC):
    """A proactive/reactive function pair with a declared token capacity."""

    #: short registry name used in experiment configurations
    name: str = "abstract"

    #: smallest balance with ``proactive(a) == 1``; ``None`` if unbounded
    token_capacity: Optional[int] = None

    #: whether the account may go negative (purely reactive reference only)
    requires_overdraft: bool = False

    #: whether the runner must seed one initial message per node — the
    #: purely reactive reference never initiates, so without a kick its
    #: cascades would not exist at all
    bootstrap_kick: bool = False

    @abstractmethod
    def proactive(self, balance: int) -> float:
        """Probability of sending a proactive message at ``balance``."""

    @abstractmethod
    def reactive(self, balance: int, useful: bool) -> float:
        """Number of reactive messages (possibly fractional) to send."""

    # ------------------------------------------------------------------
    # Continuous relaxations for the §4.3 mean-field model. The default
    # evaluates the discrete formula on the real-valued balance, which is
    # exact for strategies whose formulas contain no integer rounding.
    # ------------------------------------------------------------------
    def continuous_proactive(self, balance: float) -> float:
        return self.proactive(balance)  # type: ignore[arg-type]

    def continuous_reactive(self, balance: float, useful: bool) -> float:
        return self.reactive(balance, useful)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # The serving-layer hook (repro.serve). One Algorithm-4 decision,
    # phrased for admission control: an incoming request plays the role
    # of an incoming message.
    # ------------------------------------------------------------------
    @property
    def decision_kernel(self) -> "DecisionKernel":
        """This strategy's cached Algorithm-4 decision kernel.

        One :class:`~repro.core.kernel.DecisionKernel` per strategy
        instance, built lazily: both the serving layer (scalar and
        batched admission) and the vectorized simulation backend run
        their decisions through this single object.
        """
        kernel = getattr(self, "_decision_kernel", None)
        if kernel is None:
            from repro.core.kernel import DecisionKernel

            kernel = DecisionKernel(self)
            self._decision_kernel = kernel
        return kernel

    def admission_decision(
        self, balance: int, useful: bool, rng: random.Random
    ) -> Optional[str]:
        """Would this strategy send one message at ``balance`` right now?

        Returns ``"reactive"`` when the reactive function (after
        Algorithm 4's randomized rounding) yields at least one message —
        the caller must spend one token; ``"proactive"`` when only the
        proactive function fires — the caller must account for the send
        against the tick grid (a token when one is banked, otherwise the
        once-per-period proactive slot); ``None`` when the strategy
        would stay silent.

        Used by :class:`repro.serve.TokenAccountLimiter`, which layers
        the §3.4-preserving resource accounting on top. The hook is pure:
        all limiter state (accounts, tick anchors) stays with the caller.
        It is the batch of one of
        :meth:`repro.core.kernel.DecisionKernel.decide_many` and always
        consumes exactly two uniforms from ``rng`` (the kernel's RNG
        contract, which is what makes scalar/batch equivalence exactly
        testable).
        """
        return self.decision_kernel.decide_one(balance, useful, rng)

    def describe(self) -> str:
        """Human-readable label used in experiment reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


@strategy_registry.register(
    "proactive",
    summary="purely proactive baseline: send every round, never react (§3.1)",
)
class ProactiveStrategy(Strategy):
    """The purely proactive baseline: send every round, never react.

    ``PROACTIVE(a) ≡ 1`` and ``REACTIVE(a, u) ≡ 0`` (§3.1). Equivalent to
    :class:`SimpleTokenAccount` with ``C = 0``, which is exactly how the
    paper's experiments instantiate the baseline.
    """

    name = "proactive"
    token_capacity = 0

    def proactive(self, balance: int) -> float:
        return 1.0

    def reactive(self, balance: int, useful: bool) -> float:
        return 0.0


@strategy_registry.register(
    "simple",
    summary="simple token account: proactive when full, react one-for-one (§3.3.1)",
    params=(
        ParamSpec("capacity", "int", required=True, help="C — token capacity"),
    ),
)
class SimpleTokenAccount(Strategy):
    """The simple token account (§3.3.1) — the token-bucket-like baseline.

    Sends proactively only when the account is full (``a >= C``) and
    reacts with exactly one message whenever a token is available. The
    proactive-when-full behaviour is what distinguishes it from a classic
    token bucket: when few messages circulate (e.g. after failures) the
    account fills and the node falls back to proactive gossiping, which
    keeps the system alive.

    Parameters
    ----------
    capacity:
        The token capacity ``C >= 0``. ``C = 0`` yields the purely
        proactive baseline.
    """

    name = "simple"

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.token_capacity = capacity

    def proactive(self, balance: int) -> float:
        return 1.0 if balance >= self.capacity else 0.0

    def reactive(self, balance: int, useful: bool) -> float:
        return 1.0 if balance > 0 else 0.0

    def continuous_reactive(self, balance: float, useful: bool) -> float:
        return 1.0 if balance > 0 else 0.0

    def describe(self) -> str:
        return f"simple(C={self.capacity})"


@strategy_registry.register(
    "generalized",
    summary="generalized token account: floor-scaled reactive spending (§3.3.2)",
    params=_AC_PARAMS,
)
class GeneralizedTokenAccount(Strategy):
    """The generalized token account (§3.3.2).

    Reacts more aggressively when the balance is high, and responds to a
    *useful* message with twice the budget of a useless one::

        REACTIVE(a, u) = ⌊(A − 1 + a) / A⌋       if u
                         ⌊(A − 1 + a) / (2A)⌋    otherwise

    With ``A = 1`` a useful message triggers spending the whole account;
    with ``A = C`` the reactive part degenerates to the simple strategy's.
    Because of the floor, a useless message consumes nothing when tokens
    are scarce (``a <= A``) — "when the tokens are scarce, we do not waste
    them for reacting to messages that are not useful".

    Parameters
    ----------
    spend_rate:
        ``A >= 1`` — larger values spend the account more slowly.
    capacity:
        ``C >= A`` — the token capacity (values below ``A`` would make
        the proactive function fire before the reactive function can
        respond with even one message, which the paper excludes).
    """

    name = "generalized"

    def __init__(self, spend_rate: int, capacity: int):
        if spend_rate < 1:
            raise ValueError(f"A must be a positive integer, got {spend_rate}")
        if capacity < spend_rate:
            raise ValueError(
                f"C must be >= A (got A={spend_rate}, C={capacity}); "
                "A = C already reduces to the simple reactive function"
            )
        self.spend_rate = spend_rate
        self.capacity = capacity
        self.token_capacity = capacity

    def proactive(self, balance: int) -> float:
        return 1.0 if balance >= self.capacity else 0.0

    def reactive(self, balance: int, useful: bool) -> float:
        a = self.spend_rate
        if useful:
            return float((a - 1 + balance) // a)
        return float((a - 1 + balance) // (2 * a))

    def continuous_reactive(self, balance: float, useful: bool) -> float:
        a = self.spend_rate
        if useful:
            return max(0.0, (a - 1 + balance) / a)
        return max(0.0, (a - 1 + balance) / (2 * a))

    def describe(self) -> str:
        return f"generalized(A={self.spend_rate}, C={self.capacity})"


@strategy_registry.register(
    "randomized",
    summary="randomized token account: linear proactive ramp, a/A reactive (§3.3.3)",
    params=_AC_PARAMS,
)
class RandomizedTokenAccount(Strategy):
    """The randomized token account (§3.3.3).

    Smooths the proactive behaviour: below ``A − 1`` tokens the node is
    purely reactive (it could not even answer a useful message with one
    full message, so it hoards); between ``A − 1`` and ``C`` the proactive
    probability rises linearly to 1; at ``C`` and above it always sends::

        PROACTIVE(a) = 0                          if a < A − 1
                       (a − A + 1) / (C − A + 1)  if A − 1 <= a <= C
                       1                          otherwise

        REACTIVE(a, u) = a / A  if u else 0

    The reactive value is *not* floored — Algorithm 4's randomized
    rounding turns it into an unbiased integer sample, which is what lets
    the mean-field equilibrium ``a = A·C/(C+1)`` (§4.3) hold exactly.

    Parameters
    ----------
    spend_rate:
        ``A >= 1`` — reactive spending uses roughly a ``1/A`` fraction of
        the balance per useful message.
    capacity:
        ``C >= A`` — the token capacity.
    """

    name = "randomized"

    def __init__(self, spend_rate: int, capacity: int):
        if spend_rate < 1:
            raise ValueError(f"A must be a positive integer, got {spend_rate}")
        if capacity < spend_rate:
            raise ValueError(f"C must be >= A (got A={spend_rate}, C={capacity})")
        self.spend_rate = spend_rate
        self.capacity = capacity
        self.token_capacity = capacity

    def proactive(self, balance: int) -> float:
        a_param = self.spend_rate
        if balance < a_param - 1:
            return 0.0
        if balance <= self.capacity:
            return (balance - a_param + 1) / (self.capacity - a_param + 1)
        return 1.0

    def reactive(self, balance: int, useful: bool) -> float:
        if not useful:
            return 0.0
        return balance / self.spend_rate

    def describe(self) -> str:
        return f"randomized(A={self.spend_rate}, C={self.capacity})"


@strategy_registry.register(
    "reactive",
    summary="purely reactive flooding reference — unbounded, tests/reference only",
    params=(
        ParamSpec("fanout", "int", default=1, help="k — messages per reaction"),
        ParamSpec(
            "useful_only",
            "bool",
            default=True,
            help="react only to useful messages (the u*k variant)",
        ),
    ),
)
class PureReactiveStrategy(Strategy):
    """The purely reactive reference ("flooding") — not a viable deployment.

    ``PROACTIVE(a) ≡ 0`` and ``REACTIVE(a, u) ≡ k`` (or ``u·k``), with the
    non-negativity of the balance relaxed (§3.1). The paper excludes it
    from the experimental comparison because "without any rate control,
    our applications would generate a continuous burst"; we keep it as the
    reference that defines the maximum possible speed (``n*(t)`` in
    §4.1.1) and for tests.

    Parameters
    ----------
    fanout:
        ``k >= 1`` messages per reaction.
    useful_only:
        If ``True``, react only to useful messages (the ``u·k`` variant).
    """

    name = "reactive"
    token_capacity = None
    requires_overdraft = True
    bootstrap_kick = True

    def __init__(self, fanout: int = 1, useful_only: bool = True):
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        self.fanout = fanout
        self.useful_only = useful_only

    def proactive(self, balance: int) -> float:
        return 0.0

    def reactive(self, balance: int, useful: bool) -> float:
        if self.useful_only and not useful:
            return 0.0
        return float(self.fanout)

    def describe(self) -> str:
        suffix = "u" if self.useful_only else ""
        return f"reactive(k={self.fanout}{suffix})"


def make_strategy(
    name: str,
    spend_rate: Optional[int] = None,
    capacity: Optional[int] = None,
    fanout: int = 1,
    useful_only: bool = True,
) -> Strategy:
    """Build a strategy from its registry name and parameters.

    The flat legacy entry point used by the experiment harness:
    ``make_strategy("randomized", spend_rate=10, capacity=20)``. It
    forwards to the :mod:`repro.registry` strategy registry, passing only
    the parameters the named strategy declares (so the unified signature
    keeps working for strategies that take no ``fanout``, etc.).

    Parameters mirror the paper's: ``spend_rate`` is ``A``, ``capacity``
    is ``C``.
    """
    registration = strategy_registry.get(name)
    params = registration.filter_params(
        {
            "spend_rate": spend_rate,
            "capacity": capacity,
            "fanout": fanout,
            "useful_only": useful_only,
        }
    )
    return strategy_registry.create(name, **params)


def validate_strategy(strategy: Strategy, max_balance: int = 200) -> None:
    """Check the §3.1 contract over balances ``0..max_balance``.

    Raises ``AssertionError`` on the first violation. Used by tests and
    available to users implementing custom strategies.
    """
    previous_proactive = -1.0
    previous_useful = -1.0
    previous_useless = -1.0
    for balance in range(max_balance + 1):
        p = strategy.proactive(balance)
        assert 0.0 <= p <= 1.0, f"proactive({balance}) = {p} not a probability"
        assert p >= previous_proactive, (
            f"proactive not monotone at balance {balance}: {p} < {previous_proactive}"
        )
        previous_proactive = p
        r_useful = strategy.reactive(balance, True)
        r_useless = strategy.reactive(balance, False)
        assert r_useful >= 0 and r_useless >= 0, "reactive returned a negative count"
        if not strategy.requires_overdraft:
            assert r_useful <= balance and r_useless <= balance, (
                f"reactive overspends at balance {balance}: "
                f"useful={r_useful}, useless={r_useless}"
            )
        assert r_useful >= r_useless, (
            f"reactive not monotone in usefulness at balance {balance}"
        )
        assert r_useful >= previous_useful and r_useless >= previous_useless, (
            f"reactive not monotone in balance at {balance}"
        )
        previous_useful, previous_useless = r_useful, r_useless
    if strategy.token_capacity is not None:
        capacity = strategy.token_capacity
        assert strategy.proactive(capacity) == 1.0, (
            f"proactive({capacity}) != 1 despite declared capacity {capacity}"
        )
        if capacity > 0:
            assert strategy.proactive(capacity - 1) < 1.0, (
                f"declared capacity {capacity} is not minimal"
            )
