"""Probabilistic rounding (``randRound`` in Algorithm 4).

The reactive function may return a fractional number of messages ``r``
(the randomized token account returns ``a / A``). Algorithm 4 rounds it
probabilistically: the result is ``⌊r⌋ + ξ`` where
``ξ ~ Bernoulli(r − ⌊r⌋)``. The expectation of the rounded value equals
``r`` exactly, which is what makes the mean-field analysis of §4.3 apply
to the randomized strategy without bias.
"""

from __future__ import annotations

import math
import random


def rand_round(value: float, rng: random.Random) -> int:
    """Round ``value`` to an integer, up with probability ``frac(value)``.

    Parameters
    ----------
    value:
        A non-negative real number (the reactive function's output).
    rng:
        Source of the Bernoulli draw.

    Returns
    -------
    int
        Either ``⌊value⌋`` or ``⌈value⌉``; the expectation is ``value``.

    Examples
    --------
    >>> import random
    >>> rand_round(3.0, random.Random(0))
    3
    >>> results = {rand_round(2.5, random.Random(i)) for i in range(50)}
    >>> sorted(results)
    [2, 3]
    """
    if value < 0:
        raise ValueError(f"rand_round expects a non-negative value, got {value}")
    floor = math.floor(value)
    fraction = value - floor
    if fraction <= 0.0:
        return int(floor)
    if rng.random() < fraction:
        return int(floor) + 1
    return int(floor)
