"""The shared Algorithm-4 decision kernel (scalar + columnar).

One admission decision is a pure function of ``(balance, usefulness,
randomness)``: randRound the strategy's reactive budget — at least one
message means *react*; otherwise flip the proactive coin. Both the
serving layer (:class:`repro.serve.TokenAccountLimiter`) and the
vectorized simulation backend (:mod:`repro.backends.vectorized`) need
exactly this function, the former one key at a time on the request
path, the latter over whole node populations per slot. This module is
the single implementation both import, built on the strategy-LUT +
randRound machinery the vectorized backend introduced:

* :func:`strategy_tables` tabulates ``PROACTIVE(a)`` and
  ``REACTIVE(a, u)`` over the balance range once per strategy;
* :class:`DecisionKernel` fuses the reactive tables into integer-part /
  randRound-fraction pairs and answers either one decision
  (:meth:`~DecisionKernel.decide_one`) or a whole batch
  (:meth:`~DecisionKernel.decide_many`).

The RNG contract (what makes scalar ≡ batch testable)
-----------------------------------------------------
Every decision consumes **exactly two** uniforms, in a fixed order: the
randRound draw, then the proactive coin — even when a branch's outcome
does not need its draw (a zero reactive fraction, a 0/1 proactive
probability). ``decide_many`` draws ``rng.random((n, 2))``; NumPy fills
that row-major, so feeding the same seeded generator through n
``decide_one`` calls produces bit-identical verdicts. The equivalence
tests assert exactly this, strategy by strategy.

``reaction_counts`` intentionally does *not* follow the two-draw
contract: it reproduces the vectorized backend's historical draw
pattern (one uniform per message, no proactive coin), keeping existing
simulation runs bit-identical seed-for-seed.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.strategies import Strategy

#: lookup-table span for strategies without a finite capacity (their
#: balance is unbounded; the built-in overdraft reference is
#: balance-independent, so clipping the index is exact)
UNBOUNDED_LUT_SPAN = 64

#: verdict codes ``decide_many`` emits (int8-friendly)
VERDICT_SILENT = 0
VERDICT_REACTIVE = 1
VERDICT_PROACTIVE = 2

#: ``VERDICT_REASONS[code]`` is the scalar hook's string verdict
VERDICT_REASONS: Tuple[Optional[str], ...] = (None, "reactive", "proactive")


def strategy_tables(
    strategy: "Strategy",
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Lookup tables ``proactive[a]``, ``reactive[a, u]`` over balances.

    Returns ``(max_balance, proactive, reactive_useful, reactive_useless)``
    with tables indexed by ``clip(balance, 0, max_balance)``. For
    capacity-bounded strategies the balance lives in ``[0, C]`` by
    construction, so the tables are exact; for overdraft strategies the
    clipped lookup is exact because their functions ignore the balance.
    """
    capacity = strategy.token_capacity
    max_balance = capacity if capacity is not None else UNBOUNDED_LUT_SPAN
    balances = range(max_balance + 1)
    proactive = np.array([strategy.proactive(a) for a in balances], dtype=np.float64)
    useful = np.array([strategy.reactive(a, True) for a in balances], dtype=np.float64)
    useless = np.array(
        [strategy.reactive(a, False) for a in balances], dtype=np.float64
    )
    return max_balance, proactive, useful, useless


class DecisionKernel:
    """Tabulated Algorithm-4 decisions for one strategy, scalar or batch.

    Built once per strategy (cached on
    :attr:`repro.core.strategies.Strategy.decision_kernel`). The fused
    reactive tables are keyed by ``clip(balance) + useful·lut_span`` so
    a batch decision costs two gathers and two uniform draws per entry.
    """

    __slots__ = (
        "strategy",
        "lut_max",
        "lut_span",
        "pro_lut",
        "react_int_lut",
        "react_frac_lut",
        "can_react",
        "clip_index",
        "_pro_list",
        "_int_list",
        "_frac_list",
    )

    def __init__(self, strategy: "Strategy"):
        self.strategy = strategy
        self.lut_max, self.pro_lut, useful, useless = strategy_tables(strategy)
        # Fused reactive tables for the hot path: one table pair over
        # the key ``balance + useful·(C+1)`` holding the integer part
        # and the randRound fraction.
        fused = np.concatenate([useless, useful])
        self.react_int_lut = np.floor(fused).astype(np.int64)
        self.react_frac_lut = fused - np.floor(fused)
        self.lut_span = self.lut_max + 1
        #: strategies that never react (the purely proactive baseline)
        #: let callers skip the reaction machinery wholesale
        self.can_react = bool(fused.max() > 0.0)
        #: whether balances can leave ``[0, lut_max]`` (overdraft or no
        #: declared capacity) and the LUT index must clip
        self.clip_index = (
            strategy.requires_overdraft or strategy.token_capacity is None
        )
        # Plain-list mirrors: scalar lookups on python ints are ~3x
        # faster than indexing 0-d numpy scalars out of the arrays.
        self._pro_list = self.pro_lut.tolist()
        self._int_list = self.react_int_lut.tolist()
        self._frac_list = self.react_frac_lut.tolist()

    # ------------------------------------------------------------------
    def lut_index(self, balances: np.ndarray) -> np.ndarray:
        """Balances as LUT indices (clipped only when they can stray)."""
        if not self.clip_index:
            # Guarded balances live in [0, C] by construction (grants
            # clamp, withdrawals never overdraw): index directly.
            return balances
        return np.clip(balances, 0, self.lut_max)

    # ------------------------------------------------------------------
    def decide_one(self, balance: int, useful, rng) -> Optional[str]:
        """One Algorithm-4 decision; the batch-of-one scalar hook.

        ``rng`` needs only a ``random()`` method (``random.Random`` and
        ``numpy.random.Generator`` both qualify). Always consumes two
        uniforms (see the module docstring's RNG contract). Non-boolean
        usefulness grades and out-of-table balances fall back to the
        strategy's direct formulas, so graded and custom strategies get
        the exact same decision the LUT path encodes.
        """
        return self.decide_one_drawn(balance, useful, rng.random(), rng.random())

    def decide_one_drawn(
        self, balance: int, useful, u_round: float, u_coin: float
    ) -> Optional[str]:
        """:meth:`decide_one` with the two uniforms already drawn.

        The seam batch callers use to pre-draw one ``(n, 2)`` block and
        decide per key without touching the generator again.
        """
        if (useful is True or useful is False) and 0 <= balance <= self.lut_max:
            key = balance + self.lut_span if useful else balance
            count = self._int_list[key] + (u_round < self._frac_list[key])
            probability = self._pro_list[balance]
        else:
            desired = self.strategy.reactive(balance, useful)
            whole = math.floor(desired)
            count = whole + (u_round < desired - whole)
            probability = self.strategy.proactive(balance)
        if count >= 1:
            return "reactive"
        if probability >= 1.0 or (probability > 0.0 and u_coin < probability):
            return "proactive"
        return None

    def decide_many(
        self, balances: np.ndarray, useful, rng: np.random.Generator
    ) -> np.ndarray:
        """Columnar Algorithm 4: one int8 verdict code per balance.

        ``useful`` is a single bool applied to the whole batch or a
        boolean array aligned with ``balances``. Draws
        ``rng.random((n, 2))`` — bit-identical to n scalar
        :meth:`decide_one` calls on the same generator.
        """
        balances = np.asarray(balances)
        n = len(balances)
        draws = rng.random((n, 2))
        index = self.lut_index(balances)
        if useful is True:
            key = index + self.lut_span
        elif useful is False:
            key = index
        else:
            key = index + np.asarray(useful, dtype=np.int64) * self.lut_span
        counts = self.react_int_lut[key] + (draws[:, 0] < self.react_frac_lut[key])
        verdicts = np.where(counts >= 1, VERDICT_REACTIVE, VERDICT_SILENT).astype(
            np.int8
        )
        probability = self.pro_lut[index]
        proactive = (counts < 1) & (
            (probability >= 1.0) | ((probability > 0.0) & (draws[:, 1] < probability))
        )
        verdicts[proactive] = VERDICT_PROACTIVE
        return verdicts

    # ------------------------------------------------------------------
    def reaction_counts(
        self, balances: np.ndarray, useful: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized ``randRound(REACTIVE(a, u))`` for one arrival batch.

        The vectorized backend's reactive half: one uniform per entry
        (its historical draw pattern — deliberately *not* the two-draw
        decision contract, so existing simulation seeds stay
        bit-identical). Counts are not yet clamped to the balance; the
        caller owns the no-overspend clamp.
        """
        key = self.lut_index(balances) + useful * self.lut_span
        return self.react_int_lut[key] + (
            rng.random(len(key)) < self.react_frac_lut[key]
        )
