"""The application-facing API of the token account service (§3.2).

To run on top of the framework an application provides exactly the two
methods of the paper:

* ``create_message()`` — "responsible for constructing a message to be
  sent based on the current state". In all three demonstrator
  applications this just copies the current state.
* ``update_state(payload, sender)`` — "responsible for updating the
  current state based on the new message that has been received",
  returning the **usefulness** of the message (a boolean for now; the
  paper notes that "finer grading is possible in the future").

Beyond the paper's two methods the API exposes optional lifecycle and
control-plane hooks needed by the evaluation scenarios:

* ``on_online`` / ``on_offline`` — churn transitions; push gossip uses
  ``on_online`` for its initial pull request (§4.1.2);
* ``handle_control`` — non-Algorithm-4 messages (the pull request), which
  must bypass the reactive path since a pull request carries no update.

One application instance is bound to one node via :meth:`bind`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.protocol import TokenAccountNode
    from repro.sim.network import Message


class Application(ABC):
    """Per-node application logic plugged into Algorithm 4."""

    def __init__(self) -> None:
        self.node: "TokenAccountNode | None" = None

    def bind(self, node: "TokenAccountNode") -> None:
        """Attach this application instance to its node (called once)."""
        if self.node is not None:
            raise RuntimeError("application instance already bound to a node")
        self.node = node

    # ------------------------------------------------------------------
    # The paper's API (§3.2)
    # ------------------------------------------------------------------
    @abstractmethod
    def create_message(self) -> Any:
        """Build the payload for an outgoing message from current state."""

    @abstractmethod
    def update_state(self, payload: Any, sender: int) -> bool:
        """Fold an incoming payload into local state; return usefulness."""

    # ------------------------------------------------------------------
    # Optional hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the node's protocol starts."""

    def on_online(self) -> None:
        """Called when the node transitions offline -> online."""

    def on_offline(self) -> None:
        """Called when the node transitions online -> offline."""

    def handle_control(self, message: "Message") -> bool:
        """Handle a non-data message; return ``True`` if consumed.

        Messages whose ``kind`` is not ``"data"`` are offered here and
        never enter the Algorithm 4 reactive path.
        """
        return False
