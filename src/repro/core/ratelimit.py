"""Auditing the rate-limitation property of §3.4.

The paper proves a simple burst bound: with token capacity ``C`` (the
smallest balance at which the proactive function is 1), "a node cannot
send more than ⌊t/Δ⌋ + C messages within a period of time t".

The derivation, adapted to our implementation: in any half-open window of
length ``t`` a node's timer fires at most ``⌈t/Δ⌉`` times; each tick
either sends one proactive message or banks one token; reactive sends
spend banked tokens, of which at most ``C`` existed at the window start
and at most one more per banking tick accrued inside the window. Hence::

    sends(window of length t)  <=  ⌈t/Δ⌉ + C  =  burst_bound(t, Δ, C)

(The ceiling rather than the paper's floor covers windows that are not
aligned with the tick grid; for ``t`` an exact multiple of ``Δ`` the two
coincide.)

:class:`RateLimitAuditor` records every send via a network listener and
checks the bound over **all** windows after the run — this is the
executable form of the paper's guarantee, used by the property tests and
the ``test_ratelimit_bound`` bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.network import Message, Network


def burst_bound(window: float, period: float, capacity: int) -> int:
    """Maximum sends allowed in any window of the given length (§3.4)."""
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    return math.ceil(window / period) + capacity


@dataclass(frozen=True)
class RateLimitViolation:
    """One window in which a node exceeded the §3.4 bound."""

    node_id: int
    window_start: float
    window_length: float
    sends: int
    bound: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"node {self.node_id} sent {self.sends} > {self.bound} messages "
            f"in [{self.window_start:.3f}, "
            f"{self.window_start + self.window_length:.3f})"
        )


class RateLimitAuditor:
    """Records send timestamps and verifies the burst bound post-hoc.

    Attach before the run::

        auditor = RateLimitAuditor(network)
        ... run simulation ...
        violations = auditor.check(period=delta, capacity=C)
        assert not violations

    Only ``data`` messages count: control messages (the pull request of
    §4.1.2) carry no payload and are not part of the paper's accounting,
    but pull *replies* burn a token and therefore are data messages.

    The auditor also works without a simulated network: pass
    ``network=None`` and feed it events directly with :meth:`record` —
    this is how the serving-layer tests audit wall-clock admission
    timestamps from :class:`repro.serve.TokenAccountLimiter` against the
    same bound the simulation proves.
    """

    def __init__(self, network: Optional[Network] = None, kinds: tuple = ("data",)):
        self.kinds = kinds
        self.send_times: Dict[int, List[float]] = {}
        if network is not None:
            network.add_send_listener(self._on_send)

    def _on_send(self, message: Message) -> None:
        if message.kind in self.kinds:
            self.send_times.setdefault(message.src, []).append(message.sent_at)

    def record(self, node_id: int, time: float) -> None:
        """Record one send/admission directly (non-simulated callers).

        Times must arrive in non-decreasing order per node, matching what
        the network listener delivers; :meth:`max_sends_in_window` relies
        on sorted timestamps.
        """
        times = self.send_times.setdefault(node_id, [])
        if times and time < times[-1]:
            raise ValueError(
                f"non-monotone record for node {node_id}: {time} after {times[-1]}"
            )
        times.append(time)

    # ------------------------------------------------------------------
    def total_sends(self, node_id: int) -> int:
        return len(self.send_times.get(node_id, ()))

    def max_sends_in_window(self, node_id: int, window: float) -> int:
        """Largest send count over all half-open windows of length ``window``.

        It suffices to check windows starting at each send time (a sliding
        window achieves its maximum when its left edge sits on a send).

        The window edge is compared with a scale-relative epsilon: tick
        times are ``phase + k·Δ`` and the edge is ``(phase + j·Δ) + w``,
        two float expressions that can disagree by an ulp — enough for a
        send mathematically *at* the edge of a ``[t, t + Δ)`` window to
        land spuriously inside it and flag an every-round sender
        (``C = 0``) as bursting. Real spacings are whole transfer times
        (seconds), so a sub-microsecond tolerance can never mask a true
        violation.
        """
        times = self.send_times.get(node_id)
        if not times:
            return 0
        best = 1
        right = 0
        n = len(times)
        for left in range(n):
            if right < left:
                right = left
            edge = times[left] + window
            edge -= 1e-9 * max(1.0, abs(edge))
            while right + 1 < n and times[right + 1] < edge:
                right += 1
            best = max(best, right - left + 1)
        return best

    def check(
        self,
        period: float,
        capacity: int,
        windows: Optional[List[float]] = None,
    ) -> List[RateLimitViolation]:
        """Verify the §3.4 bound for every node over the given windows.

        Parameters
        ----------
        period:
            The round length Δ.
        capacity:
            The strategy's token capacity ``C``.
        windows:
            Window lengths to audit; defaults to ``Δ/2``, ``Δ``, ``5Δ``
            and ``20Δ`` which between them catch both instantaneous
            bursts and sustained-rate violations.
        """
        if windows is None:
            windows = [period / 2, period, 5 * period, 20 * period]
        violations: List[RateLimitViolation] = []
        for node_id, times in self.send_times.items():
            for window in windows:
                bound = burst_bound(window, period, capacity)
                count = self.max_sends_in_window(node_id, window)
                if count > bound:
                    start = self._worst_window_start(times, window)
                    violations.append(
                        RateLimitViolation(node_id, start, window, count, bound)
                    )
        return violations

    @staticmethod
    def _worst_window_start(times: List[float], window: float) -> float:
        best_count = 0
        best_start = times[0] if times else 0.0
        right = 0
        n = len(times)
        for left in range(n):
            if right < left:
                right = left
            # Same scale-relative edge epsilon as max_sends_in_window.
            edge = times[left] + window
            edge -= 1e-9 * max(1.0, abs(edge))
            while right + 1 < n and times[right + 1] < edge:
                right += 1
            if right - left + 1 > best_count:
                best_count = right - left + 1
                best_start = times[left]
        return best_start
