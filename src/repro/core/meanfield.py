"""Mean-field model of the token dynamics (§4.3).

The paper closes with a short analytical derivation of the average number
of tokens per node in a failure-free system. With ``a(t)`` the average
balance and ``w(t)`` the average number of messages sent per node up to
time ``t``, the mean-field equations are::

    da/dt   = 1/Δ − dw/dt                                   (8)
    d²w/dt² = dw/dt · (reactive(a, u) − 1) + proactive(a)/Δ  (9)

Equation (8): the balance grows by one token per round and shrinks by one
per sent message. Equation (9): the change in send rate comes from
reactive amplification (each received message triggers ``reactive(a, u)``
messages, replacing itself — hence the ``− 1``) plus the proactive rate.

At equilibrium (``da/dt = 0``, ``d²w/dt² = 0``)::

    reactive(a, u) + proactive(a) = 1                        (10)

For the randomized token account with ``u = 1`` this solves in closed
form to ``a = A·C / (C + 1) ≈ A``, which Figure 5 validates against
simulation. This module provides the closed form, a generic numeric
equilibrium solver, and an RK4 integrator for the full transient — the
trajectory from the all-zero initial condition that the simulated token
counts in Figure 5 follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.strategies import RandomizedTokenAccount, Strategy


def randomized_equilibrium(spend_rate: int, capacity: int) -> float:
    """Closed-form equilibrium balance for the randomized strategy, u = 1.

    ``a = A·C / (C + 1)`` — derived by substituting ``reactive = a/A`` and
    the linear segment of the proactive function into equation (10).

    >>> randomized_equilibrium(10, 20)
    9.523809523809524
    """
    if spend_rate < 1:
        raise ValueError(f"A must be >= 1, got {spend_rate}")
    if capacity < spend_rate:
        raise ValueError(f"C must be >= A, got A={spend_rate}, C={capacity}")
    return spend_rate * capacity / (capacity + 1)


def solve_equilibrium(
    strategy: Strategy,
    useful: bool = True,
    tolerance: float = 1e-9,
    useful_probability: Optional[float] = None,
) -> float:
    """Numerically solve equation (10) for the equilibrium balance.

    Uses bisection on ``g(a) = reactive(a, u) + proactive(a) − 1`` over
    ``[0, C]`` with the strategy's *continuous* relaxations. ``g`` is
    monotone non-decreasing (both terms are), so bisection is sound; if
    ``g`` never crosses zero the boundary with the smaller residual is
    returned (e.g. the purely proactive strategy pins the balance at 0).

    Parameters
    ----------
    useful:
        Usefulness assumed for the reactive term (the paper uses
        ``u = 1``). Ignored when ``useful_probability`` is given.
    useful_probability:
        Optional mean-field mix: the reactive term becomes
        ``p·reactive(a, 1) + (1−p)·reactive(a, 0)``.
    """
    capacity = strategy.token_capacity
    if capacity is None:
        raise ValueError("equilibrium requires a strategy with finite capacity")

    def reactive_term(balance: float) -> float:
        if useful_probability is None:
            return strategy.continuous_reactive(balance, useful)
        p = useful_probability
        return p * strategy.continuous_reactive(balance, True) + (
            1.0 - p
        ) * strategy.continuous_reactive(balance, False)

    def g(balance: float) -> float:
        return reactive_term(balance) + strategy.continuous_proactive(balance) - 1.0

    low, high = 0.0, float(capacity)
    g_low, g_high = g(low), g(high)
    if g_low >= 0:
        return low
    if g_high <= 0:
        return high
    while high - low > tolerance:
        mid = (low + high) / 2
        if g(mid) < 0:
            low = mid
        else:
            high = mid
    return (low + high) / 2


@dataclass
class MeanFieldTrajectory:
    """The integrated mean-field transient.

    Attributes
    ----------
    times:
        Sample times, in virtual seconds.
    balances:
        ``a(t)`` — average token balance.
    send_rates:
        ``dw/dt`` — average messages sent per node per second.
    """

    times: List[float]
    balances: List[float]
    send_rates: List[float]

    def final_balance(self) -> float:
        return self.balances[-1]


class MeanFieldModel:
    """Integrator for the mean-field token dynamics of §4.3.

    The raw system (8)–(9) is *stiff*: the message population reacts on
    the transfer-time scale (seconds) while the token balance moves on
    the round scale (minutes) — a ~100:1 separation in the paper's setup.
    We therefore integrate the slow variable on its **slow manifold**:
    given balance ``a``, the message population equilibrates almost
    instantly (setting ``d²w/dt² = 0`` in equation (9)) at

        s(a) = dw/dt = (proactive(a)/Δ) / (1 − reactive(a, u)),

    the proactive seed rate amplified by the geometric reactive cascade.
    Substituting into equation (8) leaves a one-dimensional ODE::

        da/dt = 1/Δ − s(a)

    whose unique fixed point is exactly equation (10):
    ``reactive(a, u) + proactive(a) = 1``. Where ``reactive(a, u) >= 1``
    the cascade is token-limited rather than supply-limited; there the
    send rate is capped at the rate that drains the balance over one
    response time (``1/Δ + a/response_time``), which only matters for
    transients started above the equilibrium.

    Parameters
    ----------
    strategy:
        The strategy whose continuous relaxations define the vector field.
    period:
        The round length Δ.
    useful_probability:
        Mean-field probability that an incoming message is useful. The
        paper takes ``u = 1`` for gossip learning ("most incoming
        messages are better than the locally stored random walk"); push
        gossip in steady state would use a lower value.
    response_time:
        Timescale of the reactive cascade — the per-message transfer
        time. Defaults to Δ/100, the paper's ratio.
    """

    def __init__(
        self,
        strategy: Strategy,
        period: float,
        useful_probability: float = 1.0,
        response_time: Optional[float] = None,
    ):
        if not 0.0 <= useful_probability <= 1.0:
            raise ValueError(
                f"useful_probability must be in [0, 1], got {useful_probability}"
            )
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.strategy = strategy
        self.period = period
        self.useful_probability = useful_probability
        self.response_time = response_time if response_time else period / 100.0

    # ------------------------------------------------------------------
    def _reactive_mean(self, balance: float) -> float:
        """Usefulness-averaged continuous reactive value at ``balance``."""
        p = self.useful_probability
        useful_part = self.strategy.continuous_reactive(balance, True) if p > 0 else 0.0
        useless_part = (
            self.strategy.continuous_reactive(balance, False) if p < 1 else 0.0
        )
        return p * useful_part + (1.0 - p) * useless_part

    def send_rate(self, balance: float) -> float:
        """Quasi-static send rate ``s(a)`` on the slow manifold."""
        balance = max(0.0, balance)
        seed = self.strategy.continuous_proactive(balance) / self.period
        amplification = self._reactive_mean(balance)
        token_limit = 1.0 / self.period + balance / self.response_time
        if amplification >= 1.0:
            return token_limit
        return min(seed / (1.0 - amplification), token_limit)

    def _derivative(self, balance: float) -> float:
        """Right-hand side of the reduced equation (8)."""
        return 1.0 / self.period - self.send_rate(balance)

    def integrate(
        self,
        horizon: float,
        initial_balance: float = 0.0,
        step: float | None = None,
        samples: int = 200,
    ) -> MeanFieldTrajectory:
        """Integrate the transient from ``t = 0`` to ``t = horizon``.

        Parameters
        ----------
        horizon:
            Integration end time in virtual seconds.
        initial_balance:
            Initial balance; the paper's experiments start at 0 tokens.
        step:
            RK4 step; defaults to ``min(Δ/50, response_time)`` — small
            enough for the token-limited branch of the vector field.
        samples:
            Number of evenly spaced points recorded in the trajectory.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if step is None:
            step = min(self.period / 50.0, self.response_time)
        balance = float(initial_balance)
        sample_interval = horizon / samples
        next_sample = 0.0
        times: List[float] = []
        balances: List[float] = []
        send_rates: List[float] = []
        t = 0.0
        while True:
            if t >= next_sample - 1e-12:
                times.append(t)
                balances.append(balance)
                send_rates.append(self.send_rate(balance))
                next_sample += sample_interval
            if t >= horizon - 1e-12:
                break
            h = min(step, horizon - t)
            k1 = self._derivative(balance)
            k2 = self._derivative(balance + h / 2 * k1)
            k3 = self._derivative(balance + h / 2 * k2)
            k4 = self._derivative(balance + h * k3)
            balance += h / 6 * (k1 + 2 * k2 + 2 * k3 + k4)
            balance = max(0.0, balance)
            if self.strategy.token_capacity is not None:
                balance = min(balance, float(self.strategy.token_capacity))
            t += h
        return MeanFieldTrajectory(times, balances, send_rates)

    def predicted_equilibrium(self) -> float:
        """Equilibrium balance from equation (10).

        Uses the closed form for the randomized strategy with ``u = 1``
        and the numeric solver otherwise.
        """
        if (
            isinstance(self.strategy, RandomizedTokenAccount)
            and self.useful_probability == 1.0
        ):
            return randomized_equilibrium(
                self.strategy.spend_rate, self.strategy.capacity
            )
        return solve_equilibrium(
            self.strategy, useful_probability=self.useful_probability
        )
