"""Graded usefulness — the paper's stated future work (§3.1).

"Currently we assume that u is a Boolean value (the message is either
useful or not). Finer grading is possible in the future."

This module implements that extension. The framework contract is
widened, fully backward-compatibly:

* ``updateState`` may return a **float in [0, 1]** instead of a bool —
  the *degree* of usefulness of the received message;
* binary strategies coarsen a graded value through truthiness (any
  positive grade counts as useful), so every §3.3 strategy keeps working
  unchanged;
* the graded strategies below consume the full grade, scaling their
  reactive budget with it, and reduce *exactly* to their binary parents
  at ``u ∈ {0, 1}``.

Monotonicity in ``u`` — the §3.1 contract — holds by construction: both
reactive functions below are linear in the grade.

The demonstrator applications expose an opt-in grading mode:

* push gossip — grade = freshness gap, saturating at ``grading_scale``
  updates ("this message advances me 7 updates" is worth more tokens
  than "it advances me 1");
* gossip learning — grade = age gap of the received model, saturating;
* chaotic iteration — grade = relative change of the local value,
  saturating at ``grading_scale`` relative change.
"""

from __future__ import annotations

from repro.core.strategies import (
    _AC_PARAMS,
    GeneralizedTokenAccount,
    RandomizedTokenAccount,
)
from repro.registry import strategies as strategy_registry


def as_grade(usefulness) -> float:
    """Normalize an ``updateState`` return value to a grade in [0, 1].

    Booleans map to 0.0/1.0; floats are validated and passed through.
    """
    if isinstance(usefulness, bool):
        return 1.0 if usefulness else 0.0
    grade = float(usefulness)
    if not 0.0 <= grade <= 1.0:
        raise ValueError(f"usefulness grade must be in [0, 1], got {grade}")
    return grade


def saturating_grade(gap: float, scale: float) -> float:
    """Map a non-negative gap to a grade, saturating at ``scale``.

    ``grade = min(1, gap / scale)`` — the simplest monotone grading. A
    gap of 0 (no new information) grades 0; gaps at or beyond ``scale``
    grade 1, recovering the binary behaviour for large jumps.
    """
    if scale <= 0:
        raise ValueError(f"grading scale must be positive, got {scale}")
    if gap <= 0:
        return 0.0
    return min(1.0, gap / scale)


@strategy_registry.register(
    "graded-randomized",
    summary="randomized token account spending u*a/A on graded usefulness",
    params=_AC_PARAMS,
)
class GradedRandomizedTokenAccount(RandomizedTokenAccount):
    """Randomized token account with a graded reactive function.

    ``REACTIVE(a, u) = u · a / A`` — linear in the grade, so a
    marginally useful message spends proportionally fewer tokens. At
    ``u ∈ {0, 1}`` this is exactly the §3.3.3 strategy, and the §4.3
    equilibrium generalizes to ``reactive + proactive = 1`` with
    ``reactive = ū·a/A`` where ``ū`` is the mean grade.
    """

    name = "graded-randomized"

    def reactive(self, balance: int, useful) -> float:
        grade = as_grade(useful)
        if grade == 0.0:
            return 0.0
        return grade * balance / self.spend_rate

    def describe(self) -> str:
        return f"graded-randomized(A={self.spend_rate}, C={self.capacity})"


@strategy_registry.register(
    "graded-generalized",
    summary="generalized token account with a linearly interpolated graded budget",
    params=_AC_PARAMS,
)
class GradedGeneralizedTokenAccount(GeneralizedTokenAccount):
    """Generalized token account with a graded reactive function.

    The binary version spends the full budget on useful messages and
    half on useless ones; the graded version interpolates linearly::

        REACTIVE(a, u) = ⌊ (A − 1 + a) / A · (1 + u) / 2 ⌋

    which reduces to equation (3) at ``u ∈ {0, 1}`` (the floor of the
    halved budget equals ``⌊(A−1+a)/(2A)⌋`` since ``(A−1+a)/A`` is
    evaluated before flooring in the interpolated form — see the unit
    tests for the exact equivalence check).
    """

    name = "graded-generalized"

    def reactive(self, balance: int, useful) -> float:
        grade = as_grade(useful)
        budget = (self.spend_rate - 1 + balance) / self.spend_rate
        return float(int(budget * (1.0 + grade) / 2.0))

    def describe(self) -> str:
        return f"graded-generalized(A={self.spend_rate}, C={self.capacity})"
