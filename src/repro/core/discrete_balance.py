"""Exact discrete Markov model of the token balance.

The §4.3 mean-field treats the balance as a continuous quantity; Figure 5
shows it matching simulation well for moderate ``A``. For small ``A`` the
balance is a *small integer* and the continuum approximation carries an
O(1)-token error — our benches measure, e.g., a simulated average of
≈0.99 tokens for ``A = 1, C = 2`` against the mean-field prediction of
2/3. This module computes the **exact stationary distribution** of the
balance as a Markov chain on ``{0, ..., C}``, closing that gap.

Model (failure-free, usefulness ``u = 1``, randomized token account):

* Per round, a node receives ``k ~ Poisson(λ)`` messages. In the
  failure-free steady state ``λ = 1``: every round each node earns
  exactly one token, no token is ever discarded (grants are only clamped
  at ``a = C``, where the proactive probability is 1 and the round's
  token is spent, not banked), so long-run sends per node per round —
  and hence receives — equal 1.
* Each arrival spends ``randRound(reactive(a, 1))`` tokens given the
  current balance ``a`` (sequentially, so the balance decays within the
  round).
* Once per round the tick fires: with probability ``proactive(a)`` the
  node sends (balance unchanged — the round's token is used directly),
  otherwise it banks one token (clamped at ``C``).

The chain composes the arrival-spend kernel (marginalized over the
Poisson arrival count) with the tick kernel; its stationary vector gives
the exact balance distribution. For moderate ``A`` it agrees with the
mean-field; for ``A = 1`` it reproduces the simulated value.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.strategies import Strategy


def _spend_distribution(strategy: Strategy, balance: int) -> List[float]:
    """Distribution of tokens spent on one arriving useful message.

    ``randRound(reactive(a, 1))`` takes one of two adjacent integer
    values; returns a dense probability vector over ``0..balance``.
    """
    desired = strategy.reactive(balance, True)
    floor = int(math.floor(desired))
    fraction = desired - floor
    probabilities = [0.0] * (balance + 1)
    floor = min(floor, balance)
    probabilities[floor] += 1.0 - fraction
    if fraction > 0:
        probabilities[min(floor + 1, balance)] += fraction
    return probabilities


def _arrival_kernel(strategy: Strategy, capacity: int) -> np.ndarray:
    """One-message transition matrix ``K[a, a']`` (spend on arrival)."""
    size = capacity + 1
    kernel = np.zeros((size, size))
    for balance in range(size):
        for spent, probability in enumerate(_spend_distribution(strategy, balance)):
            if probability > 0:
                kernel[balance, balance - spent] += probability
    return kernel


def _tick_kernel(strategy: Strategy, capacity: int) -> np.ndarray:
    """Per-round tick transition: send (stay) or bank one token."""
    size = capacity + 1
    kernel = np.zeros((size, size))
    for balance in range(size):
        p_send = strategy.proactive(balance)
        kernel[balance, balance] += p_send
        banked = min(balance + 1, capacity)
        kernel[balance, banked] += 1.0 - p_send
    return kernel


def round_transition_matrix(
    strategy: Strategy,
    arrival_rate: float = 1.0,
    max_arrivals: int = 30,
) -> np.ndarray:
    """Full one-round transition matrix of the balance chain.

    Arrivals are Poisson(``arrival_rate``) per round, applied before the
    tick (the tick's position within the round shifts the distribution by
    less than one arrival and is irrelevant for the stationary mean at
    this accuracy). The Poisson series is truncated at ``max_arrivals``
    with the tail mass folded into the last term.
    """
    capacity = strategy.token_capacity
    if capacity is None:
        raise ValueError("the balance chain requires a finite token capacity")
    size = capacity + 1
    arrival = _arrival_kernel(strategy, capacity)
    powers = [np.eye(size)]
    for _ in range(max_arrivals):
        powers.append(powers[-1] @ arrival)
    weights = [
        math.exp(-arrival_rate) * arrival_rate**k / math.factorial(k)
        for k in range(max_arrivals + 1)
    ]
    weights[-1] += 1.0 - sum(weights)  # fold the truncated tail
    arrivals_marginal = sum(w * p for w, p in zip(weights, powers))
    return arrivals_marginal @ _tick_kernel(strategy, capacity)


def stationary_distribution(
    strategy: Strategy,
    arrival_rate: float = 1.0,
    max_arrivals: int = 30,
) -> np.ndarray:
    """Stationary balance distribution ``π`` with ``π T = π``.

    Solved directly from the transition matrix's left null space; the
    chain on ``{0..C}`` is finite and (for every §3.3 strategy with
    positive arrival rate) irreducible and aperiodic, so ``π`` is unique.
    """
    transition = round_transition_matrix(strategy, arrival_rate, max_arrivals)
    size = transition.shape[0]
    # Solve (T^t - I) pi = 0 with the normalization sum(pi) = 1.
    system = np.vstack([transition.T - np.eye(size), np.ones(size)])
    rhs = np.zeros(size + 1)
    rhs[-1] = 1.0
    solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    solution = np.clip(solution, 0.0, None)
    return solution / solution.sum()


def stationary_mean_balance(
    strategy: Strategy,
    arrival_rate: float = 1.0,
    max_arrivals: int = 30,
) -> float:
    """Exact stationary mean balance — the discrete analogue of §4.3.

    >>> from repro.core.strategies import RandomizedTokenAccount
    >>> mean = stationary_mean_balance(RandomizedTokenAccount(10, 20))
    >>> 9.0 < mean < 11.0   # close to the mean-field A*C/(C+1) = 9.52
    True
    """
    distribution = stationary_distribution(strategy, arrival_rate, max_arrivals)
    return float(np.arange(len(distribution)) @ distribution)
