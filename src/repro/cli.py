"""Command-line interface: ``python -m repro <command>``.

Gives shell access to the main library entry points:

* ``run`` — run one configured experiment and print the metric series;
* ``list`` — enumerate the registered strategies, applications, overlays
  and churn models with their parameter schemas;
* ``figure`` — regenerate a paper figure (1–5) at a chosen scale;
* ``sweep`` — the §4.2 parameter-space exploration;
* ``suite`` — the full multi-strategy sweep as one parallel suite with
  per-cell progress/ETA and a JSON artifact;
* ``report`` — rebuild figures or suite tables purely from a result
  store, simulating nothing (``repro report figure 2 --store runs/``);
* ``store`` — inspect (``ls``), prune (``gc``) or compare (``diff``)
  content-addressed result stores;
* ``serve`` — run the asyncio TCP admission server: every registered
  strategy as a live rate limiter (``repro serve --strategy simple -C 50
  --period 0.1 --port 7700``);
* ``loadgen`` — replay an open-loop Poisson or flash-crowd arrival
  pattern against a running server and report admitted/rejected counts
  and latency percentiles;
* ``trace`` — generate a synthetic STUNner-like availability trace to a
  file and print its Figure-1 statistics.

Passing ``--store PATH`` (or setting ``REPRO_STORE``) to ``run`` /
``figure`` / ``sweep`` / ``suite`` memoizes every simulated cell: reruns
skip cached cells bit-identically, and a killed suite resumes from the
cells it already finished.

Every choice list (``--app``, ``--strategy``, ``--overlay``,
``--scenario``) is derived from the component registries
(:mod:`repro.registry`), so registering a new component makes it
runnable from the shell with no CLI changes. Examples::

    python -m repro run --app push-gossip --strategy randomized -A 10 -C 20 \\
        --nodes 500 --periods 200
    python -m repro run --app chaotic-iteration --strategy randomized \\
        -A 5 -C 10 --scenario trace --nodes 300 --periods 100
    python -m repro run --app push-gossip --strategy randomized -A 10 -C 20 \\
        --overlay watts-strogatz --loss-rate 0.1
    python -m repro run --app gossip-learning --strategy simple -C 10 \\
        --scenario flash-crowd
    python -m repro list
    python -m repro figure 2 --app gossip-learning --scale ci
    python -m repro sweep --app push-gossip --strategy generalized
    python -m repro suite --app gossip-learning --workers 8 --save suite.json
    python -m repro trace --users 2000 --out trace.txt

Parallelism is controlled per-command with ``--workers`` or globally
with the ``REPRO_WORKERS`` environment variable (default: CPU count).
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Dict, List, Optional

from repro.churn.stats import trace_summary
from repro.churn.stunner import StunnerTraceConfig, generate_stunner_like_trace
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_series_table
from repro.experiments.runner import run_experiment
from repro.experiments.scale import (
    ScalePreset,
    current_scale,
    scale_names,
    scale_preset,
)
from repro.experiments.sweep import sweepable_strategies
from repro.registry import (
    ALL_REGISTRIES,
    applications,
    backends,
    churn_models,
    overlays,
    strategies,
)
from repro.scenarios import ARRIVAL_PATTERNS, SCENARIOS, ComponentRef
from repro.sim.randomness import RandomStreams
from repro.store import ResultStore, StoreMissError, diff_stores, resolve_store


def _parse_component_param(text: str) -> tuple:
    """Parse a ``key=value`` override; values read as Python literals."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(f"expected KEY=VALUE, got {text!r}")
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw  # plain strings may be spelled without quotes
    return key, value


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "content-addressed result store: reuse cached cells, persist "
            "new ones (default: the REPRO_STORE environment variable)"
        ),
    )


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", required=True, choices=applications.names())
    parser.add_argument("--strategy", required=True, choices=strategies.names())
    parser.add_argument("-A", "--spend-rate", type=int, default=None)
    parser.add_argument("-C", "--capacity", type=int, default=None)
    parser.add_argument("--nodes", type=int, default=500)
    parser.add_argument("--periods", type=int, default=200)
    parser.add_argument("--scenario", choices=SCENARIOS, default="failure-free")
    parser.add_argument(
        "--churn",
        choices=churn_models.names(),
        default=None,
        help="churn model (overrides the --scenario preset's choice)",
    )
    parser.add_argument(
        "--overlay",
        choices=overlays.names(),
        default=None,
        help="overlay topology (default: the app's §4.1 overlay)",
    )
    parser.add_argument(
        "--backend",
        choices=backends.names(),
        default="event",
        help=(
            "simulation backend: 'event' is the exact discrete-event "
            "reference, 'vectorized' the bulk-synchronous NumPy engine "
            "for large --nodes (push-gossip scenarios)"
        ),
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--loss-rate", type=float, default=0.0)
    parser.add_argument(
        "--transfer-jitter",
        type=float,
        default=0.0,
        help="relative uniform jitter on the per-message transfer time",
    )
    parser.add_argument(
        "--period-spread",
        type=float,
        default=0.0,
        help="heterogeneous node periods: uniform on period*(1±spread)",
    )
    parser.add_argument("--grading-scale", type=float, default=None)
    parser.add_argument(
        "--app-param",
        action="append",
        type=_parse_component_param,
        default=None,
        metavar="KEY=VALUE",
        help="extra application parameter (see `repro list`); repeatable",
    )
    parser.add_argument(
        "--churn-param",
        action="append",
        type=_parse_component_param,
        default=None,
        metavar="KEY=VALUE",
        help="extra churn-model parameter (see `repro list`); repeatable",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="verify the §3.4 burst bound after the run",
    )
    parser.add_argument(
        "--save",
        type=str,
        default=None,
        metavar="FILE",
        help="write the result to FILE (.json or .csv)",
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        app=args.app,
        strategy=args.strategy,
        spend_rate=args.spend_rate,
        capacity=args.capacity,
        n=args.nodes,
        periods=args.periods,
        scenario=args.scenario,
        overlay=args.overlay,
        seed=args.seed,
        loss_rate=args.loss_rate,
        transfer_jitter=args.transfer_jitter,
        period_spread=args.period_spread,
        grading_scale=args.grading_scale,
        audit_sends=args.audit,
        backend=args.backend,
    )


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    target = config
    if args.app_param or args.churn or args.churn_param:
        # Component-level overrides go beyond the flat config surface:
        # compile to the declarative spec and patch the component refs.
        spec = config.to_spec()
        if args.app_param:
            spec = spec.with_overrides(app=spec.app.with_params(**dict(args.app_param)))
        if args.churn:
            spec = spec.with_overrides(churn=ComponentRef(args.churn))
        if args.churn_param:
            spec = spec.with_overrides(
                churn=spec.churn.with_params(**dict(args.churn_param))
            )
        target = spec
    print(f"running {target.label()} (N={config.n}, periods={config.periods})")
    result = run_experiment(target, store=resolve_store(args.store))
    print(format_series_table({config.strategy: result.metric}, rows=15))
    print()
    print(result.summary())
    if args.audit:
        if result.ratelimit_violations:
            print(f"BURST BOUND VIOLATED: {len(result.ratelimit_violations)} windows")
            return 1
        print("burst bound verified: no window exceeded ceil(t/Δ) + C sends")
    if args.save:
        from repro.experiments.export import save_result

        save_result(result, args.save)
        print(f"saved to {args.save}")
    return 0


def _command_list(args: argparse.Namespace) -> int:
    """Enumerate the component registries with their parameter schemas."""
    sections = ALL_REGISTRIES
    if args.kind:
        sections = {args.kind: ALL_REGISTRIES[args.kind]}
    first = True
    for title, registry in sections.items():
        if not first:
            print()
        first = False
        print(f"{title}:")
        for entry in registry:
            description = entry.describe().replace("\n", "\n  ")
            print(f"  {description}")
    print()
    print(f"scenarios (churn presets for --scenario): {', '.join(SCENARIOS)}")
    return 0


def _resolve_scale(name: Optional[str]) -> ScalePreset:
    """Resolve ``--scale`` (explicit choice) or fall back to ``REPRO_SCALE``.

    The explicit choice is threaded as a :class:`ScalePreset` value and
    never written back to ``os.environ`` — mutating ``REPRO_SCALE``
    would leak one command's ``--scale`` into every later in-process
    invocation and into forked suite workers (regression-tested in
    ``tests/test_cli.py``).
    """
    if name is None:
        return current_scale()
    return scale_preset(name)


def _figure_data(args: argparse.Namespace, offline: bool = False):
    """Compute (or, for reports, replay) one figure's data; None on usage error.

    ``offline=True`` is the ``repro report`` path: every simulation cell
    must come from the store, otherwise :class:`StoreMissError` escapes
    to the caller.
    """
    from repro.experiments import figures

    scale = _resolve_scale(args.scale)
    store = resolve_store(args.store)
    number = args.number
    if number == 1:
        # Figure 1 is pure trace statistics — it has no simulation cells,
        # so it needs no store even in offline report mode.
        return figures.figure1(scale=scale, seed=args.seed)
    if offline and store is None:
        raise ValueError("repro report needs --store (or REPRO_STORE) for figures 2-5")
    if number in (2, 3, 4):
        if args.app is None:
            print("--app is required for figures 2-4", file=sys.stderr)
            return None
        builder = {2: figures.figure2, 3: figures.figure3, 4: figures.figure4}[number]
        return builder(
            args.app,
            scale=scale,
            seed=args.seed,
            quick=args.quick,
            workers=args.workers,
            store=store,
            offline=offline,
        )
    if number == 5:
        return figures.figure5(
            scale=scale,
            seed=args.seed,
            workers=args.workers,
            store=store,
            offline=offline,
        )
    print(f"unknown figure {number}; the paper has figures 1-5", file=sys.stderr)
    return None


def _print_figure(data, args: argparse.Namespace) -> int:
    """Shared ``figure`` / ``report figure`` rendering path."""
    from repro.experiments.report import format_messages_per_node

    print(f"{data.name}: {data.description}")
    print(f"scale: {data.scale_label}\n")
    print(format_series_table(data.series, rows=args.rows))
    if args.plot:
        from repro.experiments.ascii_plot import ascii_chart

        print()
        print(
            ascii_chart(
                data.series,
                log_y=args.log,
                title=data.description,
            )
        )
    if data.message_rates:
        print()
        print(format_messages_per_node(data.message_rates))
    for key, value in data.extras.items():
        if key in ("meanfield",):
            continue
        print(f"\n{key}: {value}")
    if args.save:
        from repro.experiments.export import save_figure

        save_figure(data, args.save)
        print(f"saved to {args.save}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    data = _figure_data(args)
    if data is None:
        return 2
    return _print_figure(data, args)


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import format_sweep_table, run_sweep

    scale = _resolve_scale(args.scale)
    cells = run_sweep(
        args.app,
        args.strategy,
        scale=scale,
        seed=args.seed,
        scenario=args.scenario,
        workers=args.workers,
        store=resolve_store(args.store),
    )
    higher_is_better = args.app == "gossip-learning"
    print(
        f"{args.app} / {args.strategy} over the (A, C) grid "
        f"({'higher' if higher_is_better else 'lower'} is better):"
    )
    print(format_sweep_table(cells, higher_is_better=higher_is_better))
    return 0


def _suite_bundle(args: argparse.Namespace, scale: ScalePreset):
    """The multi-strategy suite bundle behind ``suite`` and ``report suite``.

    Returns ``(bundle, strategies_chosen, coordinate_map, parts)`` where
    ``coordinate_map`` maps each strategy to its (offset, coordinates)
    slice of the bundle.
    """
    from repro.experiments.suite import ExperimentSuite
    from repro.experiments.sweep import sweep_suite

    strategies_chosen = args.strategies or ["simple", "generalized", "randomized"]
    # Dedupe while preserving order: a repeated strategy would re-run its
    # cells and corrupt the per-strategy result slices below.
    strategies_chosen = list(dict.fromkeys(strategies_chosen))
    parts = []
    coordinate_map: Dict[str, tuple] = {}
    offset = 0
    all_configs = []
    for strategy in strategies_chosen:
        suite, coordinates = sweep_suite(
            args.app, strategy, scale=scale, seed=args.seed, scenario=args.scenario
        )
        all_configs.extend(suite.configs)
        coordinate_map[strategy] = (offset, coordinates)
        offset += len(coordinates)
        parts.append(f"{strategy}({len(coordinates)})")
    bundle = ExperimentSuite.from_configs(
        f"suite-{args.app}",
        all_configs,
        description=f"{args.app} / {args.scenario}: " + " + ".join(parts),
    )
    return bundle, strategies_chosen, coordinate_map, parts


def _print_suite_tables(
    args: argparse.Namespace, suite_result, strategies_chosen, coordinate_map
) -> None:
    """Per-strategy (A, C) tables plus the one-line suite digest."""
    from repro.experiments.sweep import cells_from_results, format_sweep_table

    higher_is_better = args.app == "gossip-learning"
    for strategy in strategies_chosen:
        start, coordinates = coordinate_map[strategy]
        results = [
            cell.result
            for cell in suite_result.cells[start : start + len(coordinates)]
        ]
        cells = cells_from_results(strategy, coordinates, results)
        print(f"\n{args.app} / {strategy}:")
        print(format_sweep_table(cells, higher_is_better=higher_is_better))
    print(f"\n{suite_result.summary()}")


def _command_suite(args: argparse.Namespace) -> int:
    from repro.experiments.suite import SuiteRunner, print_progress, worker_count

    scale = _resolve_scale(args.scale)
    bundle, strategies_chosen, coordinate_map, parts = _suite_bundle(args, scale)
    workers = worker_count(args.workers)
    store = resolve_store(args.store)
    store_note = f", store {store.root}" if store is not None else ""
    print(
        f"suite {bundle.name}: {len(bundle)} cells "
        f"[{', '.join(parts)}] at scale {scale.name} with {workers} "
        f"worker(s){store_note}"
    )
    runner = SuiteRunner(
        workers=workers,
        progress=print_progress if not args.quiet else None,
        store=store,
    )
    suite_result = runner.run(bundle)
    if suite_result.serial_fallback_reason is not None:
        print(
            f"note: fell back to serial execution "
            f"({suite_result.serial_fallback_reason}); "
            f"process pools need fork support"
        )
    if store is not None:
        print(
            f"store: {suite_result.cache_hits} cache hit(s), "
            f"{suite_result.simulated_cells} simulated"
        )
    _print_suite_tables(args, suite_result, strategies_chosen, coordinate_map)
    if args.save:
        from repro.experiments.export import save_suite

        save_suite(suite_result, args.save)
        print(f"saved to {args.save}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    """Rebuild figures / suite tables purely from the result store."""
    try:
        if args.target == "figure":
            data = _figure_data(args, offline=True)
            if data is None:
                return 2
            print("(report: rebuilt from the result store, zero cells simulated)")
            return _print_figure(data, args)
        # target == "suite"
        from repro.experiments.suite import SuiteRunner

        store = resolve_store(args.store)
        if store is None:
            raise ValueError("repro report needs --store (or REPRO_STORE)")
        scale = _resolve_scale(args.scale)
        bundle, strategies_chosen, coordinate_map, parts = _suite_bundle(args, scale)
        runner = SuiteRunner(workers=1, store=store, offline=True)
        suite_result = runner.run(bundle)
        print(
            f"report {bundle.name}: {len(bundle)} cells [{', '.join(parts)}] "
            f"from store {store.root} (zero cells simulated)"
        )
        _print_suite_tables(args, suite_result, strategies_chosen, coordinate_map)
        if args.save:
            from repro.experiments.export import save_suite

            save_suite(suite_result, args.save)
            print(f"saved to {args.save}")
        return 0
    except StoreMissError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _command_store(args: argparse.Namespace) -> int:
    """Inspect (``ls``), prune (``gc``) or compare (``diff``) stores."""
    from repro.experiments.report import format_store_diff, format_store_entries

    if args.action == "diff":
        left, right = ResultStore(args.left), ResultStore(args.right)
        report = diff_stores(left, right)
        print(format_store_diff(report, str(left.root), str(right.root)))
        return 1 if report["differing"] else 0
    store = resolve_store(args.store)
    if store is None:
        raise ValueError(f"repro store {args.action} needs --store (or REPRO_STORE)")
    if args.action == "ls":
        entries = list(store.entries())
        print(f"store {store.root}: {len(entries)} entr(y/ies)")
        print(format_store_entries(entries))
        return 0
    # action == "gc"
    removed, kept = store.gc(remove_all=args.all)
    print(f"store {store.root}: removed {removed} entr(y/ies), kept {kept}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Run the admission server until interrupted (or for --duration)."""
    import asyncio

    from repro.serve import TokenAccountLimiter, run_server
    from repro.serve.event_loop import install_event_loop

    if args.workers:
        # Multi-process cluster: N worker servers behind a binary
        # consistent-hash router on the public port.
        from repro.serve.cluster import ClusterConfig, serve_cluster

        config = ClusterConfig(
            workers=args.workers,
            strategy=args.strategy,
            period=args.period,
            spend_rate=args.spend_rate,
            capacity=args.capacity,
            shards=args.shards,
            max_keys=args.max_keys,
            seed=args.seed,
            host=args.host,
            port=args.port,
            cold_start=args.cold_start,
            uvloop=args.uvloop,
        )
        print(f"event loop: {install_event_loop(args.uvloop)}")
        stats = serve_cluster(config, duration=args.duration)
        if stats:
            print(
                f"served {stats['admitted']} admissions / "
                f"{stats['rejected']} rejections over {stats['keys']} key(s) "
                f"across {stats['workers']} worker(s), "
                f"{stats['remaps']} remap(s)"
            )
        return 0

    print(f"event loop: {install_event_loop(args.uvloop)}")
    limiter = TokenAccountLimiter(
        args.strategy,
        period=args.period,
        spend_rate=args.spend_rate,
        capacity=args.capacity,
        shards=args.shards,
        max_keys=args.max_keys,
        seed=args.seed,
        initial_tokens=0 if args.cold_start else None,
    )
    try:
        asyncio.run(
            run_server(
                limiter,
                host=args.host,
                port=args.port,
                duration=args.duration,
            )
        )
    except KeyboardInterrupt:
        pass
    stats = limiter.stats()
    print(
        f"served {stats['admitted']} admissions / {stats['rejected']} rejections "
        f"over {stats['keys']} key(s)"
    )
    return 0


def _command_loadgen(args: argparse.Namespace) -> int:
    """Drive a running admission server with an arrival pattern."""
    import asyncio
    import json as json_module

    from repro.scenarios import ArrivalSpec
    from repro.serve import run_loadgen
    from repro.serve.event_loop import install_event_loop

    if args.uvloop:
        print(f"event loop: {install_event_loop(True)}")
    spec = ArrivalSpec(
        pattern=args.pattern,
        rate=args.rate,
        peak_rate=args.peak_rate,
        start_fraction=args.burst_start,
        window_fraction=args.burst_window,
    )
    try:
        report = asyncio.run(
            run_loadgen(
                args.host,
                args.port,
                spec,
                duration=args.duration,
                connections=args.connections,
                keys=args.keys,
                seed=args.seed,
                protocol=args.protocol,
                pipeline=args.pipeline,
            )
        )
    except OSError as error:
        print(
            f"error: cannot reach {args.host}:{args.port} ({error}); "
            f"is `repro serve` running?",
            file=sys.stderr,
        )
        return 1
    print(report.format())
    if args.save:
        with open(args.save, "w", encoding="utf-8") as handle:
            json_module.dump(report.to_dict(), handle, indent=2)
        print(f"saved to {args.save}")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    streams = RandomStreams(args.seed)
    config = StunnerTraceConfig(horizon=args.hours * 3600.0)
    trace = generate_stunner_like_trace(args.users, streams.stream("cli-trace"), config)
    print(f"generated: {trace_summary(trace)}")
    if args.out:
        trace.save(args.out)
        print(f"written to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Token account algorithms (Danner & Jelasity, ICDCS 2018) — "
            "experiments, figures and sweeps"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run one experiment")
    _add_experiment_arguments(run_parser)
    _add_store_argument(run_parser)
    run_parser.set_defaults(handler=_command_run)

    list_parser = commands.add_parser(
        "list", help="enumerate registered components and their parameters"
    )
    list_parser.add_argument(
        "kind",
        nargs="?",
        choices=tuple(ALL_REGISTRIES),
        default=None,
        help="restrict the listing to one registry",
    )
    list_parser.set_defaults(handler=_command_list)

    figure_parser = commands.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("number", type=int, help="figure number (1-5)")
    figure_parser.add_argument("--app", choices=applications.names(), default=None)
    figure_parser.add_argument("--scale", choices=scale_names(), default=None)
    figure_parser.add_argument("--seed", type=int, default=1)
    figure_parser.add_argument("--rows", type=int, default=12)
    figure_parser.add_argument(
        "--quick", action="store_true", help="thinned strategy selection"
    )
    figure_parser.add_argument(
        "--plot", action="store_true", help="render an ASCII chart of the series"
    )
    figure_parser.add_argument(
        "--log", action="store_true", help="log-scale the chart's value axis"
    )
    figure_parser.add_argument(
        "--save",
        type=str,
        default=None,
        metavar="FILE",
        help="write the figure data to FILE (.json/.csv)",
    )
    figure_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: REPRO_WORKERS or the CPU count)",
    )
    _add_store_argument(figure_parser)
    figure_parser.set_defaults(handler=_command_figure)

    sweep_parser = commands.add_parser("sweep", help="§4.2 parameter sweep")
    sweep_parser.add_argument("--app", required=True, choices=applications.names())
    sweep_parser.add_argument(
        "--strategy", required=True, choices=sweepable_strategies()
    )
    sweep_parser.add_argument("--scenario", choices=SCENARIOS, default="failure-free")
    sweep_parser.add_argument("--scale", choices=scale_names(), default=None)
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: REPRO_WORKERS or the CPU count)",
    )
    _add_store_argument(sweep_parser)
    sweep_parser.set_defaults(handler=_command_sweep)

    suite_parser = commands.add_parser(
        "suite",
        help="run the multi-strategy (A, C) exploration as one parallel suite",
    )
    suite_parser.add_argument("--app", required=True, choices=applications.names())
    suite_parser.add_argument(
        "--strategies",
        nargs="+",
        choices=sweepable_strategies(),
        default=None,
        help="strategies to include (default: simple, generalized, randomized)",
    )
    suite_parser.add_argument("--scenario", choices=SCENARIOS, default="failure-free")
    suite_parser.add_argument("--scale", choices=scale_names(), default=None)
    suite_parser.add_argument("--seed", type=int, default=1)
    suite_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: REPRO_WORKERS or the CPU count)",
    )
    suite_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress/ETA lines"
    )
    suite_parser.add_argument(
        "--save",
        type=str,
        default=None,
        metavar="FILE",
        help="write the suite result document to FILE (.json)",
    )
    _add_store_argument(suite_parser)
    suite_parser.set_defaults(handler=_command_suite)

    report_parser = commands.add_parser(
        "report",
        help="rebuild figures / suite tables from a result store (no simulation)",
    )
    report_targets = report_parser.add_subparsers(dest="target", required=True)

    report_figure = report_targets.add_parser(
        "figure", help="rebuild a paper figure from stored cells"
    )
    report_figure.add_argument("number", type=int, help="figure number (1-5)")
    report_figure.add_argument("--app", choices=applications.names(), default=None)
    report_figure.add_argument("--scale", choices=scale_names(), default=None)
    report_figure.add_argument("--seed", type=int, default=1)
    report_figure.add_argument("--rows", type=int, default=12)
    report_figure.add_argument(
        "--quick", action="store_true", help="thinned strategy selection"
    )
    report_figure.add_argument(
        "--plot", action="store_true", help="render an ASCII chart of the series"
    )
    report_figure.add_argument(
        "--log", action="store_true", help="log-scale the chart's value axis"
    )
    report_figure.add_argument(
        "--save",
        type=str,
        default=None,
        metavar="FILE",
        help="write the figure data to FILE (.json/.csv)",
    )
    report_figure.set_defaults(handler=_command_report, workers=1)
    _add_store_argument(report_figure)

    report_suite = report_targets.add_parser(
        "suite", help="rebuild the multi-strategy sweep tables from stored cells"
    )
    report_suite.add_argument("--app", required=True, choices=applications.names())
    report_suite.add_argument(
        "--strategies",
        nargs="+",
        choices=sweepable_strategies(),
        default=None,
        help="strategies to include (default: simple, generalized, randomized)",
    )
    report_suite.add_argument("--scenario", choices=SCENARIOS, default="failure-free")
    report_suite.add_argument("--scale", choices=scale_names(), default=None)
    report_suite.add_argument("--seed", type=int, default=1)
    report_suite.add_argument(
        "--save",
        type=str,
        default=None,
        metavar="FILE",
        help="write the suite result document to FILE (.json)",
    )
    report_suite.set_defaults(handler=_command_report)
    _add_store_argument(report_suite)

    store_parser = commands.add_parser(
        "store", help="inspect, prune or compare result stores"
    )
    store_actions = store_parser.add_subparsers(dest="action", required=True)

    store_ls = store_actions.add_parser("ls", help="list stored cells")
    _add_store_argument(store_ls)
    store_ls.set_defaults(handler=_command_store)

    store_gc = store_actions.add_parser(
        "gc", help="remove stale-schema and unreadable entries"
    )
    store_gc.add_argument("--all", action="store_true", help="clear the store entirely")
    _add_store_argument(store_gc)
    store_gc.set_defaults(handler=_command_store)

    store_diff = store_actions.add_parser(
        "diff", help="compare two stores' grids cell by cell"
    )
    store_diff.add_argument("left", metavar="STORE_A")
    store_diff.add_argument("right", metavar="STORE_B")
    store_diff.set_defaults(handler=_command_store)

    serve_parser = commands.add_parser(
        "serve", help="run the TCP admission-control server"
    )
    serve_parser.add_argument("--strategy", required=True, choices=strategies.names())
    serve_parser.add_argument("-A", "--spend-rate", type=int, default=None)
    serve_parser.add_argument("-C", "--capacity", type=int, default=None)
    serve_parser.add_argument(
        "--period",
        type=float,
        default=1.0,
        help="wall-clock seconds per token (steady admission rate = 1/period)",
    )
    serve_parser.add_argument("--host", type=str, default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=7700, help="bind port (0 picks a free one)"
    )
    serve_parser.add_argument(
        "--shards", type=int, default=8, help="account-table lock shards"
    )
    serve_parser.add_argument(
        "--max-keys",
        type=int,
        default=65536,
        help="LRU budget for per-key accounts across all shards",
    )
    serve_parser.add_argument("--seed", type=int, default=None)
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "run a multi-process cluster: N worker servers behind a "
            "consistent-hash binary router on the public port "
            "(default: 0 = a single in-process server)"
        ),
    )
    serve_parser.add_argument(
        "--cold-start",
        action="store_true",
        help=(
            "start fresh per-key accounts empty (the paper's cold start) "
            "instead of full — keeps the burst bound airtight across "
            "cluster failure remaps and LRU re-admissions"
        ),
    )
    serve_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds then exit (default: run forever)",
    )
    serve_parser.add_argument(
        "--uvloop",
        action="store_true",
        help="use uvloop when installed (falls back to asyncio, and the "
        "startup line names the event loop that actually won)",
    )
    serve_parser.set_defaults(handler=_command_serve)

    loadgen_parser = commands.add_parser(
        "loadgen", help="replay an arrival pattern against a running server"
    )
    loadgen_parser.add_argument("--host", type=str, default="127.0.0.1")
    loadgen_parser.add_argument("--port", type=int, default=7700)
    loadgen_parser.add_argument(
        "--pattern", choices=ARRIVAL_PATTERNS, default="poisson"
    )
    loadgen_parser.add_argument(
        "--rate", type=float, default=1000.0, help="baseline requests per second"
    )
    loadgen_parser.add_argument(
        "--peak-rate",
        type=float,
        default=10000.0,
        help="flash-crowd in-window requests per second",
    )
    loadgen_parser.add_argument(
        "--burst-start",
        type=float,
        default=0.10,
        help="flash-crowd window start, as a fraction of --duration",
    )
    loadgen_parser.add_argument(
        "--burst-window",
        type=float,
        default=0.10,
        help="flash-crowd window length, as a fraction of --duration",
    )
    loadgen_parser.add_argument("--duration", type=float, default=5.0)
    loadgen_parser.add_argument("--connections", type=int, default=4)
    loadgen_parser.add_argument(
        "--keys", type=int, default=16, help="distinct account keys to spread over"
    )
    loadgen_parser.add_argument("--seed", type=int, default=1)
    loadgen_parser.add_argument(
        "--protocol",
        choices=("text", "binary"),
        default="text",
        help="wire protocol to speak (binary = length-prefixed framing)",
    )
    loadgen_parser.add_argument(
        "--pipeline",
        type=int,
        default=0,
        metavar="N",
        help="cap in-flight requests per connection (0 = unbounded)",
    )
    loadgen_parser.add_argument(
        "--uvloop",
        action="store_true",
        help="use uvloop when installed (falls back to asyncio)",
    )
    loadgen_parser.add_argument(
        "--save",
        type=str,
        default=None,
        metavar="FILE",
        help="write the report document to FILE (.json)",
    )
    loadgen_parser.set_defaults(handler=_command_loadgen)

    trace_parser = commands.add_parser(
        "trace", help="generate a synthetic smartphone trace"
    )
    trace_parser.add_argument("--users", type=int, default=2000)
    trace_parser.add_argument("--hours", type=float, default=48.0)
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--out", type=str, default=None)
    trace_parser.set_defaults(handler=_command_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValueError as error:
        # Bad knob values (--workers 0, REPRO_WORKERS=junk, REPRO_SCALE=junk)
        # should read as usage errors, not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
