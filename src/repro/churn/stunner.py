"""Synthetic smartphone availability traces in the style of STUNner.

The paper replays two-day segments of the STUNner trace [8]: phones count
as online while charging with a network connection of at least 1 Mbit/s,
after at least one minute on the charger. The real trace is not
distributable, so this module generates synthetic segments calibrated to
every characteristic the paper publishes about it (Figure 1 and §4.1):

* about **30 % of users remain permanently offline** over the window
  ("about 30% of the users remain permanently offline based on our
  definition");
* a clear **diurnal pattern**: "during the night, more phones are
  available (as they tend to be on a charger), but the churn rate remains
  lower" — availability peaks at night because of long overnight charging
  sessions, while logins/logouts cluster around the morning unplug and
  evening plug-in;
* users are "mostly from Europe, and some from the USA", and times are
  GMT — we draw each user's local-time offset from a Europe-heavy
  mixture, which smears the diurnal peak exactly as in Figure 1;
* sessions shorter than one minute never occur (the one-minute charger
  rule).

The generative model per online-capable user: one overnight charging
session per night (with high probability), starting around a
user-specific bedtime, lasting several hours; plus a Poisson number of
short daytime top-up charges. Overlapping sessions merge.

This substitution preserves the behaviour that matters to the protocols:
they only ever observe the online/offline schedule, and the schedule's
marginals (availability level, diurnal modulation, session durations,
never-online mass) match the published ones.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.churn.trace import AvailabilityTrace, Interval, merge_intervals

DAY = 86_400.0
HOUR = 3_600.0
MINUTE = 60.0


@dataclass(frozen=True)
class StunnerTraceConfig:
    """Calibration knobs for the synthetic trace generator.

    Defaults reproduce the published shape of Figure 1. All times are in
    seconds; offsets are relative to GMT.
    """

    #: length of the generated window (the paper simulates two days)
    horizon: float = 2 * DAY
    #: probability that a user never comes online in the window (~30 %)
    never_online_probability: float = 0.30
    #: probability that a device stays plugged in for the whole window
    #: (tablets and desk phones — keeps the daytime floor of Figure 1)
    always_online_probability: float = 0.06
    #: probability of an overnight charging session on a given night
    nightly_charge_probability: float = 0.85
    #: mean local time of the evening plug-in (22:00)
    bedtime_mean: float = 22 * HOUR
    #: standard deviation of the plug-in time
    bedtime_std: float = 1.5 * HOUR
    #: mean overnight session length (7 h) and its standard deviation
    night_duration_mean: float = 7 * HOUR
    night_duration_std: float = 2 * HOUR
    #: mean number of daytime top-up charges per day (Poisson)
    daytime_charges_per_day: float = 2.0
    #: daytime top-up duration bounds (uniform)
    daytime_duration_min: float = 30 * MINUTE
    daytime_duration_max: float = 150 * MINUTE
    #: minimum session length (the one-minute charger rule)
    min_session: float = MINUTE
    #: probability that a user is in the European timezone band
    europe_probability: float = 0.8

    def __post_init__(self) -> None:
        if not 0 <= self.never_online_probability <= 1:
            raise ValueError("never_online_probability must be a probability")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.daytime_duration_min > self.daytime_duration_max:
            raise ValueError("daytime duration bounds are inverted")


def _draw_timezone_offset(rng: random.Random, config: StunnerTraceConfig) -> float:
    """User's local-time offset from GMT, Europe-heavy mixture (hours -> s)."""
    if rng.random() < config.europe_probability:
        return rng.choice([0.0, 1.0, 1.0, 2.0]) * HOUR  # UK/CET/CET/EET
    return rng.choice([-5.0, -6.0, -7.0, -8.0]) * HOUR  # US timezones


def _user_segments(rng: random.Random, config: StunnerTraceConfig) -> List[Interval]:
    """Generate one user's merged online intervals."""
    offset = _draw_timezone_offset(rng, config)
    bedtime = config.bedtime_mean + rng.gauss(0.0, config.bedtime_std / 2)
    raw: List[Interval] = []
    days = int(math.ceil(config.horizon / DAY)) + 1
    for day in range(-1, days):
        # Overnight charge: plug in around the user's bedtime.
        if rng.random() < config.nightly_charge_probability:
            local_start = day * DAY + bedtime + rng.gauss(0.0, config.bedtime_std / 2)
            duration = max(
                config.min_session,
                rng.gauss(config.night_duration_mean, config.night_duration_std),
            )
            raw.append(_clip(local_start - offset, duration, config))
        # Daytime top-ups, uniform over local daytime (08:00-20:00).
        count = _poisson(rng, config.daytime_charges_per_day)
        for _ in range(count):
            local_start = day * DAY + 8 * HOUR + rng.random() * 12 * HOUR
            duration = config.daytime_duration_min + rng.random() * (
                config.daytime_duration_max - config.daytime_duration_min
            )
            raw.append(_clip(local_start - offset, duration, config))
    valid = [i for i in raw if i is not None]
    merged = merge_intervals(valid)
    return [i for i in merged if i.duration >= config.min_session]


def _clip(start: float, duration: float, config: StunnerTraceConfig):
    """Clip a session to the horizon; drop it if nothing remains."""
    end = start + duration
    start = max(0.0, start)
    end = min(config.horizon, end)
    if end - start < config.min_session:
        return None
    return Interval(start, end)


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler (mean is small here, so this is fast)."""
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def generate_stunner_like_trace(
    n: int,
    rng: random.Random,
    config: StunnerTraceConfig | None = None,
) -> AvailabilityTrace:
    """Generate a synthetic two-day availability trace for ``n`` users.

    Parameters
    ----------
    n:
        Number of users (one segment per simulated node, as in §4.1).
    rng:
        Source of randomness — use a dedicated stream so the trace is
        independent of protocol randomness.
    config:
        Calibration; defaults match the published Figure 1 shape.

    Returns
    -------
    AvailabilityTrace
        One merged, validated segment per user.
    """
    if config is None:
        config = StunnerTraceConfig()
    segments: List[List[Interval]] = []
    for _ in range(n):
        draw = rng.random()
        if draw < config.never_online_probability:
            segments.append([])
        elif draw < config.never_online_probability + config.always_online_probability:
            segments.append([Interval(0.0, config.horizon)])
        else:
            segments.append(_user_segments(rng, config))
    return AvailabilityTrace(config.horizon, segments)
