"""Churn-model registry entries: name -> availability-trace factory.

A churn model is a factory ``(n, rng, horizon, **params)`` returning an
:class:`~repro.churn.trace.AvailabilityTrace` (or ``None`` for the
failure-free regime). The experiment runner turns a non-``None`` trace
into online/offline events via
:class:`~repro.churn.schedule.ChurnSchedule`; the ``rng`` is a dedicated
named stream, so the generated schedule never depends on which strategy
or application runs over it.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.churn.flash_crowd import FlashCrowdConfig, generate_flash_crowd_trace
from repro.churn.stunner import StunnerTraceConfig, generate_stunner_like_trace
from repro.churn.trace import AvailabilityTrace
from repro.registry import ParamSpec, churn_models


@churn_models.register(
    "none",
    summary="failure-free: every node online for the whole run (§4.1)",
)
def _no_churn(
    n: int, rng: random.Random, horizon: float
) -> Optional[AvailabilityTrace]:
    return None


@churn_models.register(
    "stunner-trace",
    summary="synthetic STUNner-like smartphone availability trace (§4.1, Figure 1)",
    params=(
        ParamSpec(
            "never_online_probability",
            "float",
            default=0.30,
            help="fraction of users that never come online in the window",
        ),
        ParamSpec(
            "always_online_probability",
            "float",
            default=0.06,
            help="fraction of devices plugged in for the whole window",
        ),
        ParamSpec(
            "nightly_charge_probability",
            "float",
            default=0.85,
            help="probability of an overnight charging session per night",
        ),
    ),
)
def _stunner_trace(
    n: int,
    rng: random.Random,
    horizon: float,
    never_online_probability: float = 0.30,
    always_online_probability: float = 0.06,
    nightly_charge_probability: float = 0.85,
) -> AvailabilityTrace:
    config = StunnerTraceConfig(
        horizon=horizon,
        never_online_probability=never_online_probability,
        always_online_probability=always_online_probability,
        nightly_charge_probability=nightly_charge_probability,
    )
    return generate_stunner_like_trace(n, rng, config)


@churn_models.register(
    "flash-crowd",
    summary="stable backbone hit by a sudden arrival wave that churns out again",
    params=(
        ParamSpec(
            "base_fraction",
            "float",
            default=0.30,
            help="fraction of nodes online for the entire window",
        ),
        ParamSpec(
            "arrival_start",
            "float",
            default=0.10,
            help="start of the arrival window (fraction of the horizon)",
        ),
        ParamSpec(
            "arrival_window",
            "float",
            default=0.10,
            help="length of the arrival window (fraction of the horizon)",
        ),
        ParamSpec(
            "stay_min",
            "float",
            default=0.10,
            help="minimum crowd sojourn (fraction of the horizon)",
        ),
        ParamSpec(
            "stay_max",
            "float",
            default=0.40,
            help="maximum crowd sojourn (fraction of the horizon)",
        ),
        ParamSpec(
            "no_show_fraction",
            "float",
            default=0.05,
            help="fraction of crowd nodes that never arrive at all",
        ),
    ),
)
def _flash_crowd(
    n: int,
    rng: random.Random,
    horizon: float,
    base_fraction: float = 0.30,
    arrival_start: float = 0.10,
    arrival_window: float = 0.10,
    stay_min: float = 0.10,
    stay_max: float = 0.40,
    no_show_fraction: float = 0.05,
) -> AvailabilityTrace:
    config = FlashCrowdConfig(
        horizon=horizon,
        base_fraction=base_fraction,
        arrival_start=arrival_start,
        arrival_window=arrival_window,
        stay_min=stay_min,
        stay_max=stay_max,
        no_show_fraction=no_show_fraction,
    )
    return generate_flash_crowd_trace(n, rng, config)
