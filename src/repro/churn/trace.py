"""Availability traces: per-node online intervals over a finite horizon.

An :class:`AvailabilityTrace` assigns each node a sorted list of disjoint
half-open intervals ``[start, end)`` during which the node is online. The
trace-driven scenario of §4.1 assigns one two-day segment per simulated
node.

The on-disk format is line-oriented text, one node per line::

    # repro availability trace v1
    horizon 172800.0
    0 3600.0:7200.0 36000.0:86400.0
    1
    2 0.0:172800.0

A node line is its id followed by zero or more ``start:end`` pairs. This
is deliberately trivial so the real STUNner trace — or any other
availability data — can be converted with a few lines of scripting.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Union


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open online interval ``[start, end)`` in virtual seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"interval start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(f"empty or inverted interval [{self.start}, {self.end})")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping or touching intervals into a sorted disjoint list."""
    ordered = sorted(intervals)
    merged: List[Interval] = []
    for interval in ordered:
        if merged and interval.start <= merged[-1].end:
            last = merged[-1]
            if interval.end > last.end:
                merged[-1] = Interval(last.start, interval.end)
        else:
            merged.append(interval)
    return merged


class AvailabilityTrace:
    """Per-node availability over ``[0, horizon)``.

    Parameters
    ----------
    horizon:
        Length of the traced window in seconds (two days = 172,800 s in
        the paper).
    segments:
        ``segments[i]`` is the list of online intervals of node ``i``.
        Intervals must be disjoint, sorted and contained in the horizon
        (overlapping input should be merged with :func:`merge_intervals`
        first).
    """

    def __init__(self, horizon: float, segments: Sequence[Sequence[Interval]]):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)
        checked: List[List[Interval]] = []
        for node_id, intervals in enumerate(segments):
            intervals = list(intervals)
            previous_end = -1.0
            for interval in intervals:
                if interval.start < previous_end:
                    raise ValueError(
                        f"node {node_id}: intervals overlap or are unsorted "
                        f"at {interval}"
                    )
                if interval.end > horizon + 1e-9:
                    raise ValueError(
                        f"node {node_id}: interval {interval} exceeds horizon "
                        f"{horizon}"
                    )
                previous_end = interval.end
            checked.append(intervals)
        self._segments = checked

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes covered by the trace."""
        return len(self._segments)

    def intervals(self, node_id: int) -> List[Interval]:
        return self._segments[node_id]

    def is_online(self, node_id: int, time: float) -> bool:
        """Whether node ``node_id`` is online at virtual time ``time``."""
        for interval in self._segments[node_id]:
            if interval.contains(time):
                return True
            if interval.start > time:
                break
        return False

    def ever_online(self, node_id: int, until: float | None = None) -> bool:
        """Whether the node has been online at any point up to ``until``."""
        intervals = self._segments[node_id]
        if not intervals:
            return False
        if until is None:
            return True
        return intervals[0].start < until

    def online_time(self, node_id: int) -> float:
        """Total online duration of a node across the horizon."""
        return sum(interval.duration for interval in self._segments[node_id])

    def transitions(self, node_id: int) -> List[tuple[float, bool]]:
        """All ``(time, online)`` transitions of a node in time order."""
        events: List[tuple[float, bool]] = []
        for interval in self._segments[node_id]:
            events.append((interval.start, True))
            if interval.end < self.horizon:
                events.append((interval.end, False))
        return events

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace in the v1 text format."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write("# repro availability trace v1\n")
            handle.write(f"horizon {self.horizon!r}\n")
            for node_id, intervals in enumerate(self._segments):
                parts = [str(node_id)]
                parts.extend(f"{i.start!r}:{i.end!r}" for i in intervals)
                handle.write(" ".join(parts) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AvailabilityTrace":
        """Read a trace written by :meth:`save` (or hand-converted data)."""
        path = Path(path)
        horizon: float | None = None
        rows: List[tuple[int, List[Interval]]] = []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                if line.startswith("horizon"):
                    horizon = float(line.split()[1])
                    continue
                parts = line.split()
                node_id = int(parts[0])
                intervals = []
                for token in parts[1:]:
                    try:
                        start_text, end_text = token.split(":")
                    except ValueError as error:
                        raise ValueError(
                            f"{path}:{line_number}: malformed interval {token!r}"
                        ) from error
                    intervals.append(Interval(float(start_text), float(end_text)))
                rows.append((node_id, intervals))
        if horizon is None:
            raise ValueError(f"{path}: missing horizon line")
        rows.sort()
        expected_ids = list(range(len(rows)))
        if [node_id for node_id, _ in rows] != expected_ids:
            raise ValueError(f"{path}: node ids must be dense 0..n-1")
        return cls(horizon, [intervals for _, intervals in rows])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AvailabilityTrace(n={self.n}, horizon={self.horizon})"
