"""Trace-driven churn: apply an availability trace to simulated nodes.

:class:`ChurnSchedule` turns each node's online intervals into
``set_online`` events on the simulator. Nodes must be constructed with
their correct initial state (`initial_online`), which the schedule also
computes — a node whose first interval starts at 0 begins online.
"""

from __future__ import annotations

from typing import Sequence

from repro.churn.trace import AvailabilityTrace
from repro.sim.engine import Simulator
from repro.sim.node import SimNode


class ChurnSchedule:
    """Schedules the online/offline transitions of a trace.

    Usage::

        schedule = ChurnSchedule(trace)
        online0 = schedule.initial_online(node_id)   # before node creation
        ...
        schedule.apply(sim, nodes)                    # before sim.run()
    """

    def __init__(self, trace: AvailabilityTrace):
        self.trace = trace

    def initial_online(self, node_id: int) -> bool:
        """Whether the node is online at time zero."""
        return self.trace.is_online(node_id, 0.0)

    def apply(self, sim: Simulator, nodes: Sequence[SimNode]) -> int:
        """Schedule every transition for every node; returns event count.

        Transitions at exactly ``t = 0`` are not scheduled — they must be
        reflected in the nodes' initial state instead (use
        :meth:`initial_online` when constructing nodes).
        """
        if len(nodes) != self.trace.n:
            raise ValueError(f"trace covers {self.trace.n} nodes but got {len(nodes)}")
        scheduled = 0
        for node in nodes:
            expected = self.initial_online(node.node_id)
            if node.online != expected:
                raise ValueError(
                    f"node {node.node_id} initial online={node.online} does not "
                    f"match trace ({expected}); construct nodes with "
                    f"initial_online()"
                )
            for time, online in self.trace.transitions(node.node_id):
                if time == 0.0:
                    continue  # encoded in the initial state
                sim.schedule_at(time, node.set_online, online)
                scheduled += 1
        return scheduled
