"""Flash-crowd churn: a stable backbone hit by a sudden arrival wave.

The STUNner-like trace exercises slow diurnal churn; rate-limiting
literature (token buckets guarding against request surges) cares about
the *opposite* regime — a sudden, correlated arrival burst. This model
generates exactly that:

* a **backbone** fraction of nodes is online for the whole window (the
  long-lived residents);
* every other node is a **crowd** member: it arrives during a short
  arrival window (uniformly within it), stays for an individually drawn
  sojourn, and leaves again — never to return;
* a configurable slice of the crowd never shows up at all (mirroring the
  never-online mass of the smartphone trace).

The result is a classic flash-crowd availability curve: flat base level,
a steep ramp at the arrival window, then an exponential-ish decay back
toward the backbone as sojourns expire. Protocols only ever observe the
online/offline schedule, so this plugs into the same
:class:`~repro.churn.schedule.ChurnSchedule` machinery as the trace
scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.churn.trace import AvailabilityTrace, Interval


@dataclass(frozen=True)
class FlashCrowdConfig:
    """Shape of the flash crowd, in fractions of the horizon.

    Defaults produce a pronounced but short-lived surge: 30 % backbone,
    arrivals concentrated in the [10 %, 20 %) window of the run, typical
    sojourns between 10 % and 40 % of the horizon.
    """

    #: length of the generated window in seconds
    horizon: float
    #: fraction of nodes online for the entire window
    base_fraction: float = 0.30
    #: start of the arrival window, as a fraction of the horizon
    arrival_start: float = 0.10
    #: length of the arrival window, as a fraction of the horizon
    arrival_window: float = 0.10
    #: sojourn-time bounds for crowd nodes, as fractions of the horizon
    stay_min: float = 0.10
    stay_max: float = 0.40
    #: fraction of crowd nodes that never arrive at all
    no_show_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        for name in ("base_fraction", "arrival_start", "no_show_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.arrival_window <= 0:
            raise ValueError(
                f"arrival_window must be positive, got {self.arrival_window}"
            )
        if not 0.0 < self.stay_min <= self.stay_max:
            raise ValueError(
                f"need 0 < stay_min <= stay_max, got "
                f"[{self.stay_min}, {self.stay_max}]"
            )


def generate_flash_crowd_trace(
    n: int, rng: random.Random, config: FlashCrowdConfig
) -> AvailabilityTrace:
    """Generate the flash-crowd availability trace for ``n`` nodes.

    Node ids are assigned backbone-first so that initial placement over
    low ids lands on stable nodes — mirroring how a deployed system's
    bootstrap set consists of long-lived residents.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    horizon = config.horizon
    backbone = round(n * config.base_fraction)
    segments: List[Sequence[Interval]] = []
    for node_id in range(n):
        if node_id < backbone:
            segments.append([Interval(0.0, horizon)])
            continue
        if rng.random() < config.no_show_fraction:
            segments.append([])
            continue
        arrival = horizon * (
            config.arrival_start + rng.random() * config.arrival_window
        )
        stay = horizon * (
            config.stay_min + rng.random() * (config.stay_max - config.stay_min)
        )
        departure = min(arrival + stay, horizon)
        if departure <= arrival:
            segments.append([])
            continue
        segments.append([Interval(arrival, departure)])
    return AvailabilityTrace(horizon, segments)
