"""Churn substrate: availability traces and trace-driven node scheduling.

The paper's second scenario replays a real smartphone availability trace
collected by STUNner: 1,191 users cut into 40,658 two-day segments, one
segment per simulated node, where a user counts as online only while the
phone has been charging for at least a minute with a network connection
of at least 1 Mbit/s (§4.1).

The real trace is not distributable, so this package provides:

* :mod:`repro.churn.trace` — the trace data model (per-node online
  intervals) with save/load in a simple text format, so the real trace
  can be dropped in if available;
* :mod:`repro.churn.stunner` — a synthetic generator calibrated to the
  published characteristics of the trace (Figure 1): ~30 % of users never
  online in the window, a clear diurnal cycle peaking at night (GMT) with
  lower churn at night, mostly-European timezone mix;
* :mod:`repro.churn.schedule` — applies a trace to simulated nodes as
  online/offline events;
* :mod:`repro.churn.stats` — the statistics shown in Figure 1.
"""

from repro.churn.flash_crowd import FlashCrowdConfig, generate_flash_crowd_trace
from repro.churn.schedule import ChurnSchedule
from repro.churn.stats import (
    ever_online_fraction,
    login_logout_fractions,
    online_fraction,
    trace_summary,
)
from repro.churn.stunner import StunnerTraceConfig, generate_stunner_like_trace
from repro.churn.trace import AvailabilityTrace, Interval

__all__ = [
    "AvailabilityTrace",
    "ChurnSchedule",
    "FlashCrowdConfig",
    "Interval",
    "StunnerTraceConfig",
    "ever_online_fraction",
    "generate_flash_crowd_trace",
    "generate_stunner_like_trace",
    "login_logout_fractions",
    "online_fraction",
    "trace_summary",
]
