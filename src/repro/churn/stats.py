"""Trace statistics — the quantities plotted in Figure 1.

Figure 1 of the paper shows, for the two-day STUNner window:

* the proportion of users **online** at each time;
* the proportion of users that **have been online** up to each time;
* bars with the proportion of users that **log in** and **log out**
  (drawn negative) within each period.

These functions compute exactly those series from any
:class:`~repro.churn.trace.AvailabilityTrace`, so the Figure 1 bench can
regenerate the plot data from the synthetic trace — or from the real one
if it is dropped in.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence

from repro.churn.trace import AvailabilityTrace


def online_fraction(trace: AvailabilityTrace, times: Sequence[float]) -> List[float]:
    """Proportion of users online at each of the given times."""
    n = trace.n
    if n == 0:
        raise ValueError("trace has no users")
    fractions = []
    for time in times:
        online = sum(1 for i in range(n) if trace.is_online(i, time))
        fractions.append(online / n)
    return fractions


def ever_online_fraction(
    trace: AvailabilityTrace, times: Sequence[float]
) -> List[float]:
    """Proportion of users that have been online at least once by each time."""
    n = trace.n
    if n == 0:
        raise ValueError("trace has no users")
    first_online = sorted(
        trace.intervals(i)[0].start for i in range(n) if trace.intervals(i)
    )
    return [bisect.bisect_right(first_online, time) / n for time in times]


def login_logout_fractions(
    trace: AvailabilityTrace, bin_edges: Sequence[float]
) -> tuple[List[float], List[float]]:
    """Per-bin login and logout proportions (the bars of Figure 1).

    Returns ``(logins, logouts)`` where entry ``b`` is the proportion of
    users with at least one login (resp. logout) event inside
    ``[bin_edges[b], bin_edges[b+1])``. The paper plots logouts as a
    negative proportion; we return both positive and leave the sign to
    the presentation layer.
    """
    if len(bin_edges) < 2:
        raise ValueError("need at least two bin edges")
    n = trace.n
    bins = len(bin_edges) - 1
    logins = [0] * bins
    logouts = [0] * bins
    for node_id in range(n):
        login_bins = set()
        logout_bins = set()
        for time, online in trace.transitions(node_id):
            index = bisect.bisect_right(bin_edges, time) - 1
            if 0 <= index < bins:
                (login_bins if online else logout_bins).add(index)
        for index in login_bins:
            logins[index] += 1
        for index in logout_bins:
            logouts[index] += 1
    return [count / n for count in logins], [count / n for count in logouts]


@dataclass(frozen=True)
class TraceSummary:
    """Headline numbers of a trace, for reports and calibration tests."""

    n: int
    horizon: float
    never_online_fraction: float
    mean_online_fraction: float
    mean_session_length: float
    sessions_per_user: float

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"users={self.n}  horizon={self.horizon / 3600:.0f}h  "
            f"never-online={self.never_online_fraction:.1%}  "
            f"avg-online={self.mean_online_fraction:.1%}  "
            f"avg-session={self.mean_session_length / 3600:.2f}h  "
            f"sessions/user={self.sessions_per_user:.2f}"
        )


def trace_summary(trace: AvailabilityTrace) -> TraceSummary:
    """Compute the headline statistics of a trace."""
    n = trace.n
    if n == 0:
        raise ValueError("trace has no users")
    never = sum(1 for i in range(n) if not trace.intervals(i))
    total_online = sum(trace.online_time(i) for i in range(n))
    session_count = sum(len(trace.intervals(i)) for i in range(n))
    total_session_time = total_online
    return TraceSummary(
        n=n,
        horizon=trace.horizon,
        never_online_fraction=never / n,
        mean_online_fraction=total_online / (n * trace.horizon),
        mean_session_length=(
            total_session_time / session_count if session_count else 0.0
        ),
        sessions_per_user=session_count / n,
    )
