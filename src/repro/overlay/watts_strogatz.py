"""Watts–Strogatz small-world overlay (§4.1.3).

Chaotic power iteration needs a topology that does *not* mix too well —
"the 20-out network mixes too well and power iteration converges too fast
over this topology" — so the paper uses a Watts–Strogatz graph: a ring in
which every node is connected to its closest 4 neighbors (two on each
side), with every link rewired to a random target with probability 0.01.

The construction below is the classic one from Watts & Strogatz (1998):

1. start from the ring lattice with ``k`` nearest neighbors (``k`` even);
2. for each node ``u`` and each of its ``k/2`` clockwise links ``(u, v)``,
   with probability ``p`` replace the link by ``(u, w)`` where ``w`` is
   uniform over nodes, avoiding self-loops and duplicate links.

The result is kept *undirected* (every link is mirrored), matching the
usage in the paper where the same graph defines both the communication
channels and the weight matrix of the computational task.
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.overlay.graph import Overlay
from repro.registry import ParamSpec, overlays


@overlays.register(
    "watts-strogatz",
    summary="Watts–Strogatz small-world ring — poorly mixing on purpose (§4.1.3)",
    params=(
        ParamSpec("degree", "int", default=4, help="ring degree (even, >= 2)"),
        ParamSpec(
            "rewire", "float", default=0.01, help="per-link rewiring probability"
        ),
    ),
)
def _build_watts_strogatz(
    n: int, rng: random.Random, degree: int = 4, rewire: float = 0.01
) -> Overlay:
    """Registry factory: ``(n, rng)`` context plus the ring parameters."""
    return watts_strogatz_overlay(n, degree, rewire, rng)


def watts_strogatz_overlay(n: int, k: int, p: float, rng: random.Random) -> Overlay:
    """Build an undirected Watts–Strogatz overlay.

    Parameters
    ----------
    n:
        Number of nodes; must exceed ``k``.
    k:
        Ring degree — each node starts connected to its ``k`` closest ring
        neighbors. Must be even and ``>= 2``. The paper uses ``k = 4``.
    p:
        Per-link rewiring probability. The paper uses ``p = 0.01``.
    rng:
        Source of randomness.

    Returns
    -------
    Overlay
        A symmetric overlay (every directed link has its mirror).
    """
    if k % 2 != 0 or k < 2:
        raise ValueError(f"k must be even and >= 2, got {k}")
    if n <= k:
        raise ValueError(f"need n > k, got n={n}, k={k}")
    if not 0 <= p <= 1:
        raise ValueError(f"rewiring probability must be in [0, 1], got {p}")

    neighbor_sets: List[Set[int]] = [set() for _ in range(n)]

    def add_edge(u: int, v: int) -> None:
        neighbor_sets[u].add(v)
        neighbor_sets[v].add(u)

    def remove_edge(u: int, v: int) -> None:
        neighbor_sets[u].discard(v)
        neighbor_sets[v].discard(u)

    for u in range(n):
        for offset in range(1, k // 2 + 1):
            add_edge(u, (u + offset) % n)

    # Rewire clockwise links lattice-distance by lattice-distance, as in
    # the original model, so short- and long-range links are treated alike.
    for offset in range(1, k // 2 + 1):
        for u in range(n):
            v = (u + offset) % n
            if v not in neighbor_sets[u]:
                continue  # already rewired away by an earlier pass
            if rng.random() >= p:
                continue
            w = rng.randrange(n)
            attempts = 0
            while w == u or w in neighbor_sets[u]:
                w = rng.randrange(n)
                attempts += 1
                if attempts > 100 * n:  # pragma: no cover - degenerate density
                    raise RuntimeError("could not find a rewiring target")
            remove_edge(u, v)
            add_edge(u, w)

    return Overlay([sorted(neighbors) for neighbors in neighbor_sets])
