"""Static directed overlay graphs.

An :class:`Overlay` is an immutable directed graph over nodes
``0..n-1``. The token account protocols only ever need two queries:

* ``out_neighbors(i)`` — whom can node ``i`` send to (``selectPeer``);
* ``in_neighbors(i)`` — who feeds node ``i`` (chaotic iteration buffers).

Out-adjacency is the primary representation; in-adjacency is derived
lazily and cached, since only chaotic iteration needs it.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


class Overlay:
    """An immutable directed graph with dense integer node ids.

    Parameters
    ----------
    out_neighbors:
        ``out_neighbors[i]`` lists the targets of node ``i``'s out-links.
        Self-loops and duplicate links are rejected: the paper's overlays
        have neither, and both would corrupt peer-sampling uniformity.
    """

    def __init__(self, out_neighbors: Sequence[Sequence[int]]):
        n = len(out_neighbors)
        frozen: List[Tuple[int, ...]] = []
        for i, targets in enumerate(out_neighbors):
            targets = tuple(targets)
            seen = set()
            for t in targets:
                if not 0 <= t < n:
                    raise ValueError(f"node {i} links to out-of-range target {t}")
                if t == i:
                    raise ValueError(f"node {i} has a self-loop")
                if t in seen:
                    raise ValueError(f"node {i} has a duplicate link to {t}")
                seen.add(t)
            frozen.append(targets)
        self._out: Tuple[Tuple[int, ...], ...] = tuple(frozen)
        self._in: Tuple[Tuple[int, ...], ...] | None = None

    @classmethod
    def from_trusted_rows(
        cls, out_neighbors: Iterable[Tuple[int, ...]]
    ) -> "Overlay":
        """Build without per-edge validation (rows must already be valid).

        For generators that are correct by construction (the NumPy k-out
        wiring draws targets from ``[0, n) \\ {i}`` and redraws duplicate
        rows): at 10^5–10^6 nodes the per-edge Python checks of
        ``__init__`` cost more than the wiring itself. Rows must be
        tuples of in-range, self-loop-free, duplicate-free targets —
        feeding anything else corrupts peer-sampling uniformity.
        """
        overlay = cls.__new__(cls)
        overlay._out = tuple(out_neighbors)
        overlay._in = None
        return overlay

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Total number of directed links."""
        return sum(len(t) for t in self._out)

    def out_neighbors(self, node_id: int) -> Tuple[int, ...]:
        """Targets of ``node_id``'s out-links (possibly empty)."""
        return self._out[node_id]

    def in_neighbors(self, node_id: int) -> Tuple[int, ...]:
        """Sources of links pointing at ``node_id`` (computed lazily)."""
        if self._in is None:
            incoming: List[List[int]] = [[] for _ in range(self.n)]
            for src, targets in enumerate(self._out):
                for dst in targets:
                    incoming[dst].append(src)
            self._in = tuple(tuple(sources) for sources in incoming)
        return self._in[node_id]

    def out_degree(self, node_id: int) -> int:
        return len(self._out[node_id])

    def in_degree(self, node_id: int) -> int:
        return len(self.in_neighbors(node_id))

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate over all directed links as ``(src, dst)`` pairs."""
        for src, targets in enumerate(self._out):
            for dst in targets:
                yield (src, dst)

    # ------------------------------------------------------------------
    def is_symmetric(self) -> bool:
        """True if every link has a reverse link (undirected overlay)."""
        edge_set = set(self.edges())
        return all((dst, src) in edge_set for src, dst in edge_set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Overlay(n={self.n}, edges={self.num_edges})"
