"""Fixed random k-out overlay (§4.1).

The paper's communication topology is "a fixed 20-out network (each node
had 20 out neighbors that did not change through the experiment) ... drawn
independently and uniformly at random". The paper motivates this as the
simplest practical approximation of uniform peer sampling — 20 long-lived
TCP connections per node.

We draw, for every node, ``k`` *distinct* uniform out-neighbors excluding
the node itself (a self-link or duplicate TCP connection would be
meaningless operationally and would skew peer-sampling probabilities).
"""

from __future__ import annotations

import random

import numpy as np

from repro.overlay.graph import Overlay
from repro.registry import ParamSpec, overlays

#: population size above which the NumPy wiring path takes over. Below
#: it the per-row duplicate probability (~k²/2n) makes whole-row
#: redraws wasteful and the original Python sampling is already cheap;
#: above it the vectorized draw is two to three orders faster, which is
#: what makes 10^5–10^6-node overlays constructible at all.
NUMPY_WIRING_MIN_N = 4096


@overlays.register(
    "kout",
    summary="fixed random k-out overlay — the paper's default topology (§4.1)",
    params=(
        ParamSpec("k", "int", default=20, help="out-degree of every node"),
    ),
)
def _build_kout(n: int, rng: random.Random, k: int = 20) -> Overlay:
    """Registry factory: ``(n, rng)`` context plus the ``k`` parameter."""
    return random_kout_overlay(n, k, rng)


def random_kout_overlay(n: int, k: int, rng: random.Random) -> Overlay:
    """Build a random ``k``-out overlay over ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes; must satisfy ``n > k`` so that every node can
        find ``k`` distinct targets.
    k:
        Out-degree of every node (the paper uses 20).
    rng:
        Source of randomness (one dedicated stream per experiment).

    Returns
    -------
    Overlay
        A directed overlay where every node has exactly ``k`` out-links.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n <= k:
        raise ValueError(f"need n > k distinct targets, got n={n}, k={k}")
    if n >= NUMPY_WIRING_MIN_N:
        # Large populations wire through NumPy; the adjacency is built
        # validated-by-construction, so the per-edge Python checks are
        # skipped. The seed derives from the same overlay stream, so a
        # given (n, k, stream) wires one topology — shared verbatim by
        # the vectorized backend's CSR fast path.
        targets = kout_adjacency(n, k, rng.getrandbits(64))
        return Overlay.from_trusted_rows(map(tuple, targets.tolist()))
    population = range(n)
    out_neighbors = []
    for i in range(n):
        targets = rng.sample(population, k)
        # Re-draw any slot that hit the node itself; keep distinctness.
        while i in targets:
            chosen = set(targets)
            chosen.discard(i)
            while len(chosen) < k:
                candidate = rng.randrange(n)
                if candidate != i:
                    chosen.add(candidate)
            targets = list(chosen)
        out_neighbors.append(targets)
    return Overlay(out_neighbors)


def kout_adjacency(n: int, k: int, seed: int) -> np.ndarray:
    """Vectorized k-out wiring: an ``(n, k)`` array of distinct targets.

    Every row holds ``k`` distinct uniform out-neighbors of its node,
    self excluded: candidates are drawn from ``[0, n-1)`` and shifted
    past the row index, and rows containing an intra-row duplicate are
    redrawn wholesale (duplicate probability per row is ~``k²/2n``, so
    the redraw loop converges geometrically for the large ``n`` this
    path serves).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n <= k:
        raise ValueError(f"need n > k distinct targets, got n={n}, k={k}")
    rng = np.random.default_rng(seed)
    rows = np.arange(n, dtype=np.int64)[:, None]
    targets = rng.integers(0, n - 1, size=(n, k), dtype=np.int64)
    targets += targets >= rows
    while True:
        ordered = np.sort(targets, axis=1)
        redraw = np.flatnonzero((ordered[:, 1:] == ordered[:, :-1]).any(axis=1))
        if not len(redraw):
            return targets
        fresh = rng.integers(0, n - 1, size=(len(redraw), k), dtype=np.int64)
        fresh += fresh >= rows[redraw]
        targets[redraw] = fresh
