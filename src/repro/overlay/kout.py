"""Fixed random k-out overlay (§4.1).

The paper's communication topology is "a fixed 20-out network (each node
had 20 out neighbors that did not change through the experiment) ... drawn
independently and uniformly at random". The paper motivates this as the
simplest practical approximation of uniform peer sampling — 20 long-lived
TCP connections per node.

We draw, for every node, ``k`` *distinct* uniform out-neighbors excluding
the node itself (a self-link or duplicate TCP connection would be
meaningless operationally and would skew peer-sampling probabilities).
"""

from __future__ import annotations

import random

from repro.overlay.graph import Overlay
from repro.registry import ParamSpec, overlays


@overlays.register(
    "kout",
    summary="fixed random k-out overlay — the paper's default topology (§4.1)",
    params=(
        ParamSpec("k", "int", default=20, help="out-degree of every node"),
    ),
)
def _build_kout(n: int, rng: random.Random, k: int = 20) -> Overlay:
    """Registry factory: ``(n, rng)`` context plus the ``k`` parameter."""
    return random_kout_overlay(n, k, rng)


def random_kout_overlay(n: int, k: int, rng: random.Random) -> Overlay:
    """Build a random ``k``-out overlay over ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes; must satisfy ``n > k`` so that every node can
        find ``k`` distinct targets.
    k:
        Out-degree of every node (the paper uses 20).
    rng:
        Source of randomness (one dedicated stream per experiment).

    Returns
    -------
    Overlay
        A directed overlay where every node has exactly ``k`` out-links.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n <= k:
        raise ValueError(f"need n > k distinct targets, got n={n}, k={k}")
    population = range(n)
    out_neighbors = []
    for i in range(n):
        targets = rng.sample(population, k)
        # Re-draw any slot that hit the node itself; keep distinctness.
        while i in targets:
            chosen = set(targets)
            chosen.discard(i)
            while len(chosen) < k:
                candidate = rng.randrange(n)
                if candidate != i:
                    chosen.add(candidate)
            targets = list(chosen)
        out_neighbors.append(targets)
    return Overlay(out_neighbors)
