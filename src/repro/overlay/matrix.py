"""Weight matrices for chaotic asynchronous iteration (§2.4).

The paper computes "the dominant eigenvector of a weighted neighborhood
matrix ... calculating the eigenvector of the normalized adjacency matrix
itself". The Lubachevsky–Mitra framework requires a non-negative
irreducible matrix with spectral radius exactly one.

We use the column-normalized adjacency matrix: ``A[i, k] = 1 / outdeg(k)``
for every link ``k → i``. This matrix is column-stochastic, hence has
spectral radius 1, and it is irreducible whenever the overlay is strongly
connected — both preconditions of the convergence theorem. The ground
truth dominant eigenvector is computed offline with scipy's sparse
eigensolver and serves as the reference for the angle metric.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph
import scipy.sparse.linalg as spla

from repro.overlay.graph import Overlay


def column_normalized_matrix(overlay: Overlay) -> sp.csr_matrix:
    """Build the column-stochastic weight matrix of an overlay.

    ``A[i, k] = 1 / outdeg(k)`` if the overlay has a link ``k -> i``, else
    0. Every node must have at least one out-link (a dangling column would
    break stochasticity, and such a node could never propagate its value).
    """
    n = overlay.n
    rows, cols, vals = [], [], []
    for k in range(n):
        targets = overlay.out_neighbors(k)
        if not targets:
            raise ValueError(f"node {k} has no out-links; matrix would be deficient")
        weight = 1.0 / len(targets)
        for i in targets:
            rows.append(i)
            cols.append(k)
            vals.append(weight)
    matrix = sp.csr_matrix(
        (np.asarray(vals), (np.asarray(rows), np.asarray(cols))), shape=(n, n)
    )
    return matrix


def is_irreducible(overlay: Overlay) -> bool:
    """True if the overlay is strongly connected (matrix irreducible)."""
    n = overlay.n
    rows = []
    cols = []
    for src, dst in overlay.edges():
        rows.append(src)
        cols.append(dst)
    adjacency = sp.csr_matrix(
        (np.ones(len(rows)), (np.asarray(rows), np.asarray(cols))), shape=(n, n)
    )
    count, _labels = csgraph.connected_components(
        adjacency, directed=True, connection="strong"
    )
    return count == 1


def dominant_eigenvector(matrix: sp.spmatrix, tol: float = 1e-10) -> np.ndarray:
    """Dominant eigenvector of a non-negative matrix, normalized to unit length.

    Uses scipy's implicitly restarted Arnoldi (``eigs``) and falls back to
    straightforward power iteration for matrices too small for ARPACK.
    The returned vector is real, unit-norm, and sign-fixed so that its
    largest-magnitude component is positive (eigenvectors are only defined
    up to sign; a canonical sign keeps the angle metric stable).
    """
    n = matrix.shape[0]
    if n <= 2:
        dense = np.asarray(matrix.todense(), dtype=float)
        eigenvalues, eigenvectors = np.linalg.eig(dense)
        index = int(np.argmax(np.abs(eigenvalues)))
        vector = np.real(eigenvectors[:, index])
    else:
        try:
            # A fixed starting vector keeps ARPACK bit-deterministic (its
            # default v0 is drawn from numpy's global RNG, which would
            # wobble the reference at the tolerance level run-to-run and
            # break the bit-identical determinism contract).
            start = np.full(n, 1.0 / np.sqrt(n))
            _values, vectors = spla.eigs(
                matrix.astype(float), k=1, which="LM", tol=tol, v0=start
            )
            vector = np.real(vectors[:, 0])
        except (spla.ArpackNoConvergence, spla.ArpackError):
            vector = _power_iteration(matrix, tol)
    vector = vector / np.linalg.norm(vector)
    pivot = int(np.argmax(np.abs(vector)))
    if vector[pivot] < 0:
        vector = -vector
    return vector


def _power_iteration(
    matrix: sp.spmatrix, tol: float, max_iterations: int = 100_000
) -> np.ndarray:
    """Plain power iteration fallback (used when ARPACK stalls)."""
    n = matrix.shape[0]
    vector = np.full(n, 1.0 / np.sqrt(n))
    for _ in range(max_iterations):
        nxt = matrix @ vector
        norm = np.linalg.norm(nxt)
        if norm == 0:
            raise ValueError("matrix annihilated the iterate; not irreducible")
        nxt = nxt / norm
        if np.linalg.norm(nxt - vector) < tol:
            return nxt
        vector = nxt
    return vector


def angle_to(vector: np.ndarray, reference: np.ndarray) -> float:
    """Angle in radians between two vectors (sign-insensitive).

    This is the paper's convergence metric for chaotic iteration: "the
    angle (or cosine distance) between the approximation of the
    eigenvector and the actual eigenvector". Zero means a perfect
    solution. The absolute value of the cosine is used because an
    eigenvector's sign is arbitrary.
    """
    norm_v = np.linalg.norm(vector)
    norm_r = np.linalg.norm(reference)
    if norm_v == 0 or norm_r == 0:
        return float(np.pi / 2)
    cosine = abs(float(np.dot(vector, reference)) / (norm_v * norm_r))
    return float(np.arccos(min(1.0, cosine)))
