"""Peer sampling service — the ``selectPeer()`` black box of §2.1.

The system model assumes each node can draw a peer from its current
neighbor set, that neighbor failures are detected, and that messages can
only go to *current* neighbors. We implement the simplest service that
honours those assumptions over a static overlay with churn:

* ``select_peer(i)`` returns a uniformly random **online** out-neighbor
  of ``i``, or ``None`` when every out-neighbor is offline (in which case
  the caller skips sending — there is no one to talk to).

For mostly-online populations a couple of rejection-sampling draws are
cheapest; when rejections pile up we fall back to materializing the
online subset, which also detects the all-offline case exactly.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.overlay.graph import Overlay
from repro.sim.network import Network

_REJECTION_ATTEMPTS = 8


class PeerSampler:
    """Uniform sampling over the online out-neighbors of each node."""

    def __init__(self, overlay: Overlay, network: Network, rng: random.Random):
        self.overlay = overlay
        self.network = network
        self.rng = rng

    def select_peer(self, node_id: int) -> Optional[int]:
        """Return a random online out-neighbor of ``node_id`` or ``None``."""
        neighbors = self.overlay.out_neighbors(node_id)
        if not neighbors:
            return None
        nodes = self.network.nodes
        rng = self.rng
        for _ in range(_REJECTION_ATTEMPTS):
            candidate = neighbors[rng.randrange(len(neighbors))]
            if nodes[candidate].online:
                return candidate
        online = [peer for peer in neighbors if nodes[peer].online]
        if not online:
            return None
        return online[rng.randrange(len(online))]

    def online_neighbors(self, node_id: int) -> list[int]:
        """All currently online out-neighbors (used by tests and metrics)."""
        nodes = self.network.nodes
        return [
            peer
            for peer in self.overlay.out_neighbors(node_id)
            if nodes[peer].online
        ]
