"""Overlay network substrate.

The paper runs its protocols over two static overlays (§4.1):

* a **fixed random 20-out network** — each node draws 20 out-neighbors
  independently and uniformly at random, kept for the whole experiment
  (":mod:`repro.overlay.kout`");
* a **Watts–Strogatz small world** for chaotic power iteration — a ring
  where every node is connected to its closest 4 neighbors, each link
  rewired to a random target with probability 0.01
  (":mod:`repro.overlay.watts_strogatz`").

:mod:`repro.overlay.graph` provides the static directed-overlay container,
:mod:`repro.overlay.matrix` derives the normalized weight matrix used by
chaotic iteration (§2.4), and :mod:`repro.overlay.peer_sampling` implements
the ``selectPeer()`` black box of the system model (§2.1) — uniform over
the currently *online* out-neighbors.
"""

from repro.overlay.graph import Overlay
from repro.overlay.kout import random_kout_overlay
from repro.overlay.matrix import column_normalized_matrix, dominant_eigenvector
from repro.overlay.peer_sampling import PeerSampler
from repro.overlay.watts_strogatz import watts_strogatz_overlay

__all__ = [
    "Overlay",
    "PeerSampler",
    "column_normalized_matrix",
    "dominant_eigenvector",
    "random_kout_overlay",
    "watts_strogatz_overlay",
]
