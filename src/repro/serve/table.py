"""The sharded per-key account table behind the limiter.

Every limiter key (user id, API key, source address, ...) owns one
:class:`KeyState`: a :class:`~repro.core.account.TokenAccount` plus the
wall-clock tick bookkeeping. States live in a :class:`ShardedTable` —
``shards`` independent LRU maps, each guarded by its own lock, so
concurrent ``try_acquire`` calls for different keys rarely contend.

Eviction is per-shard LRU with a global key budget: when a shard
exceeds ``max_keys / shards`` entries the least-recently-used key is
dropped. An evicted key that returns starts a fresh (full) account —
the standard rate-limiter trade-off; size ``max_keys`` for the working
set so eviction only recycles idle keys.

Shard selection uses :func:`repro.serve.ring.stable_hash` — the same
seeded, non-randomized hash the cluster's consistent-hash ring routes
with — **not** the builtin ``hash()``, whose ``PYTHONHASHSEED`` salt
would scatter the same key across different shards on every interpreter
restart. Stability makes shard assignment reproducible (tests pin it)
and keeps one hashing discipline across the whole serving stack. The
digest costs ~1 µs, so :meth:`ShardedTable.shard_index` memoizes
key → shard in a bounded dictionary: a repeated key — the only kind a
rate limiter ever sees twice — pays a dict hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.account import TokenAccount
from repro.serve.ring import stable_hash

#: shard-route memo budget; the whole memo is dropped when full, which
#: is O(1) amortized and never serves a stale route (routes are pure)
_ROUTE_CACHE_MAX = 65536

#: builds a fresh account for a newly seen key
AccountFactory = Callable[[], TokenAccount]


class KeyState:
    """One key's account plus its wall-clock tick bookkeeping."""

    __slots__ = ("account", "anchor", "ticks_granted", "last_proactive", "last_now")

    def __init__(self, account: TokenAccount, anchor: float):
        #: the §3.1 token account enforcing the balance invariants
        self.account = account
        #: wall-clock time up to which ticks have been credited
        self.anchor = anchor
        #: whole periods credited so far (diagnostics)
        self.ticks_granted = 0
        #: last admission through the token-less proactive slot, if any
        self.last_proactive: Optional[float] = None
        #: latest ``now`` this key has decided at — stale (earlier)
        #: timestamps clamp forward to it so they cannot corrupt the
        #: tick anchor or the proactive-slot pacing
        self.last_now = anchor


class Shard:
    """One lock-guarded LRU map of ``key -> KeyState``.

    Callers hold :attr:`lock` around the *whole* decision (lookup,
    advance, admit), not just the lookup — the lock is what makes a
    limiter decision atomic under threads.
    """

    __slots__ = ("lock", "entries", "max_keys", "evictions", "admitted", "rejected")

    def __init__(self, max_keys: int):
        self.lock = threading.Lock()
        self.entries: "OrderedDict[str, KeyState]" = OrderedDict()
        self.max_keys = max_keys
        self.evictions = 0
        # Decision counters live with the shard so they are incremented
        # under its lock — correct regardless of GIL bytecode atomicity
        # (free-threaded builds included), unlike limiter-global ints.
        self.admitted = 0
        self.rejected = 0

    def get_or_create(self, key: str, account: AccountFactory, now: float) -> KeyState:
        """Fetch ``key``'s state (LRU-touched), creating and evicting as needed."""
        state = self.entries.get(key)
        if state is not None:
            self.entries.move_to_end(key)
            return state
        state = KeyState(account(), now)
        self.entries[key] = state
        while len(self.entries) > self.max_keys:
            self.entries.popitem(last=False)
            self.evictions += 1
        return state


class ShardedTable:
    """``shards`` independent :class:`Shard` maps with a global key budget."""

    __slots__ = ("shards", "_mask", "_route_cache")

    def __init__(self, shards: int = 8, max_keys: int = 65536):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if max_keys < shards:
            raise ValueError(
                f"max_keys ({max_keys}) must be >= the shard count ({shards})"
            )
        # Round the shard count up to a power of two so routing is a mask.
        count = 1
        while count < shards:
            count *= 2
        per_shard = max(1, max_keys // count)
        self.shards: List[Shard] = [Shard(per_shard) for _ in range(count)]
        self._mask = count - 1
        self._route_cache: Dict[str, int] = {}

    def shard_index(self, key: str) -> int:
        """The index of the shard owning ``key`` (stable across processes).

        Memoized: a full digest (:func:`~repro.serve.ring.stable_hash`)
        is computed once per distinct key, then served from a bounded
        dict. Safe under threads — the route is a pure function of the
        key, so a racing double-compute or a concurrent ``clear`` can
        only cost a recompute, never a wrong shard.
        """
        mask = self._mask
        if not mask:
            return 0
        cache = self._route_cache
        index = cache.get(key)
        if index is None:
            if len(cache) >= _ROUTE_CACHE_MAX:
                cache.clear()
            index = stable_hash(key) & mask
            cache[key] = index
        return index

    def shard_for(self, key: str) -> Shard:
        """The shard owning ``key`` (stable across interpreter restarts)."""
        return self.shards[self.shard_index(key)]

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self.shards)

    @property
    def evictions(self) -> int:
        """Total LRU evictions across all shards."""
        return sum(shard.evictions for shard in self.shards)

    @property
    def admitted(self) -> int:
        """Total admissions across all shards."""
        return sum(shard.admitted for shard in self.shards)

    @property
    def rejected(self) -> int:
        """Total rejections across all shards."""
        return sum(shard.rejected for shard in self.shards)

    def items(self) -> Iterator[Tuple[str, KeyState]]:
        """Snapshot iteration over every live ``(key, state)`` pair.

        Takes each shard lock briefly; intended for stats and tests, not
        the hot path.
        """
        for shard in self.shards:
            with shard.lock:
                pairs = list(shard.entries.items())
            yield from pairs
