"""The asyncio load generator (``repro loadgen``).

Replays an *open-loop* arrival schedule (built by
:mod:`repro.serve.arrivals` from a declarative
:class:`~repro.scenarios.ArrivalSpec`) against a live admission server:
request send times are fixed before the run, so offered load does not
slow down when the server pushes back — the regime that distinguishes
admission control from polite clients.

Requests fan out round-robin over ``connections`` persistent TCP
connections and ``keys`` distinct account keys. Each connection
pipelines: a writer coroutine flushes every request that is due (one
``write`` per due batch), while a reader coroutine matches response
lines FIFO to their send deadlines — the line protocol answers strictly
in order, so no per-request ids are needed. Latency is measured from
the *scheduled* arrival time to the response, so scheduler lag and
server backpressure both count, as they would for a real client.

Results aggregate into :class:`repro.metrics.latency.LatencyRecorder`:
admitted/rejected counts, p50/p95/p99 latency, and an
admissions-per-second time series that makes the §3.4 ceiling visible
through a flash-crowd burst.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.latency import LatencyRecorder
from repro.scenarios import ArrivalSpec
from repro.serve import wire
from repro.serve.arrivals import arrival_times
from repro.sim.randomness import RandomStreams


@dataclass
class LoadgenReport:
    """Everything one load-generation run measured."""

    spec_label: str
    duration: float
    offered: int
    #: wall-clock seconds the run actually took (≥ duration under lag)
    elapsed: float = 0.0
    errors: int = 0
    summary: Dict[str, float] = field(default_factory=dict)
    #: admissions per second over the run, bucketed
    admitted_per_second: List[float] = field(default_factory=list)

    def format(self) -> str:
        """The human-readable block ``repro loadgen`` prints."""
        lines = [
            f"loadgen {self.spec_label}: offered {self.offered} requests "
            f"over {self.duration:g}s (elapsed {self.elapsed:.2f}s)",
        ]
        summary = self.summary
        if summary:
            lines.append(
                f"  admitted {summary['admitted']:.0f} / rejected "
                f"{summary['rejected']:.0f}  (admit ratio "
                f"{summary['admit_ratio']:.1%})"
            )
            if "latency_p50_ms" in summary:
                lines.append(
                    f"  latency p50 {summary['latency_p50_ms']:.2f}ms  "
                    f"p95 {summary['latency_p95_ms']:.2f}ms  "
                    f"p99 {summary['latency_p99_ms']:.2f}ms  "
                    f"max {summary['latency_max_ms']:.2f}ms"
                )
        if self.errors:
            lines.append(f"  protocol errors: {self.errors}")
        if self.admitted_per_second:
            peak = max(self.admitted_per_second)
            mean = sum(self.admitted_per_second) / len(self.admitted_per_second)
            lines.append(f"  admitted/s: peak {peak:.0f}, mean {mean:.0f}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (benchmarks, ``--save``)."""
        return {
            "spec": self.spec_label,
            "duration": self.duration,
            "offered": self.offered,
            "elapsed": self.elapsed,
            "errors": self.errors,
            "summary": self.summary,
            "admitted_per_second": self.admitted_per_second,
        }


async def _connection_worker(
    host: str,
    port: int,
    schedule: List[tuple],
    start: float,
    recorder: LatencyRecorder,
    report: LoadgenReport,
) -> None:
    """Drive one pipelined connection through its slice of the schedule."""
    if not schedule:
        return
    reader, writer = await asyncio.open_connection(host, port)
    loop = asyncio.get_running_loop()
    pending: deque = deque()

    async def read_responses() -> None:
        while True:
            line = await reader.readline()
            if not line:
                return
            due = pending.popleft()
            try:
                admitted, _reason, _retry = wire.parse_response(line.decode())
            except ValueError:
                report.errors += 1
                admitted = False
            recorder.record(loop.time() - (start + due), admitted, at=due)
            if not pending and consumer_done.is_set():
                return

    consumer_done = asyncio.Event()
    reader_task = asyncio.create_task(read_responses())
    index = 0
    try:
        while index < len(schedule):
            due, _ = schedule[index]
            delay = start + due - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            # Flush everything that is due by now as one batch write.
            now = loop.time()
            batch = []
            while index < len(schedule) and start + schedule[index][0] <= now:
                due, key = schedule[index]
                batch.append(wire.encode_request(key))
                pending.append(due)
                index += 1
            writer.write(b"".join(batch))
            await writer.drain()
        consumer_done.set()
        if pending:
            await reader_task  # drains until every response arrived, or EOF
        else:
            reader_task.cancel()
    except OSError:
        # The server went away mid-run: keep everything already
        # measured and report the unsent remainder as errors.
        report.errors += len(schedule) - index
    finally:
        # Requests written but never answered (server EOF mid-batch).
        report.errors += len(pending)
        pending.clear()
        if not reader_task.done():
            reader_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_loadgen(
    host: str,
    port: int,
    spec: ArrivalSpec,
    duration: float = 5.0,
    connections: int = 4,
    keys: int = 16,
    seed: int = 1,
    key_prefix: str = "key",
) -> LoadgenReport:
    """Replay ``spec`` against ``host:port`` and measure the outcome.

    Deterministic schedule for a given ``seed`` (the arrival draws come
    from the same :class:`~repro.sim.randomness.RandomStreams` discipline
    as the simulation layers); wall-clock latencies are, of course, not.
    """
    if connections < 1:
        raise ValueError(f"need at least one connection, got {connections}")
    if keys < 1:
        raise ValueError(f"need at least one key, got {keys}")
    rng = RandomStreams(seed).stream("loadgen-arrivals")
    schedule = [
        (due, f"{key_prefix}-{index % keys}")
        for index, due in enumerate(arrival_times(spec, duration, rng))
    ]
    report = LoadgenReport(
        spec_label=spec.label(), duration=duration, offered=len(schedule)
    )
    recorder = LatencyRecorder()
    loop = asyncio.get_running_loop()
    start = loop.time()
    await asyncio.gather(
        *(
            _connection_worker(
                host, port, schedule[worker::connections], start, recorder, report
            )
            for worker in range(connections)
        )
    )
    report.elapsed = loop.time() - start
    report.summary = recorder.summary()
    report.admitted_per_second = list(recorder.admitted_series().values)
    return report
