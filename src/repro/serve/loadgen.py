"""The asyncio load generator (``repro loadgen``).

Replays an *open-loop* arrival schedule (built by
:mod:`repro.serve.arrivals` from a declarative
:class:`~repro.scenarios.ArrivalSpec`) against a live admission server:
request send times are fixed before the run, so offered load does not
slow down when the server pushes back — the regime that distinguishes
admission control from polite clients.

Requests fan out round-robin over ``connections`` persistent TCP
connections and ``keys`` distinct account keys. Each connection
pipelines: a writer coroutine flushes every request that is due (one
``write`` per due batch), while a reader coroutine matches responses
FIFO to their send deadlines — both wire protocols answer strictly in
order, so no per-request ids are needed. Latency is measured from the
*scheduled* arrival time to the response, so scheduler lag and server
backpressure both count, as they would for a real client.

``protocol`` selects the wire format (``"text"`` lines or the
length-prefixed ``"binary"`` framing — see :mod:`repro.serve.wire`),
and ``pipeline`` optionally caps in-flight requests per connection
(0 = unbounded): a run stays open-loop in its send *schedule* while
bounding how deep any one connection's response queue can grow.

The binary reader exploits the fixed 17-byte ``DECISION`` frame: a
pipelined ACQUIRE-only stream is a homogeneous array of records, so
each socket read is parsed with **one** :func:`numpy.frombuffer` over a
packed structured dtype (:data:`DECISION_DTYPE`) instead of a Python
loop — the client-side half of the zero-copy wire path. Any
non-DECISION frame (stats, error) drops the connection back to the
generic frame-by-frame parser.

Results aggregate into :class:`repro.metrics.latency.LatencyRecorder`:
admitted/rejected counts, p50/p95/p99 latency, and an
admissions-per-second time series that makes the §3.4 ceiling visible
through a flash-crowd burst.
"""

from __future__ import annotations

import asyncio
import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.metrics.latency import LatencyRecorder
from repro.scenarios import ArrivalSpec
from repro.serve import wire
from repro.serve.arrivals import arrival_times
from repro.sim.randomness import RandomStreams

#: packed view of one binary DECISION frame (length prefix included) —
#: field offsets match ``wire.DECISION_STRUCT`` ("<HBBBid") exactly, so
#: ``np.frombuffer`` turns a run of pipelined responses into columns.
DECISION_DTYPE = np.dtype(
    {
        "names": ["len", "status", "admitted", "reason", "balance", "retry"],
        "formats": ["<u2", "u1", "u1", "u1", "<i4", "<f8"],
        "offsets": [0, 2, 3, 4, 5, 9],
        "itemsize": wire.DECISION_FRAME_SIZE,
    }
)


@dataclass
class LoadgenReport:
    """Everything one load-generation run measured."""

    spec_label: str
    duration: float
    offered: int
    #: wall-clock seconds the run actually took (≥ duration under lag)
    elapsed: float = 0.0
    errors: int = 0
    #: wire protocol the run spoke ("text" or "binary")
    protocol: str = "text"
    #: per-connection in-flight cap (0 = unbounded)
    pipeline: int = 0
    summary: Dict[str, float] = field(default_factory=dict)
    #: admissions per second over the run, bucketed
    admitted_per_second: List[float] = field(default_factory=list)

    def format(self) -> str:
        """The human-readable block ``repro loadgen`` prints."""
        pipelined = f", pipeline {self.pipeline}" if self.pipeline else ""
        lines = [
            f"loadgen {self.spec_label}: offered {self.offered} requests "
            f"over {self.duration:g}s (elapsed {self.elapsed:.2f}s, "
            f"{self.protocol}{pipelined})",
        ]
        summary = self.summary
        if summary:
            lines.append(
                f"  admitted {summary['admitted']:.0f} / rejected "
                f"{summary['rejected']:.0f}  (admit ratio "
                f"{summary['admit_ratio']:.1%})"
            )
            if "latency_p50_ms" in summary:
                lines.append(
                    f"  latency p50 {summary['latency_p50_ms']:.2f}ms  "
                    f"p95 {summary['latency_p95_ms']:.2f}ms  "
                    f"p99 {summary['latency_p99_ms']:.2f}ms  "
                    f"max {summary['latency_max_ms']:.2f}ms"
                )
        if self.errors:
            lines.append(f"  protocol errors: {self.errors}")
        if self.admitted_per_second:
            peak = max(self.admitted_per_second)
            mean = sum(self.admitted_per_second) / len(self.admitted_per_second)
            lines.append(f"  admitted/s: peak {peak:.0f}, mean {mean:.0f}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (benchmarks, ``--save``)."""
        return {
            "spec": self.spec_label,
            "duration": self.duration,
            "offered": self.offered,
            "elapsed": self.elapsed,
            "errors": self.errors,
            "protocol": self.protocol,
            "pipeline": self.pipeline,
            "summary": self.summary,
            "admitted_per_second": self.admitted_per_second,
        }


async def fetch_stats(host: str, port: int) -> Dict[str, object]:
    """Fetch one STATS document from a server over the binary protocol.

    Works against a single-process server and the cluster router alike
    (the router answers with the aggregated cluster document). Raises
    ``ValueError`` on a protocol mismatch and propagates ``OSError``
    when the server is unreachable.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(wire.MAGIC + wire.encode_command_binary(wire.OP_STATS))
        ack = await reader.readexactly(len(wire.MAGIC))
        if ack != wire.MAGIC:
            raise ValueError("server did not echo the binary hello")
        header = await reader.readexactly(2)
        length = header[0] | (header[1] << 8)
        payload = await reader.readexactly(length)
        status, value = wire.decode_response_binary(payload)
        if status != wire.STATUS_STATS:
            raise ValueError(f"expected a STATS response, got status {status}")
        return json.loads(value)
    except asyncio.IncompleteReadError as error:
        raise ValueError("server closed mid-response") from error
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _connection_worker(
    host: str,
    port: int,
    schedule: List[tuple],
    start: float,
    recorder: LatencyRecorder,
    report: LoadgenReport,
    protocol: str = "text",
    pipeline: int = 0,
) -> None:
    """Drive one pipelined connection through its slice of the schedule."""
    if not schedule:
        return
    reader, writer = await asyncio.open_connection(host, port)
    loop = asyncio.get_running_loop()
    binary = protocol == "binary"
    total = len(schedule)
    # Both wire protocols answer strictly in order and the writer sends
    # in schedule order, so response N belongs to send deadline N: a
    # cursor into the due-times array replaces per-request bookkeeping.
    dues = np.fromiter(
        (due for due, _ in schedule), dtype=np.float64, count=total
    )
    due_list = dues.tolist()
    sent = 0
    completed = 0
    consumer_done = asyncio.Event()
    #: set by the reader whenever responses complete (or it exits), so
    #: a pipeline-capped writer can wait for in-flight slots to free up
    progress = asyncio.Event()

    async def read_text() -> None:
        nonlocal completed
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                due = due_list[completed]
                completed += 1
                try:
                    admitted, _reason, _retry = wire.parse_response(line.decode())
                except ValueError:
                    report.errors += 1
                    admitted = False
                recorder.record(loop.time() - (start + due), admitted, at=due)
                progress.set()
                if completed >= total and consumer_done.is_set():
                    return
        finally:
            progress.set()  # never leave a capped writer waiting forever

    async def read_binary() -> None:
        nonlocal completed
        buffer = bytearray()
        stride = wire.DECISION_FRAME_SIZE
        body_length = stride - 2  # u16 length prefix excludes itself
        decode = wire.decode_response_binary
        generic = False
        try:
            while True:
                chunk = await reader.read(2**17)
                if not chunk:
                    return
                if buffer:
                    buffer += chunk
                    data = buffer
                else:
                    data = chunk  # parse straight out of the socket read
                if not generic:
                    usable = len(data) - len(data) % stride
                    if not usable:
                        if data is not buffer:
                            buffer += data
                        continue
                    view = memoryview(data)[:usable]
                    frames = np.frombuffer(view, dtype=DECISION_DTYPE)
                    homogeneous = bool(
                        (frames["status"] == wire.STATUS_DECISION).all()
                    ) and bool((frames["len"] == body_length).all())
                    if homogeneous:
                        count = usable // stride
                        admitted = frames["admitted"] != 0
                        del frames
                        view.release()
                        # One timestamp for the burst: every response in
                        # it arrived in the same socket read.
                        ats = dues[completed : completed + count]
                        latencies = (loop.time() - start) - ats
                        completed += count
                        recorder.record_arrays(latencies, admitted, ats)
                        if data is buffer:
                            del buffer[:usable]
                        elif usable < len(data):
                            buffer += data[usable:]
                        progress.set()
                        if completed >= total and consumer_done.is_set():
                            return
                        continue
                    # A stats/error/short frame broke the stride: fall
                    # back to frame-by-frame parsing for good.
                    del frames
                    view.release()
                    generic = True
                    if data is not buffer:
                        buffer += data
                payloads, consumed = wire.split_frames(buffer)
                if consumed:
                    del buffer[:consumed]
                if not payloads:
                    continue
                now = loop.time()
                samples = []
                for payload in payloads:
                    due = due_list[completed]
                    completed += 1
                    admitted = False
                    try:
                        status, value = decode(payload)
                        if status == wire.STATUS_DECISION:
                            admitted = value.admitted
                        else:
                            report.errors += 1
                    except ValueError:
                        report.errors += 1
                    samples.append((now - (start + due), admitted, due))
                recorder.record_many(samples)
                progress.set()
                if completed >= total and consumer_done.is_set():
                    return
        finally:
            progress.set()

    if binary:
        writer.write(wire.MAGIC)
        await writer.drain()
        try:
            ack = await reader.readexactly(len(wire.MAGIC))
        except asyncio.IncompleteReadError:
            ack = b""
        if ack != wire.MAGIC:
            report.errors += total
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return
        encode = wire.encode_request_binary
    else:
        encode = wire.encode_request
    # Requests repeat over few keys: encode each key once up front, then
    # pre-join the whole connection's request stream into ONE contiguous
    # bytes object with per-request byte offsets. The send hot loop is
    # then a zero-copy memoryview slice per batch — no per-request join
    # work competes with the server for CPU during the measured run.
    frame_cache: Dict[str, bytes] = {}
    payloads_out = []
    for _, key in schedule:
        frame = frame_cache.get(key)
        if frame is None:
            frame = frame_cache[key] = encode(key)
        payloads_out.append(frame)
    stream = memoryview(b"".join(payloads_out))
    offsets = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter(map(len, payloads_out), dtype=np.int64, count=total),
        out=offsets[1:],
    )
    offset_list = offsets.tolist()
    del payloads_out
    reader_task = asyncio.create_task(read_binary() if binary else read_text())
    try:
        while sent < total:
            delay = start + due_list[sent] - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            while pipeline and sent - completed >= pipeline:
                if reader_task.done():
                    raise ConnectionResetError("reader finished early")
                progress.clear()
                await progress.wait()
            # Flush everything that is due by now as one batch write
            # (bounded by the remaining pipeline room, if capped).
            stop = sent + pipeline - (sent - completed) if pipeline else total
            if stop > total:
                stop = total
            cutoff = loop.time() - start
            index = bisect_right(due_list, cutoff, sent, stop)
            if index > sent:
                writer.write(stream[offset_list[sent] : offset_list[index]])
                sent = index
                await writer.drain()
        consumer_done.set()
        if completed < sent:
            await reader_task  # drains until every response arrived, or EOF
        else:
            reader_task.cancel()
    except OSError:
        # The server went away mid-run: keep everything already
        # measured and report the unsent remainder as errors.
        report.errors += total - sent
    finally:
        # Requests written but never answered (server EOF mid-batch).
        report.errors += sent - completed
        if not reader_task.done():
            reader_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_loadgen(
    host: str,
    port: int,
    spec: ArrivalSpec,
    duration: float = 5.0,
    connections: int = 4,
    keys: int = 16,
    seed: int = 1,
    key_prefix: str = "key",
    protocol: str = "text",
    pipeline: int = 0,
) -> LoadgenReport:
    """Replay ``spec`` against ``host:port`` and measure the outcome.

    Deterministic schedule for a given ``seed`` (the arrival draws come
    from the same :class:`~repro.sim.randomness.RandomStreams` discipline
    as the simulation layers); wall-clock latencies are, of course, not.
    """
    if connections < 1:
        raise ValueError(f"need at least one connection, got {connections}")
    if keys < 1:
        raise ValueError(f"need at least one key, got {keys}")
    if protocol not in ("text", "binary"):
        raise ValueError(f"protocol must be 'text' or 'binary', got {protocol!r}")
    if pipeline < 0:
        raise ValueError(f"pipeline depth cannot be negative, got {pipeline}")
    rng = RandomStreams(seed).stream("loadgen-arrivals")
    schedule = [
        (due, f"{key_prefix}-{index % keys}")
        for index, due in enumerate(arrival_times(spec, duration, rng))
    ]
    report = LoadgenReport(
        spec_label=spec.label(),
        duration=duration,
        offered=len(schedule),
        protocol=protocol,
        pipeline=pipeline,
    )
    recorder = LatencyRecorder()
    loop = asyncio.get_running_loop()
    start = loop.time()
    await asyncio.gather(
        *(
            _connection_worker(
                host,
                port,
                schedule[worker::connections],
                start,
                recorder,
                report,
                protocol=protocol,
                pipeline=pipeline,
            )
            for worker in range(connections)
        )
    )
    report.elapsed = loop.time() - start
    report.summary = recorder.summary()
    report.admitted_per_second = list(recorder.admitted_series().values)
    return report
