"""`TokenAccountLimiter` — token account algorithms as admission control.

The paper's point is that token accounts make bursty reactive traffic
schedulable like proactive traffic; read as a serving primitive that is
exactly admission control: a request is a stimulus, a send is an
admission, and the §3.4 guarantee — *no key is admitted more than
``⌈t/Δ⌉ + C`` times in any window of length ``t``* — is the rate
contract a caller can size capacity against.

The limiter runs Algorithm 4 against wall-clock time instead of a
simulated round timer:

* every whole elapsed period ``Δ`` since a key was last touched banks
  one token into its :class:`~repro.core.account.TokenAccount` (clamped
  at the strategy's capacity ``C``, exactly like the simulated node
  whose proactive send found no peer);
* an incoming ``try_acquire`` plays ONMESSAGE: the strategy's
  :meth:`~repro.core.strategies.Strategy.admission_decision` hook runs
  one reactive-then-proactive decision, and an admission spends one
  banked token;
* strategies that send proactively from an empty account (the pure
  proactive baseline, ``C = 0``) admit through a token-less *proactive
  slot* instead, paced at most once per period — the wall-clock analog
  of "one proactive send per round".

Burst-bound accounting (why §3.4 survives): every admission consumes
either a banked token or the paced proactive slot. In any window of
length ``t`` at most ``C`` tokens existed at the window start and at
most ``⌈t/Δ⌉`` accrue inside it; the proactive slot fires only for
capacity-0 strategies (whose accounts never hold tokens) at most once
per period. Either way admissions never exceed ``⌈t/Δ⌉ + C`` — the
bound :class:`repro.core.ratelimit.RateLimitAuditor` checks, and the
property tests drive the limiter with a synthetic clock to prove it for
every registered strategy.

Two deliberate divergences from the simulation defaults, both standard
for rate limiters and both inside the bound:

* new keys start with a **full** account (``initial_tokens=None`` means
  ``C``), so a fresh client gets its burst allowance immediately; pass
  ``initial_tokens=0`` for the paper's cold start;
* an LRU-evicted key that returns is indistinguishable from a fresh
  one — size ``max_keys`` to the working set.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.account import TokenAccount
from repro.core.strategies import Strategy, make_strategy
from repro.serve.clock import Clock, monotonic_clock
from repro.serve.table import KeyState, Shard, ShardedTable

#: scale-relative tolerance for tick-grid comparisons — the same idea as
#: the auditor's window-edge epsilon: ``anchor + k·Δ`` accumulates float
#: noise, which must never cost (or mint) a whole token
_TICK_EPSILON = 1e-9


@dataclass(frozen=True, init=False)
class Decision:
    """The outcome of one :meth:`TokenAccountLimiter.try_acquire` call.

    ``reason`` is ``"reactive"`` or ``"proactive"`` for admissions
    (which Algorithm-4 branch granted the send) and ``"exhausted"`` for
    rejections. ``retry_after`` is the caller's backoff hint: seconds
    until the key's next token accrues (``None`` on admission).

    :meth:`to_wire` / :meth:`from_wire` are the text-protocol codec —
    the one place a decision's line format lives (the binary framing is
    :func:`repro.serve.wire.encode_decision_binary`, built from the
    same fields).
    """

    admitted: bool
    key: str
    reason: str
    #: token balance after the decision
    balance: int
    retry_after: Optional[float] = None

    # Hand-rolled init: the limiter constructs one Decision per request
    # on the hot path, where dataclass-generated frozen __init__ (one
    # object.__setattr__ per field) costs ~2.5x this. Field order and
    # defaults match the declarations above.
    def __init__(
        self,
        admitted: bool,
        key: str,
        reason: str,
        balance: int,
        retry_after: Optional[float] = None,
    ):
        self.__dict__["admitted"] = admitted
        self.__dict__["key"] = key
        self.__dict__["reason"] = reason
        self.__dict__["balance"] = balance
        self.__dict__["retry_after"] = retry_after

    def __bool__(self) -> bool:
        return self.admitted

    # ------------------------------------------------------------------
    def to_wire(self) -> bytes:
        """This decision as its text-protocol response line."""
        if self.admitted:
            return f"+ {self.reason} {self.balance}\n".encode()
        retry = self.retry_after if self.retry_after is not None else 0.0
        return f"- {retry:.6f}\n".encode()

    @classmethod
    def from_wire(cls, line: Union[str, bytes], key: str = "") -> "Decision":
        """Parse a text-protocol response line back into a Decision.

        The line format does not carry the key (responses are matched
        to requests by order), so the caller supplies it; rejection
        lines carry no balance, which parses as 0. Error lines (``!``)
        raise ``ValueError``.
        """
        if isinstance(line, (bytes, bytearray, memoryview)):
            line = bytes(line).decode("ascii", "replace")
        parts = line.split()
        if not parts:
            raise ValueError("empty response")
        if parts[0] == "+":
            reason = parts[1] if len(parts) > 1 else ""
            balance = int(parts[2]) if len(parts) > 2 else 0
            return cls(True, key, reason, balance)
        if parts[0] == "-":
            retry = float(parts[1]) if len(parts) > 1 else 0.0
            return cls(False, key, "exhausted", 0, retry)
        raise ValueError(f"server error: {line.strip()}")


class TokenAccountLimiter:
    """Thread-safe, wall-clock-driven admission control over token accounts.

    Parameters
    ----------
    strategy:
        A :class:`~repro.core.strategies.Strategy` instance, or a
        registry name resolved via ``make_strategy`` together with
        ``spend_rate`` / ``capacity``.
    period:
        The wall-clock round length Δ in seconds: every key accrues one
        token per period. The steady-state admission rate is ``1/period``
        per key; bursts are bounded by the strategy's capacity ``C``.
    spend_rate, capacity:
        Strategy parameters (``A``, ``C``) when ``strategy`` is a name.
    shards, max_keys:
        Account-table geometry; see :class:`repro.serve.table.ShardedTable`.
    clock:
        Zero-argument time source (default ``time.monotonic``); tests
        inject :class:`repro.serve.clock.ManualClock`.
    seed:
        Seeds the decision RNG (randomized rounding and the randomized
        strategy's proactive coin). One process-wide stream, as in a
        single simulated node.
    initial_tokens:
        Starting balance for new keys; ``None`` (default) starts full at
        the strategy's capacity, 0 reproduces the paper's cold start.

    Examples
    --------
    >>> from repro.serve import ManualClock, TokenAccountLimiter
    >>> clock = ManualClock()
    >>> limiter = TokenAccountLimiter("simple", capacity=2, period=1.0, clock=clock)
    >>> [bool(limiter.try_acquire("alice")) for _ in range(3)]
    [True, True, False]
    >>> _ = clock.advance(1.0)
    >>> bool(limiter.try_acquire("alice"))
    True
    """

    def __init__(
        self,
        strategy: Union[Strategy, str],
        *,
        period: float = 1.0,
        spend_rate: Optional[int] = None,
        capacity: Optional[int] = None,
        shards: int = 8,
        max_keys: int = 65536,
        clock: Clock = monotonic_clock,
        seed: Optional[int] = None,
        initial_tokens: Optional[int] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if isinstance(strategy, str):
            strategy = make_strategy(
                strategy, spend_rate=spend_rate, capacity=capacity
            )
        self.strategy = strategy
        self.period = float(period)
        cap = strategy.token_capacity
        if initial_tokens is None:
            initial_tokens = cap if cap is not None else 0
        if cap is not None and initial_tokens > cap:
            raise ValueError(
                f"initial_tokens {initial_tokens} exceeds the strategy's "
                f"token capacity {cap}"
            )
        self._initial_tokens = initial_tokens
        self._table = ShardedTable(shards=shards, max_keys=max_keys)
        self._clock = clock
        self._rng = random.Random(seed)
        #: the shared Algorithm-4 kernel (also used by the vectorized
        #: simulation backend) — scalar decisions and batched
        #: ``decide_many`` both run through it
        self._kernel = self.strategy.decision_kernel
        # Batch decisions draw from a NumPy generator (decide_many's
        # columnar draws); the lock covers it across shards, since
        # unlike the per-shard state the RNG is limiter-global.
        self._np_rng = np.random.default_rng(seed)
        self._np_rng_lock = threading.Lock()
        # Whether try_acquire_run's closed form is exact for this
        # strategy: a plain bounded bucket whose kernel is fully
        # deterministic (no randRound fraction, 0/1 proactive coin) and
        # never admits from an empty account. Deciding n back-to-back
        # requests at one timestamp is then an admit-prefix walk down
        # the balance — no per-request randomness to honor.
        kernel = self._kernel
        cap = self.strategy.token_capacity
        self._run_closed_form = (
            cap is not None
            and cap > 0
            and not kernel.clip_index
            and max(kernel._frac_list) == 0.0
            and all(p in (0.0, 1.0) for p in kernel._pro_list)
            and kernel._pro_list[0] == 0.0
        )

    # ------------------------------------------------------------------
    def _new_account(self) -> TokenAccount:
        """A fresh account for a newly seen (or LRU-recycled) key."""
        return TokenAccount(
            initial=self._initial_tokens,
            capacity=self.strategy.token_capacity,
            allow_overdraft=self.strategy.requires_overdraft,
        )

    def _advance(self, state: KeyState, now: float) -> None:
        """Credit every whole period elapsed since the key's anchor."""
        elapsed = now - state.anchor
        if elapsed <= 0:
            return
        ticks = int(elapsed / self.period + _TICK_EPSILON)
        if ticks <= 0:
            return
        state.anchor += ticks * self.period
        state.ticks_granted += ticks
        state.account.grant_many(ticks)

    def _retry_after(self, state: KeyState, now: float) -> float:
        """Seconds until the key's next admission opportunity."""
        if self.strategy.token_capacity == 0:
            # Capacity-0 strategies can only admit through the paced
            # proactive slot — ticks grant nothing (the clamp eats
            # them), so the tick grid must not shorten the hint.
            if state.last_proactive is not None:
                return max(0.0, state.last_proactive + self.period - now)
            return 0.0
        return max(0.0, state.anchor + self.period - now)

    def _settle(
        self,
        shard: Shard,
        state: KeyState,
        key: str,
        verdict: Optional[str],
        now: float,
    ) -> Decision:
        """Apply one kernel verdict to the key's account (§3.4 accounting).

        Shared by the scalar and batched paths: the caller holds the
        shard lock and has already advanced the account to ``now``.
        """
        account = state.account
        if verdict is not None:
            if account.balance >= 1 or account.allow_overdraft:
                # Both branches spend a banked token when one exists:
                # the proactive send consumes the round's token in the
                # paper too (only the skipped round banks it).
                account.withdraw(1)
                shard.admitted += 1
                return Decision(True, key, verdict, account.balance)
            if verdict == "proactive":
                # Token-less proactive slot (capacity-0 strategies):
                # at most one admission per period, the wall-clock
                # form of "one proactive send per round".
                last = state.last_proactive
                if last is None or now - last >= self.period * (1.0 - _TICK_EPSILON):
                    state.last_proactive = now
                    shard.admitted += 1
                    return Decision(True, key, "proactive", account.balance)
        shard.rejected += 1
        return Decision(
            False, key, "exhausted", account.balance, self._retry_after(state, now)
        )

    # ------------------------------------------------------------------
    def try_acquire(
        self, key: str, useful: bool = True, now: Optional[float] = None
    ) -> Decision:
        """One admission decision for ``key``; never blocks.

        ``useful`` is the Algorithm-4 usefulness flag: pass ``False``
        for low-priority traffic and the generalized strategy spends
        tokens at half rate on it (the randomized strategy rejects it
        outright when not proactively due). ``now`` overrides the clock
        for this call (tests and replay); a ``now`` earlier than the
        key's last decision clamps forward to it — backwards time must
        not corrupt the tick anchor or re-arm the proactive slot.
        """
        if now is None:
            now = self._clock()
        shard = self._table.shard_for(key)
        with shard.lock:
            state = shard.get_or_create(key, self._new_account, now)
            if now < state.last_now:
                now = state.last_now
            else:
                state.last_now = now
            self._advance(state, now)
            verdict = self._kernel.decide_one(
                state.account.balance, useful, self._rng
            )
            return self._settle(shard, state, key, verdict, now)

    def try_acquire_many(
        self,
        keys: Sequence[str],
        useful: Union[bool, Sequence[bool]] = True,
        now: Optional[float] = None,
    ) -> List[Decision]:
        """Batched admission: one :class:`Decision` per key, in order.

        The batch API the binary wire path rides on: keys are grouped
        by owning shard, each shard lock is taken **once**, accounts
        advance in bulk, and the verdicts come from one columnar
        :meth:`~repro.core.kernel.DecisionKernel.decide_many` call per
        shard group instead of per-key scalar decisions.

        Semantics match a sequence of :meth:`try_acquire` calls at one
        ``now`` — the fused per-shard pass settles each position in
        order, so duplicate keys see the previous occurrence's spend —
        except that decisions for *different* keys draw from the batch
        RNG stream in shard order rather than input order. The §3.4
        burst bound is per key, so it is preserved exactly.

        ``useful`` is one flag for the whole batch or a sequence
        aligned with ``keys``.
        """
        count = len(keys)
        if not count:
            return []
        if now is None:
            now = self._clock()
        decisions: List[Optional[Decision]] = [None] * count
        table = self._table
        shards = table.shards
        if table._mask == 0:
            groups: Dict[int, List[int]] = {0: list(range(count))}
        else:
            # Group input positions by owning shard (same stable-hash
            # routing as shard_for; the table's route memo makes the
            # common repeated-key case a dict hit).
            shard_index = table.shard_index
            route_cache = table._route_cache
            groups = {}
            for position, key in enumerate(keys):
                index = route_cache.get(key)
                if index is None:
                    index = shard_index(key)
                group = groups.get(index)
                if group is None:
                    groups[index] = [position]
                else:
                    group.append(position)
        for index, positions in groups.items():
            shard = shards[index]
            with shard.lock:
                self._decide_batch(shard, keys, useful, positions, now, decisions)
        return decisions  # type: ignore[return-value]

    def try_acquire_run(
        self,
        key: str,
        count: int,
        useful: bool = True,
        now: Optional[float] = None,
    ) -> Optional[tuple]:
        """``count`` back-to-back decisions for one key, in closed form.

        The bulk seam the cluster's ``ACQUIRE_BULK`` opcode rides on:
        for deterministic strategies (see ``_run_closed_form``) the
        outcome of n consecutive requests at one ``now`` is always an
        admit prefix followed by rejections, so one balance walk under
        the shard lock replaces n per-request decisions and Decision
        allocations. Returns ``(admits, rejects, balance, reason,
        retry_after)`` — ``balance`` is the pre-spend balance (admitted
        requests observed ``balance-1 … balance-admits``, rejected ones
        ``balance-admits``) — or ``None`` when the closed form does not
        apply (randomized kernels, graded usefulness, overdraft or
        capacity-0 strategies, or a run that would mix admit reasons);
        the caller then falls back to :meth:`try_acquire_many`, which
        is exact for every strategy. Counters, LRU touch and tick
        accounting match the generic path exactly.
        """
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        if not self._run_closed_form or not (useful is True or useful is False):
            return None
        if now is None:
            now = self._clock()
        kernel = self._kernel
        int_lut = kernel._int_list
        pro_lut = kernel._pro_list
        offset = kernel.lut_span if useful else 0
        shard = self._table.shard_for(key)
        with shard.lock:
            state = shard.get_or_create(key, self._new_account, now)
            if now < state.last_now:
                now = state.last_now
            else:
                state.last_now = now
            self._advance(state, now)
            account = state.account
            balance = account.balance
            # Pure walk first — no state mutated until the run is known
            # to be single-reason, so a None return leaves the account
            # exactly where try_acquire_many's fallback expects it
            # (_advance at the same ``now`` is a no-op on retry).
            admits = 0
            reason: Optional[str] = None
            x = balance
            while admits < count and x >= 1:
                if int_lut[x + offset] >= 1:
                    branch = "reactive"
                elif pro_lut[x] == 1.0:
                    branch = "proactive"
                else:
                    break
                if reason is None:
                    reason = branch
                elif branch != reason:
                    return None
                x -= 1
                admits += 1
            account.balance = x
            account.spent += admits
            shard.admitted += admits
            rejects = count - admits
            shard.rejected += rejects
            retry = 0.0
            if rejects:
                retry = state.anchor + self.period - now
                if retry < 0.0:
                    retry = 0.0
            return admits, rejects, balance, reason or "exhausted", retry

    def _decide_batch(
        self,
        shard: Shard,
        keys: Sequence[str],
        useful: Union[bool, Sequence[bool]],
        positions: List[int],
        now: float,
        out: List[Optional[Decision]],
    ) -> None:
        """Decide one shard's positions, in order, under its lock.

        The batch hot loop. All uniforms for the sub-batch are drawn up
        front as one ``(n, 2)`` block — row-major, so the stream is
        bit-identical to ``n`` sequential scalar decisions on the same
        generator (the kernel's two-draw contract) — and a single fused
        pass per key then advances the account, decides through the
        kernel's LUTs and settles. ``get_or_create`` / ``_advance`` /
        ``_settle`` are inlined for their common cases (key creation,
        graded usefulness, capacity-0 slots and overdraft still route
        through the shared methods): at ~1-2 µs per decision the
        method-call and list-staging overhead of a layered
        implementation would eat the batch speedup.
        """
        n = len(positions)
        entries_get = shard.entries.get
        move_to_end = shard.entries.move_to_end
        get_or_create = shard.get_or_create
        new_account = self._new_account
        settle = self._settle
        period = self.period
        cap = self.strategy.token_capacity
        # Plain token bucket (finite positive capacity): no overdraft
        # and no capacity-0 proactive slot, so rejects inline too.
        plain = cap is not None and cap > 0
        kernel = self._kernel
        int_lut = kernel._int_list
        frac_lut = kernel._frac_list
        pro_lut = kernel._pro_list
        span = kernel.lut_span
        lut_max = kernel.lut_max
        decide_drawn = kernel.decide_one_drawn
        scalar_useful = useful is True or useful is False
        with self._np_rng_lock:
            draws = self._np_rng.random((n, 2))
        uniforms = draws.ravel().tolist()
        alloc = object.__new__
        admitted = 0
        rejected = 0
        cursor = 0
        for position in positions:
            key = keys[position]
            state = entries_get(key)
            if state is None:
                state = get_or_create(key, new_account, now)
            else:
                move_to_end(key)
            # stale-now clamp, per key (see try_acquire)
            key_now = now
            if key_now < state.last_now:
                key_now = state.last_now
            else:
                state.last_now = key_now
            account = state.account
            elapsed = key_now - state.anchor
            if elapsed > 0:
                ticks = int(elapsed / period + _TICK_EPSILON)
                if ticks > 0:
                    # inline _advance + TokenAccount.grant_many
                    state.anchor += ticks * period
                    state.ticks_granted += ticks
                    if cap is not None:
                        headroom = cap - account.balance
                        if ticks < headroom:
                            headroom = ticks
                        elif headroom < 0:
                            headroom = 0
                        ticks = headroom
                    account.balance += ticks
                    account.granted += ticks
            balance = account.balance
            u_round = uniforms[cursor]
            u_coin = uniforms[cursor + 1]
            cursor += 2
            flag = useful if scalar_useful else useful[position]
            if (flag is True or flag is False) and 0 <= balance <= lut_max:
                # inline decide_one_drawn's LUT fast path
                lut_key = balance + span if flag else balance
                if int_lut[lut_key] + (u_round < frac_lut[lut_key]) >= 1:
                    verdict: Optional[str] = "reactive"
                else:
                    probability = pro_lut[balance]
                    if probability >= 1.0 or (
                        probability > 0.0 and u_coin < probability
                    ):
                        verdict = "proactive"
                    else:
                        verdict = None
            else:
                verdict = decide_drawn(balance, flag, u_round, u_coin)
            if verdict is not None and balance >= 1:
                # inline _settle's token-spend admit; building the
                # frozen Decision through object.__new__ + direct
                # __dict__ stores skips the constructor-call overhead
                # (retry_after reads fall back to the class default)
                balance -= 1
                account.balance = balance
                account.spent += 1
                admitted += 1
                decision = alloc(Decision)
                fields = decision.__dict__
                fields["admitted"] = True
                fields["key"] = key
                fields["reason"] = verdict
                fields["balance"] = balance
                out[position] = decision
            elif plain and verdict != "proactive":
                # inline _settle's plain reject (silent verdict, or a
                # reactive verdict against an empty account)
                rejected += 1
                retry = state.anchor + period - key_now
                decision = alloc(Decision)
                fields = decision.__dict__
                fields["admitted"] = False
                fields["key"] = key
                fields["reason"] = "exhausted"
                fields["balance"] = balance
                fields["retry_after"] = retry if retry > 0.0 else 0.0
                out[position] = decision
            else:
                out[position] = settle(shard, state, key, verdict, key_now)
        shard.admitted += admitted
        shard.rejected += rejected

    # ------------------------------------------------------------------
    @property
    def admitted(self) -> int:
        """Total admissions (summed over the per-shard counters)."""
        return self._table.admitted

    @property
    def rejected(self) -> int:
        """Total rejections (summed over the per-shard counters)."""
        return self._table.rejected

    def balance(self, key: str) -> Optional[int]:
        """The key's current banked balance, or ``None`` if unseen."""
        shard = self._table.shard_for(key)
        with shard.lock:
            state = shard.entries.get(key)
            return None if state is None else state.account.balance

    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> dict:
        """A JSON-ready snapshot of the limiter's aggregate counters."""
        return {
            "strategy": self.strategy.describe(),
            "period": self.period,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "keys": len(self._table),
            "evictions": self._table.evictions,
        }
