"""`TokenAccountLimiter` — token account algorithms as admission control.

The paper's point is that token accounts make bursty reactive traffic
schedulable like proactive traffic; read as a serving primitive that is
exactly admission control: a request is a stimulus, a send is an
admission, and the §3.4 guarantee — *no key is admitted more than
``⌈t/Δ⌉ + C`` times in any window of length ``t``* — is the rate
contract a caller can size capacity against.

The limiter runs Algorithm 4 against wall-clock time instead of a
simulated round timer:

* every whole elapsed period ``Δ`` since a key was last touched banks
  one token into its :class:`~repro.core.account.TokenAccount` (clamped
  at the strategy's capacity ``C``, exactly like the simulated node
  whose proactive send found no peer);
* an incoming ``try_acquire`` plays ONMESSAGE: the strategy's
  :meth:`~repro.core.strategies.Strategy.admission_decision` hook runs
  one reactive-then-proactive decision, and an admission spends one
  banked token;
* strategies that send proactively from an empty account (the pure
  proactive baseline, ``C = 0``) admit through a token-less *proactive
  slot* instead, paced at most once per period — the wall-clock analog
  of "one proactive send per round".

Burst-bound accounting (why §3.4 survives): every admission consumes
either a banked token or the paced proactive slot. In any window of
length ``t`` at most ``C`` tokens existed at the window start and at
most ``⌈t/Δ⌉`` accrue inside it; the proactive slot fires only for
capacity-0 strategies (whose accounts never hold tokens) at most once
per period. Either way admissions never exceed ``⌈t/Δ⌉ + C`` — the
bound :class:`repro.core.ratelimit.RateLimitAuditor` checks, and the
property tests drive the limiter with a synthetic clock to prove it for
every registered strategy.

Two deliberate divergences from the simulation defaults, both standard
for rate limiters and both inside the bound:

* new keys start with a **full** account (``initial_tokens=None`` means
  ``C``), so a fresh client gets its burst allowance immediately; pass
  ``initial_tokens=0`` for the paper's cold start;
* an LRU-evicted key that returns is indistinguishable from a fresh
  one — size ``max_keys`` to the working set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.account import TokenAccount
from repro.core.strategies import Strategy, make_strategy
from repro.serve.clock import Clock, monotonic_clock
from repro.serve.table import KeyState, ShardedTable

#: scale-relative tolerance for tick-grid comparisons — the same idea as
#: the auditor's window-edge epsilon: ``anchor + k·Δ`` accumulates float
#: noise, which must never cost (or mint) a whole token
_TICK_EPSILON = 1e-9


@dataclass(frozen=True)
class Decision:
    """The outcome of one :meth:`TokenAccountLimiter.try_acquire` call.

    ``reason`` is ``"reactive"`` or ``"proactive"`` for admissions
    (which Algorithm-4 branch granted the send) and ``"exhausted"`` for
    rejections. ``retry_after`` is the caller's backoff hint: seconds
    until the key's next token accrues (``None`` on admission).
    """

    admitted: bool
    key: str
    reason: str
    #: token balance after the decision
    balance: int
    retry_after: Optional[float] = None

    def __bool__(self) -> bool:
        return self.admitted


class TokenAccountLimiter:
    """Thread-safe, wall-clock-driven admission control over token accounts.

    Parameters
    ----------
    strategy:
        A :class:`~repro.core.strategies.Strategy` instance, or a
        registry name resolved via ``make_strategy`` together with
        ``spend_rate`` / ``capacity``.
    period:
        The wall-clock round length Δ in seconds: every key accrues one
        token per period. The steady-state admission rate is ``1/period``
        per key; bursts are bounded by the strategy's capacity ``C``.
    spend_rate, capacity:
        Strategy parameters (``A``, ``C``) when ``strategy`` is a name.
    shards, max_keys:
        Account-table geometry; see :class:`repro.serve.table.ShardedTable`.
    clock:
        Zero-argument time source (default ``time.monotonic``); tests
        inject :class:`repro.serve.clock.ManualClock`.
    seed:
        Seeds the decision RNG (randomized rounding and the randomized
        strategy's proactive coin). One process-wide stream, as in a
        single simulated node.
    initial_tokens:
        Starting balance for new keys; ``None`` (default) starts full at
        the strategy's capacity, 0 reproduces the paper's cold start.

    Examples
    --------
    >>> from repro.serve import ManualClock, TokenAccountLimiter
    >>> clock = ManualClock()
    >>> limiter = TokenAccountLimiter("simple", capacity=2, period=1.0, clock=clock)
    >>> [bool(limiter.try_acquire("alice")) for _ in range(3)]
    [True, True, False]
    >>> _ = clock.advance(1.0)
    >>> bool(limiter.try_acquire("alice"))
    True
    """

    def __init__(
        self,
        strategy: Union[Strategy, str],
        *,
        period: float = 1.0,
        spend_rate: Optional[int] = None,
        capacity: Optional[int] = None,
        shards: int = 8,
        max_keys: int = 65536,
        clock: Clock = monotonic_clock,
        seed: Optional[int] = None,
        initial_tokens: Optional[int] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if isinstance(strategy, str):
            strategy = make_strategy(
                strategy, spend_rate=spend_rate, capacity=capacity
            )
        self.strategy = strategy
        self.period = float(period)
        cap = strategy.token_capacity
        if initial_tokens is None:
            initial_tokens = cap if cap is not None else 0
        if cap is not None and initial_tokens > cap:
            raise ValueError(
                f"initial_tokens {initial_tokens} exceeds the strategy's "
                f"token capacity {cap}"
            )
        self._initial_tokens = initial_tokens
        self._table = ShardedTable(shards=shards, max_keys=max_keys)
        self._clock = clock
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def _new_account(self) -> TokenAccount:
        """A fresh account for a newly seen (or LRU-recycled) key."""
        return TokenAccount(
            initial=self._initial_tokens,
            capacity=self.strategy.token_capacity,
            allow_overdraft=self.strategy.requires_overdraft,
        )

    def _advance(self, state: KeyState, now: float) -> None:
        """Credit every whole period elapsed since the key's anchor."""
        elapsed = now - state.anchor
        if elapsed <= 0:
            return
        ticks = int(elapsed / self.period + _TICK_EPSILON)
        if ticks <= 0:
            return
        state.anchor += ticks * self.period
        state.ticks_granted += ticks
        state.account.grant_many(ticks)

    def _retry_after(self, state: KeyState, now: float) -> float:
        """Seconds until the key's next admission opportunity."""
        if self.strategy.token_capacity == 0:
            # Capacity-0 strategies can only admit through the paced
            # proactive slot — ticks grant nothing (the clamp eats
            # them), so the tick grid must not shorten the hint.
            if state.last_proactive is not None:
                return max(0.0, state.last_proactive + self.period - now)
            return 0.0
        return max(0.0, state.anchor + self.period - now)

    # ------------------------------------------------------------------
    def try_acquire(
        self, key: str, useful: bool = True, now: Optional[float] = None
    ) -> Decision:
        """One admission decision for ``key``; never blocks.

        ``useful`` is the Algorithm-4 usefulness flag: pass ``False``
        for low-priority traffic and the generalized strategy spends
        tokens at half rate on it (the randomized strategy rejects it
        outright when not proactively due). ``now`` overrides the clock
        for this call (tests and replay).
        """
        if now is None:
            now = self._clock()
        shard = self._table.shard_for(key)
        with shard.lock:
            state = shard.get_or_create(key, self._new_account, now)
            self._advance(state, now)
            account = state.account
            verdict = self.strategy.admission_decision(
                account.balance, useful, self._rng
            )
            if verdict is not None:
                if account.balance >= 1 or account.allow_overdraft:
                    # Both branches spend a banked token when one exists:
                    # the proactive send consumes the round's token in the
                    # paper too (only the skipped round banks it).
                    account.withdraw(1)
                    shard.admitted += 1
                    return Decision(True, key, verdict, account.balance)
                if verdict == "proactive":
                    # Token-less proactive slot (capacity-0 strategies):
                    # at most one admission per period, the wall-clock
                    # form of "one proactive send per round".
                    last = state.last_proactive
                    if last is None or now - last >= self.period * (
                        1.0 - _TICK_EPSILON
                    ):
                        state.last_proactive = now
                        shard.admitted += 1
                        return Decision(True, key, "proactive", account.balance)
            shard.rejected += 1
            return Decision(
                False, key, "exhausted", account.balance, self._retry_after(state, now)
            )

    # ------------------------------------------------------------------
    @property
    def admitted(self) -> int:
        """Total admissions (summed over the per-shard counters)."""
        return self._table.admitted

    @property
    def rejected(self) -> int:
        """Total rejections (summed over the per-shard counters)."""
        return self._table.rejected

    def balance(self, key: str) -> Optional[int]:
        """The key's current banked balance, or ``None`` if unseen."""
        shard = self._table.shard_for(key)
        with shard.lock:
            state = shard.entries.get(key)
            return None if state is None else state.account.balance

    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> dict:
        """A JSON-ready snapshot of the limiter's aggregate counters."""
        return {
            "strategy": self.strategy.describe(),
            "period": self.period,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "keys": len(self._table),
            "evictions": self._table.evictions,
        }
