"""The admission server's line protocol, shared by server and clients.

One request per line, one response line per request, newline-delimited
ASCII — trivially batchable (a client may write many request lines in a
single segment and the server answers them in order, in one write):

=============================  ==========================================
request line                   response line
=============================  ==========================================
``A <key>``                    ``+ <reason> <balance>`` (admitted) or
``A <key> n``                  ``- <retry-after-seconds>`` (rejected)
``S``                          one-line JSON stats document
``P``                          ``P`` (liveness echo)
anything else                  ``! <error message>``
=============================  ==========================================

``A <key> n`` marks the request *not useful* (Algorithm 4's ``u`` flag);
the default is useful. Keys are any non-empty token without whitespace
or newlines, at most :data:`MAX_KEY_LENGTH` bytes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.serve.limiter import Decision

#: longest accepted key, in characters (one line must stay one MTU-ish)
MAX_KEY_LENGTH = 256


def encode_request(key: str, useful: bool = True) -> bytes:
    """One ``A`` request line for ``key`` (client side)."""
    return f"A {key}\n".encode() if useful else f"A {key} n\n".encode()


def parse_request(line: str) -> Tuple[str, Optional[str], bool]:
    """Parse one request line into ``(command, key, useful)``.

    ``command`` is ``"A"``, ``"S"`` or ``"P"``; malformed lines raise
    ``ValueError`` with the message the server echoes back after ``!``.
    """
    parts = line.split()
    if not parts:
        raise ValueError("empty request")
    command = parts[0]
    if command == "A":
        if len(parts) < 2:
            raise ValueError("A needs a key")
        key = parts[1]
        if len(key) > MAX_KEY_LENGTH:
            raise ValueError(f"key longer than {MAX_KEY_LENGTH}")
        useful = True
        if len(parts) >= 3:
            if parts[2] not in ("u", "n"):
                raise ValueError("usefulness flag must be 'u' or 'n'")
            useful = parts[2] == "u"
        return "A", key, useful
    if command in ("S", "P") and len(parts) == 1:
        return command, None, True
    raise ValueError(f"unknown command {command!r}")


def encode_decision(decision: Decision) -> bytes:
    """The response line for one admission decision (server side)."""
    if decision.admitted:
        return f"+ {decision.reason} {decision.balance}\n".encode()
    retry = decision.retry_after if decision.retry_after is not None else 0.0
    return f"- {retry:.6f}\n".encode()


def parse_response(line: str) -> Tuple[bool, str, float]:
    """Parse a response line into ``(admitted, reason, retry_after)``.

    ``reason`` is the admission branch (``"reactive"``/``"proactive"``)
    on admits and ``"exhausted"`` on rejects; ``retry_after`` is 0.0 on
    admits. Error lines (``!``) raise ``ValueError``.
    """
    parts = line.split()
    if not parts:
        raise ValueError("empty response")
    if parts[0] == "+":
        return True, parts[1] if len(parts) > 1 else "", 0.0
    if parts[0] == "-":
        return False, "exhausted", float(parts[1]) if len(parts) > 1 else 0.0
    raise ValueError(f"server error: {line.strip()}")
