"""The admission server's wire protocols, shared by server and clients.

Two protocols share one port, negotiated by the first byte of a
connection (see *Version negotiation* below).

Text protocol (v0)
------------------
One request per line, one response line per request, newline-delimited
ASCII — trivially batchable (a client may write many request lines in a
single segment and the server answers them in order, in one write):

=============================  ==========================================
request line                   response line
=============================  ==========================================
``A <key>``                    ``+ <reason> <balance>`` (admitted) or
``A <key> u``                  ``- <retry-after-seconds>`` (rejected)
``A <key> n``
``S``                          one-line JSON stats document
``P``                          ``P`` (liveness echo)
anything else                  ``! <error message>``
=============================  ==========================================

``A <key> n`` marks the request *not useful* (Algorithm 4's ``u``
flag); ``A <key> u`` marks it useful explicitly, which is also the
default for the bare two-token form. Keys are any non-empty token
without whitespace or newlines, at most :data:`MAX_KEY_LENGTH` bytes.

Binary protocol (v1)
--------------------
Length-prefixed little-endian frames, built for pipelining: a client
writes a run of request frames and the server answers with one response
frame per request, in order, flushed together. Every frame is::

    u16 length   -- payload byte count (length prefix excluded)
    payload      -- one message

Request payloads start with an opcode byte:

=====================  ==================================================
request payload        meaning
=====================  ==================================================
``ACQUIRE flags key``  one admission decision; ``flags`` bit 0 is the
                       usefulness flag, ``key`` is the UTF-8 key (the
                       rest of the payload)
``ACQUIRE_BULK ...``   a run of per-key admission groups (cluster
                       router → worker only; see *Bulk admission*)
``STATS``              JSON stats document
``PING``               liveness echo
=====================  ==================================================

Bulk admission (router → worker)
--------------------------------
The cluster router (:mod:`repro.serve.cluster`) already reorders
responses back into client order, so it is free to *group* a pipelined
batch by key before fanning it out. ``ACQUIRE_BULK`` carries those
groups compactly — the opcode byte followed by repeated group records::

    u16 keylen | u8 flags | keylen bytes of UTF-8 key | u16 count

and asks for ``count`` back-to-back admission decisions per group. The
worker answers **per group, in order** with either one ``RUN`` frame
(struct :data:`RUN_STRUCT`: status, reason code, u16 admits, u16
rejects, ``i32`` pre-spend balance, ``f64`` retry-after) meaning "the
first ``admits`` requests were admitted with balances ``balance-1 …
balance-admits``, the rest rejected at ``balance-admits`` with that
retry hint" — or, when the limiter's strategy cannot guarantee that
admit-prefix shape (randomized strategies), the group's ``count``
plain ``DECISION`` frames. Plain clients never speak this opcode; it
exists so a trusted aggregator can collapse per-request framing
without changing any per-key admission outcome.

Response payloads start with a status byte: ``DECISION`` responses are
a fixed 15-byte payload (struct ``<BBBid``: status, admitted, reason
code, ``i32`` balance, ``f64`` retry-after — 17 bytes on the wire with
the prefix, :data:`DECISION_FRAME_SIZE`), so a client can parse a
pipelined burst with one vectorized pass over a 17-byte stride.
``STATS`` carries the JSON document, ``ERROR`` a human-readable
message, ``PONG`` is empty.

Version negotiation
-------------------
A binary client opens with the 4-byte hello :data:`MAGIC`
(``ab 54 41 01``: a non-ASCII sentinel, ``"TA"``, version 1) and waits
for the server to echo it before pumping frames. No text command starts
with ``0xAB``, so the server sniffs the first byte of a connection:
``0xAB`` selects the binary path (a bad magic or unknown version gets a
text ``!`` line and a close), anything else is served as text. Text
clients keep working unchanged against a binary-capable server.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple, Union

from repro.serve.limiter import Decision

#: longest accepted key, in characters (one line must stay one MTU-ish)
MAX_KEY_LENGTH = 256

# ---------------------------------------------------------------------------
# binary protocol (v1) constants
# ---------------------------------------------------------------------------

#: binary hello: sentinel byte (never starts a text command), "TA", version
MAGIC = b"\xabTA\x01"

#: request opcodes (``OP_ACQUIRE_BULK`` is spoken only by the cluster
#: router; see *Bulk admission* in the module docstring)
OP_ACQUIRE = 1
OP_STATS = 2
OP_PING = 3
OP_ACQUIRE_BULK = 4

#: response status codes (``STATUS_RUN`` answers one bulk group)
STATUS_ERROR = 0
STATUS_DECISION = 1
STATUS_STATS = 2
STATUS_PONG = 3
STATUS_RUN = 4

#: ``ACQUIRE`` flags bit 0: Algorithm 4's usefulness flag
FLAG_USEFUL = 1

#: decision reason codes <-> the text protocol's reason words
REASON_NAMES: Tuple[Optional[str], ...] = (None, "reactive", "proactive", "exhausted")
REASON_CODES = {name: code for code, name in enumerate(REASON_NAMES) if name}

#: a whole decision response frame, length prefix included:
#: u16 length (=15), status, admitted, reason code, i32 balance, f64 retry
DECISION_STRUCT = struct.Struct("<HBBBid")
#: bytes per decision response on the wire (the client's parse stride)
DECISION_FRAME_SIZE = DECISION_STRUCT.size

#: a decision frame's payload alone (what :func:`split_frames` yields)
_DECISION_BODY = struct.Struct("<BBBid")

#: u16 length prefix + opcode + flags (an ACQUIRE request's fixed part)
ACQUIRE_HEADER = struct.Struct("<HBB")

#: one ``ACQUIRE_BULK`` group record's fixed head: u16 keylen, u8 flags
#: (the key bytes follow, then the u16 request count)
BULK_GROUP_HEAD = struct.Struct("<HB")
#: the group's trailing request count
BULK_GROUP_COUNT = struct.Struct("<H")

#: a whole ``RUN`` response frame, length prefix included: u16 length
#: (=18), status, reason code, u16 admits, u16 rejects, i32 pre-spend
#: balance, f64 retry-after for the rejected suffix
RUN_STRUCT = struct.Struct("<HBBHHid")
#: bytes per ``RUN`` response frame on the wire
RUN_FRAME_SIZE = RUN_STRUCT.size

#: hard ceiling on one frame's payload — fits the longest key in UTF-8
#: with generous slack, and bounds a malicious length prefix
MAX_FRAME = 4096

_LENGTH = struct.Struct("<H")


def encode_request(key: str, useful: bool = True) -> bytes:
    """One ``A`` request line for ``key`` (client side)."""
    return f"A {key}\n".encode() if useful else f"A {key} n\n".encode()


def parse_request(line: str) -> Tuple[str, Optional[str], bool]:
    """Parse one request line into ``(command, key, useful)``.

    ``command`` is ``"A"``, ``"S"`` or ``"P"``; malformed lines raise
    ``ValueError`` with the message the server echoes back after ``!``.
    """
    parts = line.split()
    if not parts:
        raise ValueError("empty request")
    command = parts[0]
    if command == "A":
        if len(parts) < 2:
            raise ValueError("A needs a key")
        key = parts[1]
        if len(key) > MAX_KEY_LENGTH:
            raise ValueError(f"key longer than {MAX_KEY_LENGTH}")
        useful = True
        if len(parts) >= 3:
            if parts[2] not in ("u", "n"):
                raise ValueError("usefulness flag must be 'u' or 'n'")
            useful = parts[2] == "u"
        return "A", key, useful
    if command in ("S", "P") and len(parts) == 1:
        return command, None, True
    raise ValueError(f"unknown command {command!r}")


def encode_decision(decision: Decision) -> bytes:
    """The text response line for one admission decision (server side)."""
    return decision.to_wire()


def parse_response(line: str) -> Tuple[bool, str, float]:
    """Parse a text response line into ``(admitted, reason, retry_after)``.

    ``reason`` is the admission branch (``"reactive"``/``"proactive"``)
    on admits and ``"exhausted"`` on rejects; ``retry_after`` is 0.0 on
    admits. Error lines (``!``) raise ``ValueError``.
    """
    decision = Decision.from_wire(line)
    retry = decision.retry_after if decision.retry_after is not None else 0.0
    return decision.admitted, decision.reason, retry


# ---------------------------------------------------------------------------
# binary protocol (v1) codec
# ---------------------------------------------------------------------------

def encode_request_binary(key: str, useful: bool = True) -> bytes:
    """One ``ACQUIRE`` request frame for ``key`` (client side)."""
    if len(key) > MAX_KEY_LENGTH:
        raise ValueError(f"key longer than {MAX_KEY_LENGTH}")
    raw = key.encode()
    return ACQUIRE_HEADER.pack(
        2 + len(raw), OP_ACQUIRE, FLAG_USEFUL if useful else 0
    ) + raw


def encode_command_binary(op: int) -> bytes:
    """A bare-opcode request frame (``OP_STATS`` / ``OP_PING``)."""
    return _LENGTH.pack(1) + bytes((op,))


def parse_request_binary(
    payload: Union[bytes, bytearray, memoryview],
) -> Tuple[str, Optional[str], bool]:
    """Parse one binary request payload into ``(command, key, useful)``.

    Same result shape as :func:`parse_request`, so the server dispatches
    both protocols through one code path. ``payload`` may be a
    ``memoryview`` into the connection's receive buffer — only the key
    bytes are copied (into the returned ``str``).
    """
    if not len(payload):
        raise ValueError("empty frame")
    op = payload[0]
    if op == OP_ACQUIRE:
        if len(payload) < 2:
            raise ValueError("ACQUIRE needs a flags byte and a key")
        key = bytes(payload[2:]).decode("utf-8", "replace")
        if not key:
            raise ValueError("ACQUIRE needs a key")
        if len(key) > MAX_KEY_LENGTH:
            raise ValueError(f"key longer than {MAX_KEY_LENGTH}")
        return "A", key, bool(payload[1] & FLAG_USEFUL)
    if op == OP_STATS and len(payload) == 1:
        return "S", None, True
    if op == OP_PING and len(payload) == 1:
        return "P", None, True
    raise ValueError(f"unknown opcode {op}")


def encode_decision_binary(decision: Decision) -> bytes:
    """One 17-byte ``DECISION`` response frame (server side)."""
    retry = decision.retry_after
    return DECISION_STRUCT.pack(
        DECISION_FRAME_SIZE - 2,
        STATUS_DECISION,
        1 if decision.admitted else 0,
        REASON_CODES.get(decision.reason, 0),
        decision.balance,
        retry if retry is not None else 0.0,
    )


def encode_decisions_binary(decisions) -> bytes:
    """A pipelined run of ``DECISION`` frames as one contiguous write.

    ``struct.pack_into`` over a preallocated buffer: the server answers
    a whole ``try_acquire_many`` batch with a single ``send``.
    """
    pack_into = DECISION_STRUCT.pack_into
    reason_codes = REASON_CODES
    body = DECISION_FRAME_SIZE - 2
    buf = bytearray(DECISION_FRAME_SIZE * len(decisions))
    offset = 0
    for decision in decisions:
        retry = decision.retry_after
        pack_into(
            buf,
            offset,
            body,
            STATUS_DECISION,
            1 if decision.admitted else 0,
            reason_codes.get(decision.reason, 0),
            decision.balance,
            retry if retry is not None else 0.0,
        )
        offset += DECISION_FRAME_SIZE
    return bytes(buf)


def encode_bulk_binary(groups) -> bytes:
    """One ``ACQUIRE_BULK`` request frame (cluster router side).

    ``groups`` is an iterable of ``(key_bytes, flags, count)`` records.
    The caller owns the :data:`MAX_FRAME` budget — split large batches
    across several bulk frames (group order is what carries semantics,
    not frame boundaries).
    """
    parts = [b"", bytes((OP_ACQUIRE_BULK,))]
    for raw, flags, count in groups:
        parts.append(BULK_GROUP_HEAD.pack(len(raw), flags))
        parts.append(raw)
        parts.append(BULK_GROUP_COUNT.pack(count))
    payload_len = sum(len(part) for part in parts)
    if payload_len > MAX_FRAME:
        raise ValueError(f"bulk frame payload {payload_len} exceeds {MAX_FRAME}")
    parts[0] = _LENGTH.pack(payload_len)
    return b"".join(parts)


def parse_bulk_binary(payload: Union[bytes, bytearray, memoryview]):
    """Parse an ``ACQUIRE_BULK`` payload into ``(key, useful, count)`` groups.

    ``payload`` excludes the length prefix but includes the opcode byte.
    Malformed records raise ``ValueError`` (the worker answers with an
    error frame and drops the link — only the router speaks this).
    """
    groups = []
    offset = 1  # past the opcode byte
    total = len(payload)
    head = BULK_GROUP_HEAD
    trailer = BULK_GROUP_COUNT
    while offset < total:
        if total - offset < head.size:
            raise ValueError("truncated bulk group head")
        keylen, flags = head.unpack_from(payload, offset)
        offset += head.size
        if keylen == 0 or total - offset < keylen + trailer.size:
            raise ValueError("truncated bulk group key")
        key = bytes(payload[offset : offset + keylen]).decode("utf-8", "replace")
        if len(key) > MAX_KEY_LENGTH:
            raise ValueError(f"key longer than {MAX_KEY_LENGTH}")
        offset += keylen
        (count,) = trailer.unpack_from(payload, offset)
        offset += trailer.size
        if count == 0:
            raise ValueError("bulk group with zero requests")
        groups.append((key, bool(flags & FLAG_USEFUL), count))
    if not groups:
        raise ValueError("empty bulk frame")
    return groups


def encode_run_binary(
    reason: str, admits: int, rejects: int, balance: int, retry: float
) -> bytes:
    """One ``RUN`` response frame for a bulk group (worker side).

    ``balance`` is the group's pre-spend balance: the ``admits``
    admitted requests drained it to ``balance - admits``, which is the
    balance every rejected request observed.
    """
    return RUN_STRUCT.pack(
        RUN_FRAME_SIZE - 2,
        STATUS_RUN,
        REASON_CODES.get(reason, 0),
        admits,
        rejects,
        balance,
        retry,
    )


def encode_status_binary(status: int, body: bytes = b"") -> bytes:
    """A generic response frame (``STATS`` / ``ERROR`` / ``PONG``)."""
    return _LENGTH.pack(1 + len(body)) + bytes((status,)) + body


def decode_response_binary(
    payload: Union[bytes, bytearray, memoryview], key: str = ""
) -> Tuple[int, object]:
    """Decode one binary response payload into ``(status, value)``.

    ``value`` is a :class:`~repro.serve.limiter.Decision` for
    ``STATUS_DECISION`` (the wire does not carry the key; the caller
    supplies it, matching responses to requests by order), the raw JSON
    bytes for ``STATUS_STATS``, ``None`` for ``STATUS_PONG``. An
    ``STATUS_ERROR`` frame raises ``ValueError`` with the message.
    """
    if not len(payload):
        raise ValueError("empty frame")
    status = payload[0]
    if status == STATUS_DECISION:
        if len(payload) != _DECISION_BODY.size:
            raise ValueError(f"bad decision frame length {len(payload)}")
        _, admitted, reason, balance, retry = _DECISION_BODY.unpack(payload)
        name = (
            REASON_NAMES[reason]
            if reason < len(REASON_NAMES) and REASON_NAMES[reason]
            else "exhausted"
        )
        return status, Decision(
            bool(admitted), key, name, balance, None if admitted else retry
        )
    if status == STATUS_STATS:
        return status, bytes(payload[1:])
    if status == STATUS_PONG:
        return status, None
    if status == STATUS_ERROR:
        raise ValueError(
            "server error: " + bytes(payload[1:]).decode("utf-8", "replace")
        )
    raise ValueError(f"unknown status {status}")


def split_frames(buffer: bytearray, max_frame: int = MAX_FRAME):
    """Split complete length-prefixed frames off the front of ``buffer``.

    Returns ``(payloads, consumed)`` where ``payloads`` are *copies* of
    each complete frame's payload and ``consumed`` is the byte count to
    discard from the buffer's front (``del buffer[:consumed]``). A
    length prefix exceeding ``max_frame`` raises ``ValueError`` — the
    caller should drop the connection. Incremental: trailing partial
    frames stay in the buffer for the next read.
    """
    payloads = []
    offset = 0
    available = len(buffer)
    while available - offset >= 2:
        length = buffer[offset] | (buffer[offset + 1] << 8)
        if length > max_frame:
            raise ValueError(f"frame length {length} exceeds {max_frame}")
        if available - offset - 2 < length:
            break
        payloads.append(bytes(buffer[offset + 2:offset + 2 + length]))
        offset += 2 + length
    return payloads, offset
