"""The live-serving layer: token account algorithms as admission control.

Everything below this package runs against *wall-clock* time — the
bridge from reproducing the paper to serving real traffic with it:

* :mod:`repro.serve.limiter` — :class:`TokenAccountLimiter`, the
  embeddable thread-safe admission primitive (per-key token accounts,
  every registered strategy, §3.4 burst bound intact);
* :mod:`repro.serve.table` — the sharded LRU account table behind it;
* :mod:`repro.serve.clock` — injectable time sources
  (:class:`ManualClock` for deterministic tests);
* :mod:`repro.serve.wire` + :mod:`repro.serve.server` — the batched
  asyncio TCP admission server (``repro serve``), speaking both the
  text line protocol and the length-prefixed binary framing on one
  port (first-byte version negotiation);
* :mod:`repro.serve.ring` + :mod:`repro.serve.cluster` — the stable
  consistent-hash ring and the multi-process limiter cluster
  (``repro serve --workers N``): worker processes behind a binary
  front-end router, one key owner per key, minimal remap on failure;
* :mod:`repro.serve.arrivals` + :mod:`repro.serve.loadgen` — the
  open-loop Poisson / flash-crowd load generator (``repro loadgen``),
  speaking either protocol with optional pipelining;
* :mod:`repro.serve.event_loop` — optional uvloop installation with
  graceful fallback (``--uvloop``).
"""

from repro.serve.clock import Clock, ManualClock, monotonic_clock
from repro.serve.cluster import ClusterConfig, ClusterRouter, serve_cluster
from repro.serve.event_loop import install_event_loop
from repro.serve.limiter import Decision, TokenAccountLimiter
from repro.serve.loadgen import LoadgenReport, fetch_stats, run_loadgen
from repro.serve.ring import HashRing, stable_hash
from repro.serve.server import AdmissionServer, run_server
from repro.serve.table import ShardedTable

__all__ = [
    "AdmissionServer",
    "Clock",
    "ClusterConfig",
    "ClusterRouter",
    "Decision",
    "HashRing",
    "LoadgenReport",
    "ManualClock",
    "ShardedTable",
    "TokenAccountLimiter",
    "fetch_stats",
    "install_event_loop",
    "monotonic_clock",
    "run_loadgen",
    "run_server",
    "serve_cluster",
    "stable_hash",
]
