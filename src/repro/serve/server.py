"""The asyncio TCP admission server (``repro serve``).

One :class:`~repro.serve.limiter.TokenAccountLimiter` shared by every
connection — the sharded account table is the synchronization point, so
the asyncio event loop and any worker threads see one consistent token
state per key.

Each connection speaks either wire protocol (see
:mod:`repro.serve.wire`): the first byte decides. ``0xAB`` — the
binary hello's sentinel, which no text command starts with — selects
the length-prefixed binary framing; anything else is served as
newline-delimited text, so existing text clients keep working
unchanged.

The hot path is batch-oriented in both modes: the connection protocol
answers *every* complete request in the received chunk and flushes all
responses with a single write. On the binary path a run of consecutive
``ACQUIRE`` frames is decided by **one**
:meth:`~repro.serve.limiter.TokenAccountLimiter.try_acquire_many`
call (a ``STATS``/``PING`` frame is the only flush barrier), and the
response run is packed into one contiguous buffer — so a pipelining
client like :mod:`repro.serve.loadgen` amortizes syscall, parse *and*
per-decision lock cost over its pipeline depth. Receive parsing is
zero-copy: bytes land in a reusable buffer via ``readinto``
(:class:`asyncio.BufferedProtocol`) and frames are parsed through
``memoryview`` slices of it.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Optional, Set

from repro.serve import wire
from repro.serve.limiter import TokenAccountLimiter

#: refuse absurd text lines early (a client speaking the wrong protocol)
_MAX_LINE = 4096

#: per-connection receive buffer; parsed residue is always smaller than
#: one frame/line (< 4 KiB), so this never needs to grow
_RECV_BUFFER = 2**16


class _AdmissionProtocol(asyncio.BufferedProtocol):
    """One connection: sniff the protocol version, then serve batches.

    ``BufferedProtocol`` hands the socket a ``memoryview`` into our
    reusable receive buffer (``readinto`` under the hood — no per-chunk
    bytes object), and parsing walks the same buffer through views.
    ``_start``/``_end`` delimit the unparsed region; it is compacted to
    the front once consumed.
    """

    def __init__(self, server: "AdmissionServer"):
        self.server = server
        self.limiter = server.limiter
        self.transport: Optional[asyncio.Transport] = None
        #: None while sniffing the first byte, then "text" or "binary"
        self.mode: Optional[str] = None
        self._buffer = bytearray(_RECV_BUFFER)
        self._view = memoryview(self._buffer)
        self._start = 0
        self._end = 0

    # ------------------------------------------------------------------
    def connection_made(self, transport) -> None:
        self.server.connections += 1
        self.server._protocols.add(self)
        self.transport = transport

    def connection_lost(self, exc) -> None:
        self.server.connections -= 1
        self.server._protocols.discard(self)

    # Tie the socket's read side to its write side: when the client
    # stops draining responses, stop accepting more requests instead of
    # buffering unboundedly.
    def pause_writing(self) -> None:
        if self.transport is not None:
            self.transport.pause_reading()

    def resume_writing(self) -> None:
        if self.transport is not None:
            self.transport.resume_reading()

    # ------------------------------------------------------------------
    def get_buffer(self, sizehint: int) -> memoryview:
        if self._start and self._start == self._end:
            self._start = self._end = 0
        elif len(self._buffer) - self._end < 2048 and self._start:
            # Compact the unparsed residue (< one frame/line) to the
            # front; slice assignment, the buffer is never resized.
            remaining = self._end - self._start
            self._buffer[:remaining] = self._buffer[self._start : self._end]
            self._start, self._end = 0, remaining
        return self._view[self._end :]

    def buffer_updated(self, nbytes: int) -> None:
        self._end += nbytes
        if self.mode is None and not self._sniff():
            return
        if self.mode == "binary":
            self._drain_binary()
        else:
            self._drain_text()

    # ------------------------------------------------------------------
    def _sniff(self) -> bool:
        """Pick the protocol from the first byte; True once decided."""
        assert self.transport is not None
        if self._buffer[self._start] != wire.MAGIC[0]:
            self.mode = "text"
            return True
        if self._end - self._start < len(wire.MAGIC):
            return False  # wait for the whole hello
        hello = bytes(self._view[self._start : self._start + len(wire.MAGIC)])
        if hello != wire.MAGIC:
            # Future (or corrupt) version: answer in text, which every
            # client can at least log, and drop the connection.
            self.transport.write(b"! unsupported binary protocol version\n")
            self.transport.close()
            return False
        self.mode = "binary"
        self._start += len(wire.MAGIC)
        self.transport.write(wire.MAGIC)  # hello ack
        return True

    # ------------------------------------------------------------------
    def _drain_text(self) -> None:
        """Answer every complete line in the buffer with one write."""
        assert self.transport is not None
        last = self._buffer.rfind(b"\n", self._start, self._end)
        if last < 0:
            if self._end - self._start > _MAX_LINE:
                self.transport.write(b"! line too long\n")
                self.transport.close()
            return
        lines = bytes(self._view[self._start : last])
        self._start = last + 1
        responses = [
            self._respond(text)
            for raw in lines.split(b"\n")
            # Blank lines (keep-alives, trailing \r\n) get no reply.
            if (text := raw.decode("ascii", "replace").strip())
        ]
        if responses:
            self.transport.write(b"".join(responses))

    def _respond(self, line: str) -> bytes:
        """One response line for one request line (the text inner loop)."""
        try:
            command, key, useful = wire.parse_request(line)
        except ValueError as error:
            return f"! {error}\n".encode()
        if command == "A":
            assert key is not None
            return wire.encode_decision(self.limiter.try_acquire(key, useful))
        if command == "S":
            return self._stats_json() + b"\n"
        return b"P\n"  # liveness echo

    # ------------------------------------------------------------------
    def _drain_binary(self) -> None:
        """Answer every complete frame in the buffer with one write.

        Consecutive ``ACQUIRE`` frames become one
        ``try_acquire_many`` batch answered by one packed response run;
        ``STATS``/``PING``/malformed frames are the flush barriers.
        """
        assert self.transport is not None
        buffer = self._buffer
        start = self._start
        end = self._end
        view = self._view
        parse = wire.parse_request_binary
        out: List[bytes] = []
        run_keys: List[str] = []
        run_flags: List[bool] = []
        keys_append = run_keys.append
        flags_append = run_flags.append
        oversized = False
        acquire_op = wire.OP_ACQUIRE
        bulk_op = wire.OP_ACQUIRE_BULK
        useful_flag = wire.FLAG_USEFUL
        key_limit = 2 + wire.MAX_KEY_LENGTH
        while end - start >= 2:
            length = buffer[start] | (buffer[start + 1] << 8)
            if length > wire.MAX_FRAME:
                oversized = True
                break
            frame_end = start + 2 + length
            if frame_end > end:
                break
            # ACQUIRE frames dominate a pipelined stream: decode them
            # inline (opcode + flags + utf-8 key, same semantics as
            # parse_request_binary) and let everything else take the
            # generic parser below.
            if (
                2 < length <= key_limit
                and buffer[start + 2] == acquire_op
            ):
                keys_append(str(view[start + 4 : frame_end], "utf-8", "replace"))
                flags_append(bool(buffer[start + 3] & useful_flag))
                start = frame_end
                continue
            if length >= 7 and buffer[start + 2] == bulk_op:
                # Cluster router bulk fan-in: a barrier like STATS (the
                # router's per-link FIFO counts on response order).
                payload = view[start + 2 : frame_end]
                start = frame_end
                self._flush_acquires(run_keys, run_flags, out)
                try:
                    self._respond_bulk(payload, out)
                except ValueError as error:
                    out.append(
                        wire.encode_status_binary(
                            wire.STATUS_ERROR, str(error).encode()
                        )
                    )
                continue
            payload = view[start + 2 : frame_end]
            start = frame_end
            try:
                command, key, useful = parse(payload)
            except ValueError as error:
                self._flush_acquires(run_keys, run_flags, out)
                out.append(
                    wire.encode_status_binary(
                        wire.STATUS_ERROR, str(error).encode()
                    )
                )
                continue
            if command == "A":
                assert key is not None
                run_keys.append(key)
                run_flags.append(useful)
            elif command == "S":
                self._flush_acquires(run_keys, run_flags, out)
                out.append(
                    wire.encode_status_binary(wire.STATUS_STATS, self._stats_json())
                )
            else:
                self._flush_acquires(run_keys, run_flags, out)
                out.append(wire.encode_status_binary(wire.STATUS_PONG))
        self._flush_acquires(run_keys, run_flags, out)
        self._start = start
        if oversized:
            out.append(
                wire.encode_status_binary(
                    wire.STATUS_ERROR,
                    b"frame exceeds %d bytes" % wire.MAX_FRAME,
                )
            )
            self.transport.write(b"".join(out))
            self.transport.close()  # cannot resync after a bad prefix
            return
        if out:
            self.transport.write(b"".join(out) if len(out) > 1 else out[0])

    def _flush_acquires(
        self, keys: List[str], flags: List[bool], out: List[bytes]
    ) -> None:
        """Decide a pending ``ACQUIRE`` run in one batched call."""
        if not keys:
            return
        useful = True if all(flags) else list(flags)
        decisions = self.limiter.try_acquire_many(keys, useful)
        out.append(wire.encode_decisions_binary(decisions))
        keys.clear()
        flags.clear()

    def _respond_bulk(self, payload, out: List[bytes]) -> None:
        """Answer one ``ACQUIRE_BULK`` frame, one response per group.

        Each group gets a closed-form ``RUN`` frame when the strategy
        qualifies, or its ``count`` plain ``DECISION`` frames through
        the exact generic batch path otherwise. One clock read covers
        the whole frame — the same single-timestamp semantics a run of
        plain ``ACQUIRE`` frames gets from ``try_acquire_many``.
        """
        groups = wire.parse_bulk_binary(payload)
        limiter = self.limiter
        now = limiter._clock()
        run = limiter.try_acquire_run
        for key, useful, count in groups:
            result = run(key, count, useful, now=now)
            if result is not None:
                admits, rejects, balance, reason, retry = result
                out.append(
                    wire.encode_run_binary(reason, admits, rejects, balance, retry)
                )
            else:
                decisions = limiter.try_acquire_many([key] * count, useful, now=now)
                out.append(wire.encode_decisions_binary(decisions))

    # ------------------------------------------------------------------
    def _stats_json(self) -> bytes:
        stats = dict(self.limiter.stats(), connections=self.server.connections)
        return json.dumps(stats, sort_keys=True).encode()


class AdmissionServer:
    """A TCP admission-control server around one shared limiter.

    Parameters
    ----------
    limiter:
        The shared admission primitive.
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`port` after :meth:`start` — this is how the loopback
        tests avoid port races).
    """

    def __init__(
        self, limiter: TokenAccountLimiter, host: str = "127.0.0.1", port: int = 0
    ):
        self.limiter = limiter
        self.host = host
        self.port = port
        self.connections = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._protocols: Set[_AdmissionProtocol] = set()

    # ------------------------------------------------------------------
    async def start(self) -> "AdmissionServer":
        """Bind and start accepting connections; resolves :attr:`port`."""
        loop = asyncio.get_running_loop()
        self._server = await loop.create_server(
            lambda: _AdmissionProtocol(self), self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` foreground path)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain in-flight responses, close every transport.

        A pipelined client can have kilobytes of DECISION frames sitting
        in a transport's write buffer when the server shuts down;
        ``transport.close()`` alone schedules an asynchronous flush that
        dies with the event loop (``asyncio.run`` tears the loop down
        immediately after the coroutine returns), silently truncating
        the final response batch. So: stop reading (no new decisions),
        then wait — up to ``drain_timeout`` seconds — for every
        connection's write buffer to reach the socket, then close.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        protocols = list(self._protocols)
        transports = []
        for protocol in protocols:
            transport = protocol.transport
            if transport is None or transport.is_closing():
                continue
            # Freeze the request side first so the set of owed responses
            # stops growing; pause_reading() is idempotent.
            transport.pause_reading()
            transports.append(transport)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        pending = transports
        while pending:
            pending = [
                transport
                for transport in pending
                if not transport.is_closing()
                and transport.get_write_buffer_size() > 0
            ]
            if not pending or loop.time() >= deadline:
                break
            await asyncio.sleep(0.01)
        for transport in transports:
            transport.close()


async def run_server(
    limiter: TokenAccountLimiter,
    host: str = "127.0.0.1",
    port: int = 0,
    duration: Optional[float] = None,
    announce=print,
) -> TokenAccountLimiter:
    """Start a server and run it for ``duration`` seconds (forever if ``None``).

    The ``repro serve`` entry point: announces the bound address via
    ``announce`` (so scripts can scrape the port when asking for port 0)
    and returns the limiter for a final stats line.
    """
    server = await AdmissionServer(limiter, host, port).start()
    announce(
        f"serving {limiter.strategy.describe()} admission control on "
        f"{host}:{server.port} (period {limiter.period}s)"
    )
    try:
        if duration is None:
            await server.serve_forever()
        else:
            await asyncio.sleep(duration)
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
    return limiter
