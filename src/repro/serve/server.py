"""The asyncio TCP admission server (``repro serve``).

One :class:`~repro.serve.limiter.TokenAccountLimiter` shared by every
connection — the sharded account table is the synchronization point, so
the asyncio event loop and any worker threads see one consistent token
state per key.

The hot path is batch-oriented: the reader drains whatever bytes are
available, answers *every* complete request line in that chunk, and
flushes all responses with a single ``write`` + ``drain``. A pipelining
client (like :mod:`repro.serve.loadgen`) therefore amortizes the
per-syscall and per-drain cost over its batch depth, which is where the
decisions/sec headline comes from.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.serve import wire
from repro.serve.limiter import TokenAccountLimiter

#: refuse absurd lines early (a client speaking the wrong protocol)
_MAX_LINE = 4096


class AdmissionServer:
    """A TCP admission-control server around one shared limiter.

    Parameters
    ----------
    limiter:
        The shared admission primitive.
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`port` after :meth:`start` — this is how the loopback
        tests avoid port races).
    """

    def __init__(
        self, limiter: TokenAccountLimiter, host: str = "127.0.0.1", port: int = 0
    ):
        self.limiter = limiter
        self.host = host
        self.port = port
        self.connections = 0
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self) -> "AdmissionServer":
        """Bind and start accepting connections; resolves :attr:`port`."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=2**16
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` foreground path)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    def _respond(self, line: str) -> bytes:
        """One response line for one request line (the batch inner loop)."""
        try:
            command, key, useful = wire.parse_request(line)
        except ValueError as error:
            return f"! {error}\n".encode()
        if command == "A":
            assert key is not None
            return wire.encode_decision(self.limiter.try_acquire(key, useful))
        if command == "S":
            stats = dict(self.limiter.stats(), connections=self.connections)
            return (json.dumps(stats, sort_keys=True) + "\n").encode()
        return b"P\n"  # liveness echo

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Per-connection loop: drain available lines, answer in one write."""
        self.connections += 1
        buffer = b""
        try:
            while True:
                chunk = await reader.read(2**16)
                if not chunk:
                    break
                buffer += chunk
                if b"\n" not in buffer:
                    if len(buffer) > _MAX_LINE:
                        writer.write(b"! line too long\n")
                        break
                    continue
                lines, _, buffer = buffer.rpartition(b"\n")
                responses = [
                    self._respond(text)
                    for raw in lines.split(b"\n")
                    # Blank lines (keep-alives, trailing \r\n) get no reply.
                    if (text := raw.decode("ascii", "replace").strip())
                ]
                if responses:
                    writer.write(b"".join(responses))
                    await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # client vanished mid-batch: nothing to answer
        finally:
            self.connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def run_server(
    limiter: TokenAccountLimiter,
    host: str = "127.0.0.1",
    port: int = 0,
    duration: Optional[float] = None,
    announce=print,
) -> TokenAccountLimiter:
    """Start a server and run it for ``duration`` seconds (forever if ``None``).

    The ``repro serve`` entry point: announces the bound address via
    ``announce`` (so scripts can scrape the port when asking for port 0)
    and returns the limiter for a final stats line.
    """
    server = await AdmissionServer(limiter, host, port).start()
    announce(
        f"serving {limiter.strategy.describe()} admission control on "
        f"{host}:{server.port} (period {limiter.period}s)"
    )
    try:
        if duration is None:
            await server.serve_forever()
        else:
            await asyncio.sleep(duration)
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
    return limiter
