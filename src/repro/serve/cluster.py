"""The multi-process limiter cluster (``repro serve --workers N``).

One asyncio admission server is GIL-bound: the serving bench shows a
single process topping out near 140k binary decisions/s while the other
cores idle. The cluster shape fixes that without touching the limiter:
``N`` **worker processes** each run the existing
:class:`~repro.serve.server.AdmissionServer` on a private socket, and a
front-end **router** process owns the public port, speaking the binary
wire protocol (:mod:`repro.serve.wire`) on both sides.

Key ownership
-------------
The router maps every ACQUIRE key to exactly one worker with a
:class:`~repro.serve.ring.HashRing` over
:func:`~repro.serve.ring.stable_hash` — the same seeded, restart-stable
hash the in-process shard table routes with. One owner per key means
each key's token account lives in exactly one worker's table, so the
paper's §3.4 burst bound (≤ ``⌈t/Δ⌉ + C`` admissions per key in any
window ``t``) holds cluster-wide exactly as it does in one process.

Data path
---------
Per client connection the router opens one binary connection to every
worker, so each worker answers *this client's* requests strictly FIFO.
A drained client chunk becomes one **batch**: validated ACQUIRE frames
are grouped by verbatim frame bytes (= one group per key+flags),
positions remembered, and each worker receives its groups as compact
``ACQUIRE_BULK`` records — ``count`` requests for ``key`` collapse to
one ~``5+len(key)``-byte record instead of ``count`` relayed frames,
and the worker answers with one 20-byte ``RUN`` frame per group
(closed-form admit-prefix for deterministic strategies; plain DECISION
frames otherwise — see *Bulk admission* in :mod:`repro.serve.wire`).
A responder task reassembles client order: it expands each ``RUN``
into its 17-byte DECISION frames numerically (a NumPy balance
countdown for admits, bytes repetition for rejects) and scatters the
records into request order with a fancy-index over a ``V17`` record
view. Routing is memoized frame-bytes → (worker, bulk-record prefix)
in a bounded dict, so the per-frame hot path is one dict hit.

``STATS`` is a flush barrier: the router forwards it to every live
worker on the same connections (preserving FIFO alignment), sums the
per-worker counters and answers one aggregated document with cluster
fields (``workers``, ``remaps``, router ``connections``) added.
``PING`` is answered locally. The router speaks binary only — a text
client gets one explanatory error line and a close.

Failure remap
-------------
Worker death is detected two ways: a supervisor polls the child
processes, and any failed read on a worker link reports the worker
immediately. Either path removes the member from the ring — which
remaps *only that worker's arcs* (~``1/W`` of the key space) and never
moves a key between survivors — bumps the ``remaps`` counter and drops
the route memo. Requests already in flight to the dead worker are
answered with synthesized REJECT frames (clients see backpressure, not
a protocol error); remapped keys start fresh accounts on their new
owner, the same contract as LRU eviction. Run workers with
``--cold-start`` to keep the burst bound airtight across a remap (a
fresh account then starts empty instead of full).
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import struct
import subprocess
import sys
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.serve import wire
from repro.serve.limiter import Decision
from repro.serve.ring import HashRing

#: route memo budget (frame bytes -> (worker, bulk-record prefix)),
#: dropped whole when full or on any ring change
_ROUTE_CACHE_MAX = 65536

#: per-connection receive buffer — larger than the worker server's so a
#: backlogged pipelined client drains in fewer, bigger routed batches
_RECV_BUFFER = 2**16

#: client-side backpressure: pause reading above, resume below
_PAUSE_OUTSTANDING = 32768
_RESUME_OUTSTANDING = 8192

#: worker links carry up to ~64k pipelined 17-byte decisions per read
_LINK_READ_LIMIT = 2**20

#: a worker DECISION run viewed as opaque 17-byte records (reordering
#: permutes whole frames; nothing inside them needs decoding)
_DECISION_RECORD = np.dtype((np.void, wire.DECISION_FRAME_SIZE))

#: the same 17 bytes with named fields, for synthesizing admit frames
#: from a RUN response (packed little-endian layout, no padding)
_DECISION_FIELDS = np.dtype(
    [
        ("len", "<u2"),
        ("status", "u1"),
        ("admitted", "u1"),
        ("reason", "u1"),
        ("balance", "<i4"),
        ("retry", "<f8"),
    ]
)
assert _DECISION_FIELDS.itemsize == wire.DECISION_FRAME_SIZE

#: a RUN frame's tail after the 3-byte (length, status) header:
#: reason, u16 admits, u16 rejects, i32 balance, f64 retry
_RUN_TAIL = struct.Struct("<BHHid")

_U16 = struct.Struct("<H")
_BULK_OP = bytes((wire.OP_ACQUIRE_BULK,))
_REASON_EXHAUSTED = wire.REASON_CODES["exhausted"]

#: the reject frame synthesized for requests lost to a dead worker
_SYNTH_REJECT = wire.encode_decision_binary(
    Decision(False, "", "exhausted", 0, 0.0)
)

#: scrapes the port from a worker's (or the router's) announce line
_ANNOUNCE = re.compile(r"on [0-9.]+:(\d+)")


def _pack_bulk_frames(records: List[bytes]) -> bytes:
    """Join bulk group records into ``ACQUIRE_BULK`` frames.

    Records are packed greedily into as few frames as fit under
    :data:`wire.MAX_FRAME`; a validated record is at most ~1 KiB
    (``5 + len(key bytes)``), so any record fits some frame.
    """
    frames: List[bytes] = []
    chunk: List[bytes] = []
    size = 1  # the opcode byte
    for record in records:
        if size + len(record) > wire.MAX_FRAME and chunk:
            frames.append(_U16.pack(size) + _BULK_OP + b"".join(chunk))
            chunk = []
            size = 1
        chunk.append(record)
        size += len(record)
    frames.append(_U16.pack(size) + _BULK_OP + b"".join(chunk))
    return b"".join(frames)


def _expand_run(
    reason: int, admits: int, rejects: int, balance: int, retry: float
) -> bytes:
    """Expand one RUN frame into the DECISION frames the client expects.

    The run is an admit-prefix walk from a pre-spend ``balance``: the
    first ``admits`` requests are admitted at balances ``balance-1`` …
    ``balance-admits`` (retry 0), the remaining ``rejects`` are all
    identical rejects at the leftover balance — exactly what the worker
    would have answered to ``admits + rejects`` sequential ACQUIREs.
    """
    parts: List[bytes] = []
    if admits:
        frames = np.zeros(admits, dtype=_DECISION_FIELDS)
        frames["len"] = wire.DECISION_FRAME_SIZE - 2
        frames["status"] = wire.STATUS_DECISION
        frames["admitted"] = 1
        frames["reason"] = reason
        frames["balance"] = np.arange(
            balance - 1, balance - 1 - admits, -1, dtype=np.int32
        )
        parts.append(frames.tobytes())
    if rejects:
        reject = wire.DECISION_STRUCT.pack(
            wire.DECISION_FRAME_SIZE - 2,
            wire.STATUS_DECISION,
            0,
            _REASON_EXHAUSTED,
            balance - admits,
            retry,
        )
        parts.append(reject if rejects == 1 else reject * rejects)
    return parts[0] if len(parts) == 1 else b"".join(parts)


class _WorkerLink:
    """One client connection's private link to one worker."""

    __slots__ = ("reader", "writer", "dead")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.dead = False


class _RouterConnection(asyncio.BufferedProtocol):
    """One client connection through the router.

    Same reusable-receive-buffer discipline as the worker server's
    protocol; the drain *routes* frames instead of deciding them, and a
    responder task writes the reordered replies.
    """

    def __init__(self, router: "ClusterRouter"):
        self.router = router
        self.transport: Optional[asyncio.Transport] = None
        self.mode: Optional[str] = None
        self._buffer = bytearray(_RECV_BUFFER)
        self._view = memoryview(self._buffer)
        self._start = 0
        self._end = 0
        #: worker name -> this connection's link (built by _setup)
        self._links: Dict[str, _WorkerLink] = {}
        self._queue: "asyncio.Queue[tuple]" = asyncio.Queue()
        self._outstanding = 0
        self._paused = False
        self._ready = False
        self._setup_task: Optional[asyncio.Task] = None
        self._responder: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    def connection_made(self, transport) -> None:
        self.router.connections += 1
        self.router._protocols.add(self)
        self.transport = transport

    def connection_lost(self, exc) -> None:
        self.router.connections -= 1
        self.router._protocols.discard(self)
        self.transport = None
        for task in (self._setup_task, self._responder):
            if task is not None and not task.done():
                task.cancel()
        self._close_links()

    def _close_links(self) -> None:
        for link in self._links.values():
            try:
                link.writer.close()
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._links.clear()

    # Tie the client's read side to its write side, like the server.
    def pause_writing(self) -> None:
        if self.transport is not None:
            self.transport.pause_reading()

    def resume_writing(self) -> None:
        if self.transport is not None:
            self.transport.resume_reading()

    # ------------------------------------------------------------------
    def get_buffer(self, sizehint: int) -> memoryview:
        if self._start and self._start == self._end:
            self._start = self._end = 0
        elif len(self._buffer) - self._end < 2048 and self._start:
            remaining = self._end - self._start
            self._buffer[:remaining] = self._buffer[self._start : self._end]
            self._start, self._end = 0, remaining
        return self._view[self._end :]

    def buffer_updated(self, nbytes: int) -> None:
        self._end += nbytes
        if self.mode is None and not self._sniff():
            return
        if self._ready:
            self._drain_binary()

    # ------------------------------------------------------------------
    def _sniff(self) -> bool:
        """Require the binary hello; refuse text clients with one line."""
        assert self.transport is not None
        if self._buffer[self._start] != wire.MAGIC[0]:
            self.transport.write(
                b"! the cluster router speaks the binary protocol only\n"
            )
            self.transport.close()
            return False
        if self._end - self._start < len(wire.MAGIC):
            return False  # wait for the whole hello
        hello = bytes(self._view[self._start : self._start + len(wire.MAGIC)])
        if hello != wire.MAGIC:
            self.transport.write(b"! unsupported binary protocol version\n")
            self.transport.close()
            return False
        self.mode = "binary"
        self._start += len(wire.MAGIC)
        # The hello is NOT acked yet: first bring up this connection's
        # worker links, then ack, so a client that waits for the echo
        # (they all should) never races the fan-out setup.
        self._setup_task = asyncio.get_running_loop().create_task(self._setup())
        return True

    async def _setup(self) -> None:
        """Open this connection's private link to every live worker."""
        for name, (host, port) in list(self.router._workers.items()):
            try:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=_LINK_READ_LIMIT
                )
                writer.write(wire.MAGIC)
                ack = await reader.readexactly(len(wire.MAGIC))
                if ack != wire.MAGIC:
                    raise ConnectionError("bad worker hello")
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                self.router.worker_failed(name)
                continue
            self._links[name] = _WorkerLink(reader, writer)
        if self.transport is None:  # client left during setup
            self._close_links()
            return
        self.transport.write(wire.MAGIC)  # hello ack: ready for frames
        self._ready = True
        self._responder = asyncio.get_running_loop().create_task(self._respond())
        self._drain_binary()  # frames that arrived while setting up

    # ------------------------------------------------------------------
    def _route_frame(self, frame: bytes) -> Optional[Tuple[str, bytes]]:
        """Validate and route one ACQUIRE frame (the route-memo miss path).

        The memo is keyed by the *whole verbatim frame* — one bytes
        copy per frame serves dedup, routing and bulk encoding. The
        cached entry is ``(worker, record_prefix)`` where the prefix is
        the frame's ready-made bulk group record minus the trailing
        count (distinct flag bytes for one key cost one extra memo
        entry each; only the key bytes feed the ring hash). Returns
        ``None`` — uncached — when every worker is gone.
        """
        raw = frame[4:]
        key = raw.decode("utf-8", "replace")
        if not key:
            raise ValueError("ACQUIRE needs a key")
        if len(key) > wire.MAX_KEY_LENGTH:
            raise ValueError(f"key longer than {wire.MAX_KEY_LENGTH}")
        name = self.router._route(key)
        if name is None:
            return None
        entry = (
            name,
            wire.BULK_GROUP_HEAD.pack(len(raw), frame[3]) + raw,
        )
        cache = self.router._route_cache
        if len(cache) >= _ROUTE_CACHE_MAX:
            cache.clear()
        cache[frame] = entry
        return entry

    def _drain_binary(self) -> None:
        """Route every complete frame in the buffer (the request hot loop).

        Consecutive validated ACQUIRE frames form one batch, grouped by
        verbatim frame bytes (= by key+flags, preserving per-key order);
        a flush turns the groups into per-worker ``ACQUIRE_BULK``
        frames and enqueues the scatter plan for the responder.
        ``STATS``/``PING``/malformed frames are batch barriers,
        enqueued in order behind the batches.
        """
        assert self.transport is not None
        buffer = self._buffer
        view = self._view
        start = self._start
        end = self._end
        links = self._links
        route = self.router._route_cache
        queue_put = self._queue.put_nowait
        #: verbatim ACQUIRE frame -> this batch's positions, in order
        groups: Dict[bytes, List[int]] = {}
        position = 0
        oversized = False
        acquire_op = wire.OP_ACQUIRE
        max_frame = wire.MAX_FRAME
        pack_count = wire.BULK_GROUP_COUNT.pack

        def flush() -> None:
            nonlocal groups, position
            if not position:
                return
            #: worker name -> ([bulk records], [positions lists])
            pending: Dict[str, Tuple[List[bytes], List[List[int]]]] = {}
            plan: List[Tuple[Optional[str], List[List[int]]]] = []
            for frame, positions in groups.items():
                entry = route.get(frame)
                if entry is None:
                    # the ring changed underneath this batch (a remap
                    # drops the whole memo): re-route to a survivor
                    try:
                        entry = self._route_frame(frame)
                    except ValueError:  # pragma: no cover - validated above
                        entry = None
                if entry is None:
                    # every worker is gone; the responder synthesizes
                    plan.append((None, [positions]))
                    continue
                name, prefix = entry
                bucket = pending.get(name)
                if bucket is None:
                    pending[name] = bucket = ([], [])
                bucket[0].append(prefix + pack_count(len(positions)))
                bucket[1].append(positions)
            for name, (records, positions_lists) in pending.items():
                link = links.get(name)
                if link is not None and not link.dead:
                    link.writer.write(_pack_bulk_frames(records))
                plan.append((name, positions_lists))
            self._outstanding += position
            queue_put(("B", plan, position))
            groups = {}
            position = 0

        while end - start >= 2:
            length = buffer[start] | (buffer[start + 1] << 8)
            if length > max_frame:
                oversized = True
                break
            frame_end = start + 2 + length
            if frame_end > end:
                break
            if length >= 3 and buffer[start + 2] == acquire_op:
                frame = bytes(view[start:frame_end])
                start = frame_end
                group = groups.get(frame)
                if group is not None:
                    group.append(position)
                    position += 1
                    continue
                if frame not in route:
                    try:
                        self._route_frame(frame)
                    except ValueError as error:
                        flush()
                        queue_put(("E", str(error).encode(), False))
                        continue
                groups[frame] = [position]
                position += 1
                continue
            payload = view[start + 2 : frame_end]
            start = frame_end
            try:
                command, _key, _useful = wire.parse_request_binary(payload)
            except ValueError as error:
                flush()
                queue_put(("E", str(error).encode(), False))
                continue
            if command == "S":
                flush()
                # Written synchronously, in parse order, so each worker
                # link's FIFO stays aligned with the batch queue.
                stats_frame = wire.encode_command_binary(wire.OP_STATS)
                names = []
                for name, link in links.items():
                    if not link.dead:
                        link.writer.write(stats_frame)
                        names.append(name)
                queue_put(("S", tuple(names)))
            else:  # "P" (an ACQUIRE short enough to miss the fast path
                # is malformed and raised above)
                flush()
                queue_put(("P",))
        flush()
        self._start = start
        if oversized:
            queue_put(
                ("E", b"frame exceeds %d bytes" % wire.MAX_FRAME, True)
            )
            self.transport.pause_reading()  # cannot resync; dying anyway
            return
        if self._outstanding >= _PAUSE_OUTSTANDING and not self._paused:
            self._paused = True
            self.transport.pause_reading()

    # ------------------------------------------------------------------
    async def _respond(self) -> None:
        """Reassemble worker replies into client order (the response loop)."""
        get = self._queue.get
        try:
            while True:
                item = await get()
                transport = self.transport
                if transport is None:
                    return
                kind = item[0]
                if kind == "B":
                    payload = await self._gather_batch(item[1], item[2])
                    transport.write(payload)
                    self._outstanding -= item[2]
                    if self._paused and self._outstanding <= _RESUME_OUTSTANDING:
                        self._paused = False
                        transport.resume_reading()
                elif kind == "S":
                    document = await self._aggregate_stats(item[1])
                    transport.write(
                        wire.encode_status_binary(wire.STATUS_STATS, document)
                    )
                elif kind == "P":
                    transport.write(wire.encode_status_binary(wire.STATUS_PONG))
                else:  # "E": error frame; fatal ones close the connection
                    transport.write(
                        wire.encode_status_binary(wire.STATUS_ERROR, item[1])
                    )
                    if item[2]:
                        transport.close()
                        return
        except (ConnectionError, OSError):  # pragma: no cover - client race
            if self.transport is not None:
                self.transport.close()

    async def _gather_batch(
        self,
        plan: List[Tuple[Optional[str], List[List[int]]]],
        total: int,
    ) -> bytes:
        """Collect one batch's worker replies, scattered to client order.

        ``plan`` lists, per worker (in bulk write order), the request
        positions of each group sent; every group owes one reply
        (RUN or DECISION run) on that worker's link, in order. A
        single-group batch skips the scatter entirely — the group's
        positions are already ``0..total-1``.
        """
        if len(plan) == 1 and len(plan[0][1]) == 1:
            name = plan[0][0]
            link = self._links.get(name) if name is not None else None
            if link is None or link.dead:
                return _SYNTH_REJECT * total
            return await self._read_group(name, link, total)
        merged = np.empty(total, dtype=_DECISION_RECORD)
        for name, positions_lists in plan:
            link = self._links.get(name) if name is not None else None
            for positions in positions_lists:
                if link is None or link.dead:
                    block = _SYNTH_REJECT * len(positions)
                else:
                    block = await self._read_group(name, link, len(positions))
                merged[np.array(positions, dtype=np.intp)] = np.frombuffer(
                    block, dtype=_DECISION_RECORD
                )
        return merged.tobytes()

    async def _read_group(
        self, name: str, link: _WorkerLink, count: int
    ) -> bytes:
        """One group's reply from a worker: always ``count`` decisions.

        A deterministic worker answers a group with one 20-byte RUN
        frame, expanded here; otherwise it sends ``count`` DECISION
        frames, read in one ``readexactly``. Any read failure or
        protocol surprise marks the worker lost and synthesizes REJECT
        frames, keeping the client's stream complete and ordered.
        """
        size = wire.DECISION_FRAME_SIZE
        try:
            header = await link.reader.readexactly(3)
            status = header[2]
            if status == wire.STATUS_RUN:
                tail = await link.reader.readexactly(wire.RUN_FRAME_SIZE - 3)
                reason, admits, rejects, balance, retry = _RUN_TAIL.unpack(tail)
                if admits + rejects != count:  # pragma: no cover - defensive
                    raise ConnectionError("RUN count mismatch")
                return _expand_run(reason, admits, rejects, balance, retry)
            if status != wire.STATUS_DECISION:  # pragma: no cover - defensive
                raise ConnectionError(f"unexpected worker status {status}")
            rest = await link.reader.readexactly(size * count - 3)
            return header + rest
        except asyncio.IncompleteReadError:
            self._worker_lost(name, link)
            return _SYNTH_REJECT * count
        except (ConnectionError, OSError):
            self._worker_lost(name, link)
            return _SYNTH_REJECT * count

    def _worker_lost(self, name: str, link: _WorkerLink) -> None:
        """Mark a link dead and report the worker to the ring."""
        link.dead = True
        try:
            link.writer.close()
        except RuntimeError:  # pragma: no cover - loop teardown race
            pass
        self.router.worker_failed(name)

    async def _aggregate_stats(self, names: Tuple[str, ...]) -> bytes:
        """Sum the forwarded workers' stats documents into one reply."""
        totals = {
            "admitted": 0,
            "rejected": 0,
            "keys": 0,
            "evictions": 0,
            "worker_connections": 0,
        }
        meta: Dict[str, object] = {}
        for name in names:
            link = self._links.get(name)
            if link is None or link.dead:
                continue
            try:
                header = await link.reader.readexactly(2)
                length = header[0] | (header[1] << 8)
                payload = await link.reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                self._worker_lost(name, link)
                continue
            if not length or payload[0] != wire.STATUS_STATS:
                continue  # defensive; a worker only ever answers STATS here
            document = json.loads(bytes(payload[1:]))
            for field in ("admitted", "rejected", "keys", "evictions"):
                totals[field] += int(document.get(field, 0))
            totals["worker_connections"] += int(document.get("connections", 0))
            meta.setdefault("strategy", document.get("strategy"))
            meta.setdefault("period", document.get("period"))
        router = self.router
        document = dict(meta)
        document.update(totals)
        document["workers"] = len(router._workers)
        document["remaps"] = router.remaps
        document["connections"] = router.connections
        return json.dumps(document, sort_keys=True).encode()


class ClusterRouter:
    """The front-end router: public binary port over a worker ring.

    Parameters
    ----------
    workers:
        ``name -> (host, port)`` of the live worker servers.
    host, port:
        Public bind address; port 0 picks a free port (read it back
        from :attr:`port` after :meth:`start`).
    replicas, seed:
        Ring geometry — see :class:`~repro.serve.ring.HashRing`.
    """

    def __init__(
        self,
        workers: Mapping[str, Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 96,
        seed: int = 0,
    ):
        self._workers: Dict[str, Tuple[str, int]] = dict(workers)
        self._ring = HashRing(self._workers, replicas=replicas, seed=seed)
        self._route_cache: Dict[bytes, Tuple[str, bytes]] = {}
        self.host = host
        self.port = port
        self.connections = 0
        #: ring membership changes from worker failures so far
        self.remaps = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._protocols: Set[_RouterConnection] = set()

    # ------------------------------------------------------------------
    @property
    def workers(self) -> Tuple[str, ...]:
        """The live worker names, sorted."""
        return tuple(sorted(self._workers))

    def _route(self, key: str) -> Optional[str]:
        """Resolve ``key``'s owner on the ring; ``None`` when it's empty."""
        try:
            return self._ring.owner(key)
        except LookupError:
            return None  # every worker is gone; callers synthesize

    def worker_failed(self, name: str) -> None:
        """Remove a dead worker: remap only its arcs, drop the memo.

        Idempotent — the supervisor and any number of failed link reads
        may all report the same death.
        """
        if name in self._ring:
            self._ring.remove(name)
            self.remaps += 1
            self._route_cache.clear()
        self._workers.pop(name, None)

    # ------------------------------------------------------------------
    async def start(self) -> "ClusterRouter":
        """Bind the public port; resolves :attr:`port`."""
        loop = asyncio.get_running_loop()
        self._server = await loop.create_server(
            lambda: _RouterConnection(self), self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        """Stop accepting and drop every client connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for protocol in list(self._protocols):
            if protocol.transport is not None:
                protocol.transport.close()


# ---------------------------------------------------------------------------
# process orchestration (``repro serve --workers N``)
# ---------------------------------------------------------------------------

@dataclass
class ClusterConfig:
    """Everything needed to spawn and route one limiter cluster."""

    workers: int
    strategy: str
    period: float = 1.0
    spend_rate: Optional[int] = None
    capacity: Optional[int] = None
    shards: int = 8
    max_keys: int = 65536
    seed: Optional[int] = None
    host: str = "127.0.0.1"
    port: int = 0
    #: start fresh accounts empty (the paper's cold start) — keeps the
    #: burst bound airtight across failure remaps
    cold_start: bool = False
    uvloop: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {self.workers}")


class WorkerHandle:
    """One spawned worker process and its resolved address."""

    def __init__(self, name: str, process: subprocess.Popen, host: str, port: int):
        self.name = name
        self.process = process
        self.host = host
        self.port = port

    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.poll() is None

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate the worker (escalating to kill), reaping it."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                self.process.kill()
                self.process.wait(timeout=timeout)


def spawn_worker(
    config: ClusterConfig, index: int, duration: Optional[float] = None
) -> WorkerHandle:
    """Fork one ``repro serve`` worker and scrape its announced port.

    Workers bind port 0 on the cluster's host and announce the resolved
    port on stdout; each gets a distinct decision-RNG seed. A finite
    cluster ``duration`` becomes ``duration + 60`` in the worker — a
    self-destruct against orphans if the router dies uncleanly.
    """
    argv = [
        sys.executable,
        "-u",  # the parent scrapes the announce line from a pipe
        "-m",
        "repro",
        "serve",
        "--strategy",
        config.strategy,
        "--period",
        repr(config.period),
        "--host",
        config.host,
        "--port",
        "0",
        "--shards",
        str(config.shards),
        # each worker owns ~1/N of the key space, so the global LRU
        # budget splits across the fleet
        "--max-keys",
        str(max(config.shards, config.max_keys // config.workers)),
    ]
    if config.spend_rate is not None:
        argv += ["-A", str(config.spend_rate)]
    if config.capacity is not None:
        argv += ["-C", str(config.capacity)]
    if config.seed is not None:
        argv += ["--seed", str(config.seed + index)]
    if config.cold_start:
        argv.append("--cold-start")
    if config.uvloop:
        argv.append("--uvloop")
    if duration is not None:
        argv += ["--duration", repr(duration + 60.0)]
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    name = f"w{index}"
    port: Optional[int] = None
    assert process.stdout is not None
    for _ in range(50):  # the announce is within the first few lines
        line = process.stdout.readline()
        if not line:
            break
        match = _ANNOUNCE.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        process.terminate()
        process.wait(timeout=5.0)
        raise RuntimeError(f"worker {name} never announced its port")
    # Keep the pipe drained (the worker prints a stats line on exit).
    drain = threading.Thread(
        target=lambda: process.stdout.read(), name=f"drain-{name}", daemon=True
    )
    drain.start()
    return WorkerHandle(name, process, config.host, port)


async def _supervise(
    router: ClusterRouter, handles: List[WorkerHandle], interval: float = 0.5
) -> None:
    """Poll worker processes; report deaths to the ring."""
    while True:
        for handle in handles:
            if handle.process.poll() is not None:
                router.worker_failed(handle.name)
        await asyncio.sleep(interval)


async def _final_stats(
    router: ClusterRouter, handles: List[WorkerHandle]
) -> Dict[str, int]:
    """Aggregate worker counters for the shutdown summary line."""
    from repro.serve.loadgen import fetch_stats

    totals = {"admitted": 0, "rejected": 0, "keys": 0, "evictions": 0}
    for handle in handles:
        if not handle.alive():
            continue
        try:
            document = await asyncio.wait_for(
                fetch_stats(handle.host, handle.port), timeout=5.0
            )
        except (OSError, ValueError, asyncio.TimeoutError):
            continue
        for field in totals:
            totals[field] += int(document.get(field, 0))
    totals["workers"] = len(router._workers)
    totals["remaps"] = router.remaps
    return totals


async def _run_router(
    config: ClusterConfig,
    handles: List[WorkerHandle],
    duration: Optional[float],
    announce,
) -> Dict[str, int]:
    """Serve the public port for ``duration`` seconds (forever if None)."""
    router = ClusterRouter(
        {handle.name: (handle.host, handle.port) for handle in handles},
        host=config.host,
        port=config.port,
        seed=config.seed or 0,
    )
    await router.start()
    announce(
        f"routing {len(handles)}-worker admission cluster on "
        f"{config.host}:{router.port} (period {config.period}s)"
    )
    supervisor = asyncio.get_running_loop().create_task(
        _supervise(router, handles)
    )
    try:
        if duration is None:
            await asyncio.Event().wait()
        else:
            await asyncio.sleep(duration)
    except asyncio.CancelledError:
        pass
    finally:
        supervisor.cancel()
        stats = await _final_stats(router, handles)
        await router.close()
    return stats


def serve_cluster(
    config: ClusterConfig,
    duration: Optional[float] = None,
    announce=print,
) -> Dict[str, int]:
    """Spawn the workers, run the router, tear everything down.

    The ``repro serve --workers N`` entry point. Returns the final
    aggregated counters (empty on an interrupted run). Workers are
    always reaped — including on SIGTERM, which is translated to a
    clean ``SystemExit`` so the ``finally`` teardown runs.
    """
    handles: List[WorkerHandle] = []
    previous_handler = None
    try:
        previous_handler = signal.signal(
            signal.SIGTERM, lambda *_: sys.exit(0)
        )
    except ValueError:  # pragma: no cover - not the main thread
        previous_handler = None
    stats: Dict[str, int] = {}
    try:
        for index in range(config.workers):
            handles.append(spawn_worker(config, index, duration))
        stats = asyncio.run(_run_router(config, handles, duration, announce))
    except KeyboardInterrupt:
        pass
    finally:
        if previous_handler is not None:
            try:
                signal.signal(signal.SIGTERM, previous_handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass
        for handle in handles:
            handle.stop()
    return stats
