"""Arrival-time generators for the load generator.

Builds concrete arrival schedules from the declarative
:class:`~repro.scenarios.ArrivalSpec` (which reuses the flash-crowd
vocabulary of :mod:`repro.churn.flash_crowd`): given a spec, a horizon
and an RNG, :func:`arrival_times` yields absolute send times in
``[0, horizon)`` — an *open-loop* schedule, fixed before the run, so the
offered load never adapts to server backpressure (the regime in which
admission control earns its keep).

Patterns
--------
``uniform``
    Fixed inter-arrival gaps at ``rate`` requests/second.
``poisson``
    A homogeneous Poisson process at ``rate`` (exponential gaps).
``flash-crowd``
    A non-homogeneous Poisson process: baseline ``rate``, stepping to
    ``peak_rate`` inside the arrival window ``[start_fraction,
    start_fraction + window_fraction) * horizon`` and decaying
    exponentially back to baseline afterwards — the request-traffic
    mirror of the flash-crowd churn model's availability curve.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from repro.scenarios import ArrivalSpec


def _flash_crowd_rate(spec: ArrivalSpec, time: float, horizon: float) -> float:
    """The instantaneous arrival rate of the flash-crowd profile."""
    start = spec.start_fraction * horizon
    end = start + spec.window_fraction * horizon
    if time < start:
        return spec.rate
    if time < end:
        return spec.peak_rate
    tau = max(spec.decay_fraction * horizon, 1e-9)
    return spec.rate + (spec.peak_rate - spec.rate) * math.exp(-(time - end) / tau)


def arrival_times(
    spec: ArrivalSpec, horizon: float, rng: random.Random
) -> Iterator[float]:
    """Yield absolute arrival times in ``[0, horizon)`` for ``spec``.

    Deterministic given ``rng``'s state; the flash-crowd profile uses
    Lewis–Shedler thinning against the peak rate, so its draws are
    exact for the piecewise profile above.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    now = 0.0
    if spec.pattern == "uniform":
        # multiples, not accumulation: repeated addition drifts by an
        # ulp per gap and can mint a spurious arrival at the horizon
        gap = 1.0 / spec.rate
        count = 1
        while (due := gap * count) < horizon:
            yield due
            count += 1
        return
    if spec.pattern == "poisson":
        while True:
            now += rng.expovariate(spec.rate)
            if now >= horizon:
                return
            yield now
    # flash-crowd: thinning against the dominating (peak) rate
    ceiling = max(spec.peak_rate, spec.rate)
    while True:
        now += rng.expovariate(ceiling)
        if now >= horizon:
            return
        if rng.random() < _flash_crowd_rate(spec, now, horizon) / ceiling:
            yield now
