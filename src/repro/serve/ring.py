"""Stable hashing and the consistent-hash ring behind the limiter cluster.

Everything that routes a key to an owner — the in-process shard tables
(:mod:`repro.serve.table`) and the multi-process cluster router
(:mod:`repro.serve.cluster`) — must agree on the key's hash across
*interpreter restarts and separate processes*. Python's builtin
``hash(str)`` cannot do that: it is salted by ``PYTHONHASHSEED`` per
process, so the same key lands on a different shard every run. The
cluster contract (each key's token account lives on exactly one owner,
so the §3.4 burst bound keeps holding per key) needs a hash that is a
pure function of the key bytes.

:func:`stable_hash` is that function: a 64-bit BLAKE2b digest (keyed by
an optional seed), identical on every platform, interpreter and
process. It is a C-speed ``hashlib`` call (~1 µs); the hot paths in
front of it (shard selection, router frame routing) memoize key →
owner in small dictionaries so repeated keys pay a dict hit, not a
digest.

:class:`HashRing` is the classic consistent-hash ring over that hash:
each member owns ``replicas`` pseudo-random points on a 64-bit circle
and a key belongs to the first member point at or after the key's own
point. Removing a member hands *only that member's arcs* to its ring
successors — in expectation ``1/W`` of the key space for ``W`` members
— and never moves a key between two surviving members. That minimal
disruption is exactly the cluster's failure-remap contract, and the
property tests pin it.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b
from typing import Dict, Iterable, List, Tuple, Union

__all__ = ["stable_hash", "HashRing"]

#: seeds are folded into blake2b's ``key`` parameter as 8 bytes
_SEED_MASK = 0xFFFFFFFFFFFFFFFF

HashInput = Union[str, bytes, bytearray, memoryview]


def stable_hash(data: HashInput, seed: int = 0) -> int:
    """A 64-bit hash of ``data`` that is stable across processes and runs.

    ``data`` may be ``str`` (hashed as UTF-8) or any bytes-like object
    (hashed as-is, no copy — a ``memoryview`` into a receive buffer
    works). ``seed`` keys the digest, giving independent hash functions
    for independent uses (ring placement vs. anything else); the
    default seed 0 is the common, cheapest path.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    if seed:
        digest = blake2b(
            data, digest_size=8, key=(seed & _SEED_MASK).to_bytes(8, "little")
        )
    else:
        digest = blake2b(data, digest_size=8)
    return int.from_bytes(digest.digest(), "little")


class HashRing:
    """A consistent-hash ring mapping keys to member ids.

    Parameters
    ----------
    members:
        Initial member ids (any strings; the cluster uses worker names
        like ``"w0"``).
    replicas:
        Virtual points per member. More points smooth the load split
        (the share each member owns concentrates around ``1/W``) at the
        cost of a larger sorted array; 96 keeps the worst-case member
        share within a few percent of fair for small clusters.
    seed:
        Keys both the member-point placement and the key lookups, so
        two rings built with the same members and seed are identical
        in every process.

    Lookup is ``O(log(W * replicas))`` via :func:`bisect.bisect_right`
    over one sorted point array. Membership changes rebuild the arrays
    (``O(W * replicas)``) — they are rare (worker death), while lookups
    are the hot path.
    """

    __slots__ = ("replicas", "seed", "_member_points", "_points", "_owners")

    def __init__(
        self, members: Iterable[str] = (), replicas: int = 96, seed: int = 0
    ):
        if replicas < 1:
            raise ValueError(f"need at least one replica per member, got {replicas}")
        self.replicas = replicas
        self.seed = seed
        #: member id -> its virtual points (cached so removal is cheap)
        self._member_points: Dict[str, List[int]] = {}
        self._points: List[int] = []
        self._owners: List[str] = []
        for member in members:
            self._place(member)
        self._rebuild()

    # ------------------------------------------------------------------
    def _place(self, member: str) -> None:
        """Compute and cache ``member``'s virtual points (no rebuild)."""
        if member in self._member_points:
            raise ValueError(f"member {member!r} is already on the ring")
        self._member_points[member] = [
            stable_hash(f"{member}#{replica}", self.seed)
            for replica in range(self.replicas)
        ]

    def _rebuild(self) -> None:
        """Re-sort the flat (point, owner) arrays after a membership change."""
        pairs: List[Tuple[int, str]] = [
            (point, member)
            for member, points in self._member_points.items()
            for point in points
        ]
        # Sorting by (point, member) makes point collisions — possible in
        # principle, astronomically rare at 64 bits — deterministic too.
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._owners = [member for _, member in pairs]

    # ------------------------------------------------------------------
    def add(self, member: str) -> None:
        """Add a member; only keys in its new arcs change owner."""
        self._place(member)
        self._rebuild()

    def remove(self, member: str) -> None:
        """Remove a member; only keys it owned change owner.

        Raises ``KeyError`` for an unknown member.
        """
        del self._member_points[member]
        self._rebuild()

    # ------------------------------------------------------------------
    def owner(self, key: HashInput) -> str:
        """The member owning ``key``; ``LookupError`` on an empty ring."""
        return self.owner_of_hash(stable_hash(key, self.seed))

    def owner_of_hash(self, value: int) -> str:
        """The member owning an already-hashed key point.

        Split out so callers that cache :func:`stable_hash` results (the
        cluster router) skip re-hashing.
        """
        points = self._points
        if not points:
            raise LookupError("the ring has no members")
        index = bisect_right(points, value)
        if index == len(points):
            index = 0  # wrap: the first point owns the top arc
        return self._owners[index]

    # ------------------------------------------------------------------
    @property
    def members(self) -> Tuple[str, ...]:
        """The current member ids, sorted."""
        return tuple(sorted(self._member_points))

    def __len__(self) -> int:
        return len(self._member_points)

    def __contains__(self, member: object) -> bool:
        return member in self._member_points
