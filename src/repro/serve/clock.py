"""Injectable time sources for the serving layer.

The limiter never calls ``time.monotonic`` directly: it takes a
zero-argument callable returning seconds as a float. Production code
passes :data:`monotonic_clock` (the default); tests pass a
:class:`ManualClock` and drive virtual time explicitly, which makes the
§3.4 burst-bound property deterministic and instantaneous to check.
"""

from __future__ import annotations

import time
from typing import Callable

#: a clock is any zero-argument callable returning seconds
Clock = Callable[[], float]

#: the production default — monotonic so admission pacing never jumps
#: backwards on wall-clock adjustments
monotonic_clock: Clock = time.monotonic


class ManualClock:
    """A clock whose time only moves when the test says so.

    Calling the instance reads the current virtual time::

        clock = ManualClock()
        limiter = TokenAccountLimiter(..., clock=clock)
        clock.advance(0.5)
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards: {seconds}")
        self.now += seconds
        return self.now
