"""Optional uvloop installation with graceful fallback.

uvloop (when installed) roughly doubles asyncio's socket throughput,
which matters at the binary path's request rates — but it is an
optional dependency and many deployments (including this repo's CI
image) run without it. :func:`install_event_loop` encapsulates the
try/fallback so ``repro serve --uvloop`` and ``repro loadgen --uvloop``
share one behavior: ask for it, get it when available, and always
*log which loop actually won* so a benchmark artifact is attributable
to the event loop that produced it.
"""

from __future__ import annotations


def install_event_loop(uvloop_requested: bool = False) -> str:
    """Install the best available event-loop policy; name the winner.

    With ``uvloop_requested`` false this is a no-op returning
    ``"asyncio"``. With it true, uvloop's policy is installed when the
    package imports, else stock asyncio stays and the returned name
    says why — callers print it at startup so every run records the
    loop it actually used. Call before ``asyncio.run``.
    """
    if not uvloop_requested:
        return "asyncio"
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return "asyncio (uvloop requested but not installed)"
    uvloop.install()
    return f"uvloop {getattr(uvloop, '__version__', '')}".strip()
