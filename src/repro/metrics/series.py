"""A minimal time series container used by collectors and reports."""

from __future__ import annotations

import bisect
import math
from typing import Callable, Iterable, Iterator, List, Optional, Tuple


class TimeSeries:
    """An append-only series of ``(time, value)`` samples.

    Times must be appended in non-decreasing order (collectors sample on
    the simulator clock, which only moves forward).
    """

    def __init__(self, points: Iterable[Tuple[float, float]] = ()):
        self.times: List[float] = []
        self.values: List[float] = []
        for time, value in points:
            self.append(time, value)

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(f"non-monotone append: t={time} after t={self.times[-1]}")
        self.times.append(time)
        self.values.append(value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def __getitem__(self, index: int) -> Tuple[float, float]:
        return self.times[index], self.values[index]

    @property
    def empty(self) -> bool:
        return not self.times

    def final(self) -> float:
        """The last recorded value."""
        if not self.values:
            raise ValueError("empty series has no final value")
        return self.values[-1]

    def value_at(self, time: float) -> float:
        """Value of the most recent sample at or before ``time``."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self.values[index]

    def mean(self, start: float = -math.inf, end: float = math.inf) -> float:
        """Arithmetic mean of samples with ``start <= t <= end``."""
        selected = [v for t, v in self if start <= t <= end]
        if not selected:
            raise ValueError(f"no samples in [{start}, {end}]")
        return sum(selected) / len(selected)

    def min(self) -> float:
        return min(self.values)

    def max(self) -> float:
        return max(self.values)

    # ------------------------------------------------------------------
    def first_time_below(self, threshold: float) -> Optional[float]:
        """Earliest sample time with value < threshold, or ``None``."""
        for time, value in self:
            if value < threshold:
                return time
        return None

    def first_time_at_least(self, threshold: float) -> Optional[float]:
        """Earliest sample time with value >= threshold, or ``None``."""
        for time, value in self:
            if value >= threshold:
                return time
        return None

    def map_values(self, fn: Callable[[float], float]) -> "TimeSeries":
        """A new series with ``fn`` applied to every value."""
        return TimeSeries((t, fn(v)) for t, v in self)

    def tail(self, start: float) -> "TimeSeries":
        """The sub-series with ``t >= start``."""
        return TimeSeries((t, v) for t, v in self if t >= start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.empty:
            return "TimeSeries(empty)"
        return (
            f"TimeSeries(n={len(self)}, t=[{self.times[0]:.1f}, "
            f"{self.times[-1]:.1f}], last={self.values[-1]:.4g})"
        )
