"""Periodic metric samplers.

A collector owns a :class:`~repro.sim.process.PeriodicProcess` that
evaluates a metric function against the live simulation and appends the
result to a :class:`~repro.metrics.series.TimeSeries`. Collectors use
phase 0 so that samples land on round boundaries of the *measurement*
grid, independent of the protocol's per-node phases.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.protocol import TokenAccountNode
from repro.metrics.series import TimeSeries
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class MetricCollector:
    """Samples ``metric_fn(now) -> float`` every ``interval`` seconds.

    Parameters
    ----------
    sim:
        The simulator whose clock drives the sampling.
    interval:
        Sampling period in virtual seconds.
    metric_fn:
        Called with the current virtual time; its return value is
        recorded. May return ``None`` to skip a sample (e.g. a metric
        that is undefined before the first update is injected).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        metric_fn: Callable[[float], float | None],
    ):
        self.series = TimeSeries()
        self._metric_fn = metric_fn
        self._sim = sim
        self.process = PeriodicProcess(sim, interval, self._sample, phase=0.0)

    def start(self) -> "MetricCollector":
        self.process.start()
        return self

    def stop(self) -> None:
        self.process.stop()

    def _sample(self) -> None:
        value = self._metric_fn(self._sim.now)
        if value is not None:
            self.series.append(self._sim.now, float(value))


class TokenBalanceCollector(MetricCollector):
    """Samples the average token balance over online nodes (Figure 5).

    The paper's Figure 5 plots "the average number of tokens" per node
    in the failure-free gossip learning scenario; averaging over online
    nodes generalizes this to the churn scenario.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        nodes: Sequence[TokenAccountNode],
    ):
        self._nodes = nodes
        super().__init__(sim, interval, self._average_balance)

    def _average_balance(self, _now: float) -> float | None:
        balances = [n.account.balance for n in self._nodes if n.online]
        if not balances:
            return None
        return sum(balances) / len(balances)
