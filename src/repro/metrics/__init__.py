"""Performance metrics and time-series collection.

* :mod:`repro.metrics.series` — a small time-series container with the
  query helpers the evaluation needs (final value, crossing times,
  resampling).
* :mod:`repro.metrics.smoothing` — the 15-minute window averaging the
  paper applies to the push gossip plots.
* :mod:`repro.metrics.collectors` — periodic samplers that evaluate a
  metric function against the running simulation (performance metrics,
  token balances, message counters).
* :mod:`repro.metrics.latency` — wall-clock latency percentiles and
  admitted/rejected accounting for the serving layer's load generator.
"""

from repro.metrics.collectors import MetricCollector, TokenBalanceCollector
from repro.metrics.latency import LatencyRecorder, percentile
from repro.metrics.series import TimeSeries
from repro.metrics.smoothing import window_average

__all__ = [
    "LatencyRecorder",
    "MetricCollector",
    "TimeSeries",
    "TokenBalanceCollector",
    "percentile",
    "window_average",
]
