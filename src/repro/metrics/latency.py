"""Wall-clock latency/percentile aggregation for the serving layer.

The simulation metrics sample virtual time through
:mod:`repro.metrics.collectors`; the serving layer measures *real*
request latencies. :class:`LatencyRecorder` accumulates per-request
samples and reduces them to the percentile summary the load generator
reports (p50/p95/p99 plus mean and max), with an admitted-over-time
:class:`~repro.metrics.series.TimeSeries` so flash-crowd runs show the
admission rate tracking the §3.4 bound through the burst.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.series import TimeSeries


def percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of pre-sorted values.

    Linear interpolation between closest ranks (the numpy default), so
    small sample counts still give stable p99s in tests.
    """
    if not sorted_values:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


@dataclass
class LatencyRecorder:
    """Accumulates per-request outcomes and latencies.

    ``record(latency, admitted, at)`` is called once per completed
    request; ``at`` is the request's offset into the run (seconds), used
    to bucket the admitted-per-second series.
    """

    #: admitted-per-second bucketing interval
    bucket: float = 1.0
    latencies: List[float] = field(default_factory=list)
    admitted: int = 0
    rejected: int = 0
    _buckets: Dict[int, int] = field(default_factory=dict)

    def record(self, latency: float, admitted: bool, at: float = 0.0) -> None:
        self.latencies.append(latency)
        if admitted:
            self.admitted += 1
            self._buckets[int(at / self.bucket)] = (
                self._buckets.get(int(at / self.bucket), 0) + 1
            )
        else:
            self.rejected += 1

    def record_many(self, samples) -> None:
        """Record a batch of ``(latency, admitted, at)`` tuples at once.

        The pipelined binary client parses a whole burst of responses
        per socket read; one bulk call keeps the recorder off its hot
        path. Equivalent to :meth:`record` per sample.
        """
        latencies = self.latencies
        buckets = self._buckets
        bucket = self.bucket
        admitted_count = 0
        for latency, admitted, at in samples:
            latencies.append(latency)
            if admitted:
                admitted_count += 1
                index = int(at / bucket)
                buckets[index] = buckets.get(index, 0) + 1
        self.admitted += admitted_count
        self.rejected += len(samples) - admitted_count

    def record_arrays(self, latencies, admitted, ats) -> None:
        """Columnar :meth:`record`: three aligned numpy arrays.

        The binary load generator parses responses with one vectorized
        pass per socket read; this keeps the recorder vectorized too.
        """
        import numpy as np

        self.latencies.extend(latencies.tolist())
        count = int(admitted.sum())
        self.admitted += count
        self.rejected += len(latencies) - count
        if count:
            indices = (ats[admitted] / self.bucket).astype(int)
            unique, counts = np.unique(indices, return_counts=True)
            buckets = self._buckets
            for index, bump in zip(unique.tolist(), counts.tolist()):
                buckets[index] = buckets.get(index, 0) + bump

    @property
    def total(self) -> int:
        return self.admitted + self.rejected

    def admitted_series(self) -> TimeSeries:
        """Admissions per bucket as a TimeSeries (times = bucket starts)."""
        series = TimeSeries()
        for index in sorted(self._buckets):
            series.append(index * self.bucket, self._buckets[index] / self.bucket)
        return series

    def summary(self) -> Dict[str, float]:
        """The JSON-ready reduction the load generator prints."""
        result: Dict[str, float] = {
            "requests": float(self.total),
            "admitted": float(self.admitted),
            "rejected": float(self.rejected),
            "admit_ratio": self.admitted / self.total if self.total else 0.0,
        }
        if self.latencies:
            ordered = sorted(self.latencies)
            result.update(
                latency_p50_ms=percentile(ordered, 50.0) * 1e3,
                latency_p95_ms=percentile(ordered, 95.0) * 1e3,
                latency_p99_ms=percentile(ordered, 99.0) * 1e3,
                latency_max_ms=ordered[-1] * 1e3,
                latency_mean_ms=sum(ordered) / len(ordered) * 1e3,
            )
        return result
