"""Window-average smoothing.

"On the plots showing push gossip we applied smoothing based on averaging
measurements over 15 minute periods" (§4.2). :func:`window_average`
implements exactly that: samples are grouped into consecutive windows of
the given length and each window is replaced by one sample at its center
with the window's mean value.
"""

from __future__ import annotations

from repro.metrics.series import TimeSeries


def window_average(series: TimeSeries, window: float) -> TimeSeries:
    """Average a series over consecutive windows of length ``window``.

    Windows are aligned to the first sample time. Empty windows produce
    no output sample. The paper uses ``window = 900`` seconds (15 min).
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if series.empty:
        return TimeSeries()
    smoothed = TimeSeries()
    origin = series.times[0]
    bucket_index = 0
    bucket_sum = 0.0
    bucket_count = 0
    for time, value in series:
        index = int((time - origin) // window)
        if index != bucket_index and bucket_count:
            center = origin + (bucket_index + 0.5) * window
            smoothed.append(center, bucket_sum / bucket_count)
            bucket_sum, bucket_count = 0.0, 0
            bucket_index = index
        elif index != bucket_index:
            bucket_index = index
        bucket_sum += value
        bucket_count += 1
    if bucket_count:
        center = origin + (bucket_index + 0.5) * window
        smoothed.append(center, bucket_sum / bucket_count)
    return smoothed
