"""The bulk-synchronous NumPy backend for large-N populations.

The discrete-event reference executes Algorithm 4 one event at a time —
exact, but topping out around a few thousand nodes. The paper's claims
(§4) are *population-level*: the burst bound holds per node regardless
of N, and token accounts tame burstiness while matching reactive
latency. Token-based aggregation analyses (Saligrama & Alanyali 2011;
Salehkaleybar & Golestani 2017) study exactly these dynamics at
10^5–10^6 nodes through synchronous-round models — the fast path this
backend vectorizes.

The bulk-synchronous model
--------------------------
Time advances in slots of length Δ (the proactive period). Within one
slot, for all N nodes at once with array operations:

1. **Churn** — availability transitions falling inside the slot are
   applied at the slot boundary; nodes that came online send the
   §4.1.2 pull request (answered by burning a token, the reply entering
   the normal data path).
2. **Injection** — the workload's updates for this slot are injected
   into random online nodes (in index order).
3. **Proactive phase** — every online node's timer fires: a Bernoulli
   draw against ``PROACTIVE(a)`` either sends to a random online
   out-neighbor (overlay adjacency in CSR form) or banks a token
   (clamped at C). Heterogeneous periods (``period_spread``) are
   modelled with per-node tick-credit accumulators.
4. **Message hops** — messages are delivered in sub-rounds of one
   transfer time each (at most ``⌊Δ/transfer⌋`` hops per slot, the
   same cascade depth the event engine fits into a slot): i.i.d.
   Bernoulli loss, usefulness against the receiver's state, reactive
   spending via ``randRound(REACTIVE(a, u))``, new sends joining the
   next hop. Messages still in flight when the hop budget runs out
   carry over into the next slot.
5. **Sampling** — the quality metric (eq. 7 lag) and, optionally, the
   average token balance are sampled at the slot boundary, and per-node
   per-slot send counts feed the §3.4 burst audit.

When is this exact, when statistical?
-------------------------------------
Per-node *budgets* are exact: strategies are evaluated through lookup
tables over the integer balance (bit-exact for every registered
strategy, including the graded ones under boolean usefulness), banking
clamps at C, reactive spending never overdraws, and the §3.4 burst
bound therefore holds exactly per slot window. What is approximated is
*timing*: sub-slot phases, per-message latency jitter (absorbed — the
mean transfer time is unchanged and every delivery still lands in its
slot) and the interleaving of injections with sends inside one slot.
Round-level aggregates — sends per slot, quality curves, burst audits —
match the event engine statistically, which is what the equivalence
gate (``tests/test_backend_equivalence.py``) asserts on small N before
this backend is trusted at large N.

Determinism: all randomness comes from one named NumPy generator
(``streams.numpy_stream("vectorized-backend")``) drawn in a fixed
order, so the same spec + seed is bit-identical on every run. Overlay
and churn randomness use the *same* named streams as the event engine,
so both backends simulate the identical topology and availability
trace.

Supported envelope: the push-gossip application (any registered
strategy, overlay and churn model; loss, jitter, period spread,
heterogeneous knobs as above). Other applications, graded usefulness
(``grading_scale``) and the reactive-injection ablation raise
:class:`~repro.backends.base.BackendUnsupportedError` pointing back at
the event backend.
"""

from __future__ import annotations

import time as _wallclock
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.backends.base import BackendUnsupportedError, SimulationBackend
from repro.core.kernel import DecisionKernel, strategy_tables as _strategy_tables
from repro.core.ratelimit import RateLimitViolation, burst_bound
from repro.metrics.series import TimeSeries
from repro.sim.network import NetworkStats
from repro.sim.randomness import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.scenarios import ScenarioSpec

#: rejection-sampling rounds before the exact online-neighbor fallback
_REJECTION_ROUNDS = 8

#: applications the vectorized kernels implement
_SUPPORTED_APPS = ("push-gossip",)


def _overlay_csr(overlay) -> Tuple[np.ndarray, np.ndarray]:
    """The overlay's out-adjacency as CSR ``(indptr, indices)`` arrays."""
    n = overlay.n
    degrees = np.fromiter(
        (overlay.out_degree(i) for i in range(n)), dtype=np.int64, count=n
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.fromiter(
        (target for i in range(n) for target in overlay.out_neighbors(i)),
        dtype=np.int64,
        count=int(indptr[-1]),
    )
    return indptr, indices


def _slot_transitions(
    trace, n: int, period: float, slots: int
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Bucket every churn transition into its slot, preserving order.

    Returns ``{slot: (node_ids, online_flags)}``; transitions are applied
    at the start of their slot (``slot = ⌊time/Δ⌋``), the bulk-synchronous
    discretisation of the trace.
    """
    buckets: Dict[int, Tuple[List[int], List[bool]]] = {}
    for node_id in range(n):
        for when, online in trace.transitions(node_id):
            if when == 0.0:
                continue  # encoded in the initial state
            slot = min(int(when // period), slots - 1)
            nodes, flags = buckets.setdefault(slot, ([], []))
            nodes.append(node_id)
            flags.append(online)
    return {
        slot: (np.array(nodes, dtype=np.int64), np.array(flags, dtype=bool))
        for slot, (nodes, flags) in buckets.items()
    }


class VectorizedBackend(SimulationBackend):
    """Bulk-synchronous NumPy execution of push-gossip scenarios."""

    name = "vectorized"

    #: tokens banked per skipped proactive round. Algorithm 4 banks
    #: exactly one; this is a seam for the equivalence gate's
    #: negative-path test, which overrides it to prove an off-by-one
    #: grant is caught (``tests/test_backend_equivalence.py``).
    grant_amount: int = 1

    # ------------------------------------------------------------------
    def run(self, config):
        """Execute the scenario; see the module docstring for the model."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import ExperimentResult

        spec = config.to_spec() if isinstance(config, ExperimentConfig) else config
        self._check_supported(spec)
        started = _wallclock.perf_counter()
        sim = _PushGossipKernel(spec, grant_amount=self.grant_amount)
        sim.run()
        elapsed = _wallclock.perf_counter() - started
        data_messages = sim.stats.by_kind.get("data", 0)
        return ExperimentResult(
            config=config,
            label=config.label(),
            metric=sim.metric_series,
            tokens=sim.token_series,
            network=sim.stats,
            data_messages=data_messages,
            messages_per_node_per_period=data_messages / (spec.n * spec.periods),
            ratelimit_violations=sim.audit_violations(),
            surviving_walks=None,
            extras={},
            elapsed=elapsed,
            events_processed=sim.events_processed,
        )

    # ------------------------------------------------------------------
    def _check_supported(self, spec: "ScenarioSpec") -> None:
        """Reject scenarios outside the vectorized envelope, precisely."""
        if spec.app.name not in _SUPPORTED_APPS:
            raise BackendUnsupportedError(
                f"backend 'vectorized' does not implement app {spec.app.name!r} "
                f"(supported: {', '.join(_SUPPORTED_APPS)}); use backend='event'"
            )
        params = spec.app.kwargs
        if params.get("grading_scale") is not None:
            raise BackendUnsupportedError(
                "backend 'vectorized' supports boolean usefulness only "
                "(grading_scale must be None); use backend='event'"
            )
        if params.get("reactive_injection"):
            raise BackendUnsupportedError(
                "backend 'vectorized' does not implement the "
                "reactive-injection ablation; use backend='event'"
            )


class _PushGossipKernel:
    """One vectorized push-gossip run: state arrays + the slot loop."""

    def __init__(self, spec: "ScenarioSpec", grant_amount: int = 1):
        from repro.registry import churn_models, overlays

        self.spec = spec
        self.grant = int(grant_amount)
        n = spec.n
        streams = RandomStreams(spec.seed)
        self.rng = streams.numpy_stream("vectorized-backend")

        strategy = spec.build_strategy()
        self.strategy = strategy
        self.capacity = strategy.token_capacity
        self.overdraft = strategy.requires_overdraft
        # The shared Algorithm-4 kernel (repro.core.kernel): the same
        # object the serving layer decides with, holding the fused
        # strategy LUTs, so a reaction batch costs two gathers and one
        # Bernoulli draw.
        self.kernel: DecisionKernel = strategy.decision_kernel
        self.lut_max = self.kernel.lut_max
        self.pro_lut = self.kernel.pro_lut
        #: strategies that never react (the purely proactive baseline)
        #: skip the reaction machinery per delivery batch entirely
        self.can_react = self.kernel.can_react
        #: message-index claim buffer for one-arrival-per-dst selection
        self._claim = np.full(n, -1, dtype=np.int64)

        # Same named streams as the event engine: identical overlay and
        # availability trace on both backends. Large k-out overlays are
        # wired straight into CSR (the same NumPy adjacency the Python
        # Overlay object wraps on the event side — byte-identical
        # wiring, no per-node tuple materialisation).
        from repro.overlay.kout import NUMPY_WIRING_MIN_N, kout_adjacency

        overlay_ref = spec.resolved_overlay()
        if overlay_ref.name == "kout" and n >= NUMPY_WIRING_MIN_N:
            k = overlay_ref.kwargs.get("k", 20)
            targets = kout_adjacency(n, k, streams.stream("overlay").getrandbits(64))
            self.indptr = np.arange(n + 1, dtype=np.int64) * k
            self.indices = targets.reshape(-1)
        else:
            overlay = overlays.create(
                overlay_ref.name, n, streams.stream("overlay"), **overlay_ref.kwargs
            )
            self.indptr, self.indices = _overlay_csr(overlay)
        self.degrees = self.indptr[1:] - self.indptr[:-1]

        trace = churn_models.create(
            spec.churn.name,
            n,
            streams.stream("churn"),
            spec.horizon,
            **spec.churn.kwargs,
        )
        self.slots = spec.periods
        self.transitions = (
            _slot_transitions(trace, n, spec.period, self.slots)
            if trace is not None
            else {}
        )
        self.online = np.ones(n, dtype=bool)
        if trace is not None:
            for node_id in range(n):
                self.online[node_id] = trace.is_online(node_id, 0.0)
        #: failure-free fast path: with every node permanently online the
        #: per-hop availability filters and the online check inside peer
        #: selection are identities and are skipped wholesale
        self.has_churn = trace is not None

        app = spec.app.kwargs
        self.pull_on_rejoin = (
            bool(app.get("pull_on_rejoin", True)) and trace is not None
        )
        self.inject_interval = float(app.get("inject_interval", 0.0)) or None
        if self.inject_interval is None:
            from repro.scenarios import PAPER

            self.inject_interval = PAPER.inject_interval

        self.balance = np.full(n, spec.initial_tokens, dtype=np.int64)
        self.update = np.zeros(n, dtype=np.int64)  # 0 = the null update
        self.latest = 0

        self.stats = NetworkStats()
        self.metric_series = TimeSeries()
        self.token_series: Optional[TimeSeries] = (
            TimeSeries() if spec.collect_tokens else None
        )
        self.events_processed = 0
        self.max_hops = max(1, int(spec.period // spec.network.transfer_time))
        # Cascade tails trickle: a handful of messages per hop for tens
        # of hops. Below this batch size the remaining messages carry
        # over to the next slot instead, where they merge with the next
        # full batch — amortising fixed array-op overhead without
        # touching small-N runs (the equivalence-gate scale processes
        # every hop in-slot).
        self.min_hop_batch = n // 512
        self.loss_rate = spec.network.loss_rate

        # Heterogeneous periods: node i ticks Δ/period_i times per slot
        # on average, realised through a per-node credit accumulator.
        if spec.period_spread > 0:
            draw = self.rng.random(n)
            periods_i = spec.period * (1.0 + spec.period_spread * (2.0 * draw - 1.0))
            self.tick_rate = spec.period / periods_i
        else:
            self.tick_rate = None
        self.tick_credit = np.zeros(n, dtype=np.float64)

        # Carry-over messages whose cascade outlived the slot's hop budget.
        self.carry_src = np.empty(0, dtype=np.int64)
        self.carry_dst = np.empty(0, dtype=np.int64)
        self.carry_payload = np.empty(0, dtype=np.int64)

        #: per-slot per-node data sends (burst audit; gate-scale N only)
        self.slot_sends: Optional[List[np.ndarray]] = [] if spec.audit_sends else None
        self._sends_this_slot: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Peer selection over the CSR adjacency
    # ------------------------------------------------------------------
    def _select_peers(self, src: np.ndarray) -> np.ndarray:
        """A random *online* out-neighbor per sender, or -1 when none.

        Rejection sampling (uniform neighbor draw, re-draw while the
        pick is offline) with an exact fallback that materialises the
        online subset for the rare senders still unresolved — the same
        two-phase scheme as :class:`repro.overlay.peer_sampling.PeerSampler`.
        """
        m = len(src)
        degrees = self.degrees[src]
        if not self.has_churn:
            # Every neighbor is online: one uniform draw is the answer.
            offsets = self.rng.integers(0, np.maximum(degrees, 1))
            gather = self.indptr[src] + offsets
            if degrees.all():
                return self.indices[gather]
            # Degree-0 senders have no slice to gather from (a trailing
            # sink's start offset is len(indices)); read a dummy index
            # and mask the result to -1.
            if not len(self.indices):
                return np.full(m, -1, dtype=np.int64)
            picks = self.indices[np.where(degrees > 0, gather, 0)]
            return np.where(degrees > 0, picks, -1)
        result = np.full(m, -1, dtype=np.int64)
        pending = np.flatnonzero(degrees > 0)
        for _ in range(_REJECTION_ROUNDS):
            if not len(pending):
                return result
            senders = src[pending]
            offsets = self.rng.integers(0, degrees[pending])
            candidates = self.indices[self.indptr[senders] + offsets]
            hit = self.online[candidates]
            result[pending[hit]] = candidates[hit]
            pending = pending[~hit]
        # Exact fallback: only reached when a sender's neighborhood is
        # mostly offline; the loop body is tiny and the set is rare.
        indptr, indices, online = self.indptr, self.indices, self.online
        for j in pending.tolist():
            s = src[j]
            neighbors = indices[indptr[s] : indptr[s + 1]]
            alive = neighbors[online[neighbors]]
            if len(alive):
                result[j] = alive[self.rng.integers(0, len(alive))]
        return result

    # ------------------------------------------------------------------
    # The slot loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Advance the population slot by slot to the horizon."""
        spec = self.spec
        period = spec.period
        inject_times_per_slot = self._injection_schedule()
        for slot in range(self.slots):
            if self.slot_sends is not None:
                self._sends_this_slot = np.zeros(spec.n, dtype=np.int64)
            replies = self._apply_churn(slot)
            # The event engine spreads a slot's injections uniformly over
            # the slot; the bulk-synchronous discretisation splits them
            # around the cascade instead (half before, half after), so
            # the *mean* propagation time per update matches and the
            # quality curves stay comparable.
            pending = inject_times_per_slot[slot]
            early = pending - pending // 2
            self._inject(early)
            src, dst, payload = self._proactive_phase(slot)
            if replies is not None:
                src = np.concatenate([replies[0], src])
                dst = np.concatenate([replies[1], dst])
                payload = np.concatenate([replies[2], payload])
            if len(self.carry_src):
                src = np.concatenate([self.carry_src, src])
                dst = np.concatenate([self.carry_dst, dst])
                payload = np.concatenate([self.carry_payload, payload])
            self.carry_src, self.carry_dst, self.carry_payload = self._hop_loop(
                src, dst, payload
            )
            self._inject(pending // 2)
            self._sample((slot + 1) * period)
            if self.slot_sends is not None:
                self.slot_sends.append(self._sends_this_slot)

    def _injection_schedule(self) -> List[int]:
        """Number of injections per slot (times ``k·interval < horizon``)."""
        spec = self.spec
        counts = [0] * self.slots
        k = 0
        while True:
            when = k * self.inject_interval
            if when >= spec.horizon:
                break
            counts[min(int(when // spec.period), self.slots - 1)] += 1
            k += 1
        return counts

    def _apply_churn(self, slot: int):
        """Apply this slot's transitions; returns pull replies, if any."""
        entry = self.transitions.get(slot)
        if entry is None:
            return None
        nodes, flags = entry
        before = self.online[nodes]
        self.online[nodes] = flags  # in-order fancy assignment: last wins
        self.events_processed += len(nodes)
        if not self.pull_on_rejoin:
            return None
        # §4.1.2: nodes that came back online pull once. "Came online"
        # is judged on the net slot transition (offline -> online).
        rejoined = nodes[flags & ~before]
        rejoined = rejoined[self.online[rejoined]]
        if not len(rejoined):
            return None
        targets = self._select_peers(rejoined)
        ok = targets >= 0
        requesters, targets = rejoined[ok], targets[ok]
        count = len(requesters)
        if not count:
            return None
        self.stats.sent += count
        self.stats.by_kind["pull-request"] = (
            self.stats.by_kind.get("pull-request", 0) + count
        )
        if self.loss_rate > 0.0:
            keep = self.rng.random(count) >= self.loss_rate
            self.stats.lost_dropped += int(count - keep.sum())
            requesters, targets = requesters[keep], targets[keep]
        self.stats.delivered += len(requesters)
        self.events_processed += len(requesters)
        # "If this neighbor has tokens, a message is sent back with the
        # latest update (burning a token). Otherwise, no answer." Token
        # burns are sequential per target, so duplicates process in
        # unique batches.
        reply_src: List[np.ndarray] = []
        reply_dst: List[np.ndarray] = []
        while len(targets):
            _, first = np.unique(targets, return_index=True)
            batch_t, batch_r = targets[first], requesters[first]
            mask = np.ones(len(targets), dtype=bool)
            mask[first] = False
            targets, requesters = targets[mask], requesters[mask]
            answer = (self.update[batch_t] > 0) & (self.balance[batch_t] > 0)
            burned = batch_t[answer]
            self.balance[burned] -= 1
            reply_src.append(burned)
            reply_dst.append(batch_r[answer])
        src = np.concatenate(reply_src) if reply_src else np.empty(0, dtype=np.int64)
        dst = np.concatenate(reply_dst) if reply_dst else np.empty(0, dtype=np.int64)
        self._record_data_sends(src)
        return src, dst, self.update[src]

    def _inject(self, count: int) -> None:
        """Inject ``count`` fresh updates into random online nodes."""
        if not count:
            return
        online_ids = np.flatnonzero(self.online)
        self.events_processed += count
        if not len(online_ids):
            return  # all offline: injections are skipped, like the event engine
        picks = online_ids[self.rng.integers(0, len(online_ids), size=count)]
        indices = self.latest + 1 + np.arange(count, dtype=np.int64)
        self.latest += count
        # Duplicate picks keep the freshest injected index.
        np.maximum.at(self.update, picks, indices)

    def _proactive_phase(self, slot: int):
        """Every online node's timer: send proactively or bank a token."""
        n = self.spec.n
        if self.tick_rate is None:
            ticks = self.online.astype(np.int64)
        else:
            self.tick_credit += self.tick_rate
            ticks = np.floor(self.tick_credit).astype(np.int64)
            self.tick_credit -= ticks
            ticks *= self.online  # offline timers neither bank nor spend
        self.events_processed += n  # every node's timer fires, as in the engine
        out_src: List[np.ndarray] = []
        while True:
            active = np.flatnonzero(ticks > 0)
            if not len(active):
                break
            ticks[active] -= 1
            probabilities = self.pro_lut[self._lut_index(self.balance[active])]
            coin = self.rng.random(len(active))
            senders = active[coin < probabilities]
            bankers = active[coin >= probabilities]
            self._bank(bankers)
            if len(senders):
                peers = self._select_peers(senders)
                ok = peers >= 0
                # No online neighbor: the send is impossible; bank the
                # round's token instead (clamped at C).
                self._bank(senders[~ok])
                senders, peers = senders[ok], peers[ok]
                out_src.append(senders)
                out_src.append(peers)  # interleaved (src, dst) pairs; split below
        # Bootstrap for never-proactive strategies: one kicked message
        # per online node in slot 0, outside the token accounting.
        if slot == 0 and self.strategy.bootstrap_kick:
            starters = np.flatnonzero(self.online)
            peers = self._select_peers(starters)
            ok = peers >= 0
            out_src.append(starters[ok])
            out_src.append(peers[ok])
        if out_src:
            src = np.concatenate(out_src[0::2])
            dst = np.concatenate(out_src[1::2])
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        self._record_data_sends(src)
        return src, dst, self.update[src]

    def _hop_loop(self, src, dst, payload):
        """Deliver messages in transfer-time sub-rounds until the slot ends."""
        rng = self.rng
        for hop in range(self.max_hops):
            if not len(src):
                break
            if hop and len(src) <= self.min_hop_batch:
                break  # trickling tail: carry into the next slot's batch
            # i.i.d. in-transit loss, then offline destinations (only
            # carried-over messages can meet one: within a slot the
            # availability mask is frozen and peers were drawn online).
            if self.loss_rate > 0.0 or self.has_churn:
                if self.loss_rate > 0.0:
                    dropped = rng.random(len(src)) < self.loss_rate
                    self.stats.lost_dropped += int(dropped.sum())
                    alive = self.online[dst] & ~dropped
                    self.stats.lost_offline += int(len(dst) - alive.sum()) - int(
                        dropped.sum()
                    )
                else:
                    alive = self.online[dst]
                    self.stats.lost_offline += int(len(dst) - alive.sum())
                src, dst, payload = src[alive], dst[alive], payload[alive]
            delivered = len(src)
            self.stats.delivered += delivered
            self.events_processed += delivered
            # Multiple arrivals at one node within a hop are processed
            # sequentially (state update, reaction, then the next
            # arrival); first-arrival batches replay that order while
            # keeping the common no-duplicates case one big batch.
            # Reaction *sends* are order-independent once the spend
            # amounts are fixed, so peer selection is coalesced across
            # batches into a single draw.
            spender_parts: List[np.ndarray] = []
            amount_parts: List[np.ndarray] = []
            claim = self._claim
            while len(dst):
                # One-arrival-per-destination selection in O(m): every
                # message scatters its index into the claim buffer
                # (duplicate writes resolve in order, last wins) and the
                # survivors read their own index back. No sort, no
                # O(n) histogram.
                order = np.arange(len(dst))
                claim[dst] = order
                chosen = claim[dst] == order
                claim[dst] = -1  # reset the touched entries only
                if chosen.all():
                    batch_dst, batch_payload = dst, payload
                    deferred = None
                else:
                    batch_dst, batch_payload = dst[chosen], payload[chosen]
                    deferred = ~chosen
                useful = batch_payload > self.update[batch_dst]
                if useful.any():
                    adopters = batch_dst[useful]
                    self.update[adopters] = batch_payload[useful]
                if self.can_react:
                    reacted = self._react(batch_dst, useful)
                    if reacted is not None:
                        spender_parts.append(reacted[0])
                        amount_parts.append(reacted[1])
                if deferred is None:
                    break
                src, dst, payload = src[deferred], dst[deferred], payload[deferred]
            src, dst, payload = self._emit_reactions(spender_parts, amount_parts)
        return src, dst, payload

    def _react(self, nodes: np.ndarray, useful: np.ndarray):
        """ONMESSAGE's reactive half: spend tokens for one arrival batch.

        Returns ``(spenders, amounts)`` — the message emission itself is
        deferred to :meth:`_emit_reactions` so one peer draw covers the
        whole hop.
        """
        balances = self.balance[nodes]
        # randRound: integer part + Bernoulli(fraction), via the shared
        # kernel's fused LUTs (one uniform per arrival, the historical
        # draw pattern — existing seeds stay bit-identical)
        count = self.kernel.reaction_counts(balances, useful, self.rng)
        if not self.overdraft:
            np.minimum(count, balances, out=count)
        spending = count > 0
        if not spending.any():
            return None
        spenders, amounts = nodes[spending], count[spending]
        self.balance[spenders] -= amounts  # unique within the batch
        return spenders, amounts

    def _emit_reactions(self, spender_parts, amount_parts):
        """Turn the hop's token spends into next-hop messages."""
        if not spender_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        spenders = np.concatenate(spender_parts)
        amounts = np.concatenate(amount_parts)
        senders = np.repeat(spenders, amounts)
        peers = self._select_peers(senders)
        ok = peers >= 0
        unsent = senders[~ok]
        if len(unsent):
            # No online peer for some copies: refund those tokens.
            np.add.at(self.balance, unsent, 1)
            if self.capacity is not None:
                np.minimum(self.balance, self.capacity, out=self.balance)
        senders, peers = senders[ok], peers[ok]
        self._record_data_sends(senders)
        return senders, peers, self.update[senders]

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _lut_index(self, balances: np.ndarray) -> np.ndarray:
        return self.kernel.lut_index(balances)

    def _bank(self, nodes: np.ndarray) -> None:
        """Grant the round's token(s) to the given nodes, clamped at C."""
        if not len(nodes):
            return
        self.balance[nodes] += self.grant
        if self.capacity is not None:
            self.balance[nodes] = np.minimum(self.balance[nodes], self.capacity)

    def _record_data_sends(self, src: np.ndarray) -> None:
        count = len(src)
        if not count:
            return
        self.stats.sent += count
        self.stats.by_kind["data"] = self.stats.by_kind.get("data", 0) + count
        if self._sends_this_slot is not None:
            np.add.at(self._sends_this_slot, src, 1)

    def _sample(self, now: float) -> None:
        online_count = int(self.online.sum())
        if self.latest > 0 and online_count:
            lag = self.latest - float(self.update[self.online].mean())
            self.metric_series.append(now, lag)
        if self.token_series is not None and online_count:
            self.token_series.append(now, float(self.balance[self.online].mean()))

    # ------------------------------------------------------------------
    # §3.4 burst audit over slot windows
    # ------------------------------------------------------------------
    def audit_violations(self) -> List[RateLimitViolation]:
        """Check the burst bound over sliding slot windows.

        Windows of ``k ∈ {1, 5, 20}`` slots must hold at most
        ``burst_bound(k·Δ, Δ_min, C)`` sends per node, where ``Δ_min``
        is the fastest heterogeneous period (as the event-engine audit
        does). Sub-slot windows do not exist in the bulk-synchronous
        model; the k = 1 window is its sharpest statement.
        """
        if self.slot_sends is None or self.capacity is None or not self.slot_sends:
            return []
        spec = self.spec
        audit_period = spec.period * (1.0 - spec.period_spread)
        per_slot = np.stack(self.slot_sends)  # (slots, n)
        cumulative = np.cumsum(per_slot, axis=0)
        violations: List[RateLimitViolation] = []
        for window_slots in (1, 5, 20):
            if window_slots > len(per_slot):
                continue
            window = window_slots * spec.period
            bound = burst_bound(window, audit_period, self.capacity)
            sums = cumulative[window_slots - 1 :].copy()
            sums[1:] -= cumulative[: -window_slots]
            worst_slot = np.argmax(sums, axis=0)
            worst = sums[worst_slot, np.arange(sums.shape[1])]
            for node_id in np.flatnonzero(worst > bound):
                violations.append(
                    RateLimitViolation(
                        node_id=int(node_id),
                        window_start=float(worst_slot[node_id]) * spec.period,
                        window_length=window,
                        sends=int(worst[node_id]),
                        bound=bound,
                    )
                )
        return violations
