"""The backend equivalence gate.

The vectorized backend is only trustworthy at N = 10^5 if it matches
the exact event engine where both can run — small N, every axis of the
scenario matrix. :func:`compare_backends` runs one configuration on
both engines and checks the *round-level aggregates* the paper's
figures are built from:

* **send rate** — data messages per node per period (the §4 headline:
  token accounts keep the rate at the proactive level);
* **quality curve** — the application metric, compared on the mean of
  the series tail (transients differ slot-to-slot; equilibria must
  agree);
* **burst audit** — the §3.4 bound must hold *exactly* on both engines
  (``audit_sends=True`` configurations only).

Timing is bulk-synchronous on one side and event-driven on the other,
so the comparison is statistical with explicit tolerances — but tight
enough to have teeth: an off-by-one token grant in the vectorized
kernel roughly doubles the send rate and trips the rate check
(``tests/test_backend_equivalence.py`` proves this negative path).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.experiments.runner import ExperimentResult


#: default tolerances on send-rate disagreement (relative + an absolute
#: floor for near-zero rates, e.g. the dying flooding reference)
RATE_RTOL = 0.15
RATE_ATOL = 0.012
#: default tolerances on the quality-curve tail mean
QUALITY_RTOL = 0.45
QUALITY_ATOL = 0.75


def _tail_mean(result: ExperimentResult) -> Optional[float]:
    """Mean of the second half of the metric series (the equilibrium)."""
    values = list(result.metric.values)
    if not values:
        return None
    tail = values[len(values) // 2 :]
    return sum(tail) / len(tail)


@dataclass
class EquivalenceReport:
    """Outcome of one two-backend comparison."""

    label: str
    event: ExperimentResult
    vectorized: ExperimentResult
    #: human-readable description of every failed check (empty = pass)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every aggregate check passed."""
        return not self.failures

    def summary(self) -> str:
        """One-line digest for test output."""
        verdict = "OK" if self.ok else "FAIL[" + "; ".join(self.failures) + "]"
        return (
            f"{self.label}: event rate={self.event.messages_per_node_per_period:.3f} "
            f"vectorized rate={self.vectorized.messages_per_node_per_period:.3f} "
            f"-> {verdict}"
        )


def compare_backends(
    config,
    backend=None,
    rate_rtol: float = RATE_RTOL,
    rate_atol: float = RATE_ATOL,
    quality_rtol: float = QUALITY_RTOL,
    quality_atol: float = QUALITY_ATOL,
) -> EquivalenceReport:
    """Run ``config`` on both engines and compare round-level aggregates.

    Parameters
    ----------
    config:
        An :class:`~repro.experiments.config.ExperimentConfig` or
        :class:`~repro.scenarios.ScenarioSpec`; its ``backend`` field is
        overridden on each side.
    backend:
        The vectorized-side :class:`~repro.backends.base.SimulationBackend`
        instance to gate. ``None`` builds the registered one; the
        negative-path test passes a deliberately perturbed kernel here.
    rate_rtol, quality_rtol, quality_atol:
        Tolerances for the statistical checks (see module docstring).
    """
    from repro.backends.event import EventBackend
    from repro.backends.vectorized import VectorizedBackend

    if backend is None:
        backend = VectorizedBackend()
    event_result = EventBackend().run(replace(config, backend="event"))
    vector_result = backend.run(replace(config, backend="vectorized"))

    failures: List[str] = []
    event_rate = event_result.messages_per_node_per_period
    vector_rate = vector_result.messages_per_node_per_period
    rate_allowed = rate_atol + rate_rtol * abs(event_rate)
    if abs(vector_rate - event_rate) > rate_allowed:
        failures.append(
            f"send rate diverges: event {event_rate:.4f} vs "
            f"vectorized {vector_rate:.4f} (allowed ±{rate_allowed:.4f})"
        )

    event_quality = _tail_mean(event_result)
    vector_quality = _tail_mean(vector_result)
    if (event_quality is None) != (vector_quality is None):
        failures.append(
            f"quality curve presence differs: event {event_quality} vs "
            f"vectorized {vector_quality}"
        )
    elif event_quality is not None and vector_quality is not None:
        allowed = quality_atol + quality_rtol * abs(event_quality)
        if abs(vector_quality - event_quality) > allowed:
            failures.append(
                f"quality tail diverges: event {event_quality:.4f} vs "
                f"vectorized {vector_quality:.4f} (allowed ±{allowed:.4f})"
            )

    if event_result.ratelimit_violations:
        failures.append(
            f"event engine violated the §3.4 bound "
            f"({len(event_result.ratelimit_violations)} windows)"
        )
    if vector_result.ratelimit_violations:
        failures.append(
            f"vectorized engine violated the §3.4 bound "
            f"({len(vector_result.ratelimit_violations)} windows)"
        )

    return EquivalenceReport(
        label=config.label(),
        event=event_result,
        vectorized=vector_result,
        failures=failures,
    )
