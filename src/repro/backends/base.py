"""The simulation-backend contract.

A *backend* is an execution engine for one fully specified scenario: it
takes a configuration (an
:class:`~repro.experiments.config.ExperimentConfig` or a
:class:`~repro.scenarios.ScenarioSpec`) and produces an
:class:`~repro.experiments.runner.ExperimentResult` with the same shape
regardless of how the simulation was carried out. Two backends ship
built in:

* ``event`` — the exact discrete-event reference
  (:mod:`repro.backends.event`, wrapping
  :class:`repro.experiments.runner.Experiment`): Algorithm 4 verbatim,
  per-message latency, per-node phases. The ground truth every other
  backend is gated against.
* ``vectorized`` — the bulk-synchronous NumPy engine
  (:mod:`repro.backends.vectorized`): advances all N nodes one Δ-slot
  at a time with array operations, trading per-message timing fidelity
  for two to three orders of magnitude in throughput, which is what
  makes N ≥ 10^5 populations simulable.

Backends are registered in :data:`repro.registry.backends` and selected
through the ``backend`` field of the spec/config. The backend name is
part of the cell identity (it is hashed into the result-store key), so
results produced by different engines can never collide in a store.

Every backend must uphold the determinism contract: the same
configuration (including seed and backend name) produces a bit-identical
result on every run, at any worker count.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycles
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import ExperimentResult
    from repro.scenarios import ScenarioSpec

    ConfigLike = Union[ExperimentConfig, ScenarioSpec]


class BackendUnsupportedError(ValueError):
    """A backend cannot execute the requested scenario.

    Raised (as a usage error, not a crash) when a scenario uses a
    feature outside the backend's supported envelope — e.g. the
    vectorized backend only implements the push-gossip application.
    The message names the unsupported feature and the backend that can
    run it, so the fix is always "switch backend or drop the knob".
    """


class SimulationBackend(ABC):
    """One simulation execution engine (see the module docstring)."""

    #: registry name (matches the registration by convention)
    name: str = "abstract"

    @abstractmethod
    def run(self, config: "ConfigLike") -> "ExperimentResult":
        """Execute the configured scenario and return its result.

        ``result.config`` must be the *original* ``config`` object (not
        the compiled spec), so store round-trips and suite bookkeeping
        see exactly what they submitted.
        """
