"""The exact discrete-event backend (the reference engine).

A thin adapter: :class:`EventBackend` wraps the registry-driven
:class:`repro.experiments.runner.Experiment` builder behind the
:class:`~repro.backends.base.SimulationBackend` contract. It supports
every registered application, overlay, churn model and strategy — it
*is* the semantics the vectorized backend is gated against
(:mod:`repro.backends.equivalence`).
"""

from __future__ import annotations

from repro.backends.base import SimulationBackend


class EventBackend(SimulationBackend):
    """Run the scenario on the discrete-event engine (exact reference)."""

    name = "event"

    def run(self, config):
        """Build and execute the experiment on the event engine."""
        # Imported here: the runner imports the scenario layer, which
        # validates backend names against the registry, which imports
        # this module — a cycle at import time, harmless at call time.
        from repro.experiments.runner import Experiment

        return Experiment(config).run()
