"""Pluggable simulation backends (the fifth component registry).

One scenario, several execution engines. The ``backend`` axis on
:class:`~repro.scenarios.ScenarioSpec` /
:class:`~repro.experiments.config.ExperimentConfig` names a registered
entry here, and :func:`repro.experiments.runner.run_experiment`
dispatches to it:

* ``event`` — the exact discrete-event reference
  (:mod:`repro.backends.event`);
* ``vectorized`` — the bulk-synchronous NumPy engine for N ≥ 10^5
  populations (:mod:`repro.backends.vectorized`).

The backend name is part of the result-store cell identity, so cached
results can never leak between engines; the vectorized backend is gated
against the event engine's round-level aggregates by
:mod:`repro.backends.equivalence` before being trusted at scale.
"""

from __future__ import annotations

from repro.backends.base import BackendUnsupportedError, SimulationBackend
from repro.registry import backends

__all__ = [
    "BackendUnsupportedError",
    "SimulationBackend",
]


@backends.register(
    "event",
    summary="exact discrete-event reference: Algorithm 4 verbatim, any app",
)
def _event_backend() -> SimulationBackend:
    from repro.backends.event import EventBackend

    return EventBackend()


@backends.register(
    "vectorized",
    summary=(
        "bulk-synchronous NumPy engine: all N nodes per Δ-slot in array "
        "ops (push-gossip; N >= 1e5)"
    ),
)
def _vectorized_backend() -> SimulationBackend:
    from repro.backends.vectorized import VectorizedBackend

    return VectorizedBackend()
