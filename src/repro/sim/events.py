"""Schedulable events for the discrete-event engine.

An event is a callback plus its arguments, tagged with a firing time and a
monotonically increasing sequence number. The sequence number breaks ties
between events scheduled for the same instant, which makes the execution
order — and therefore every simulation — fully deterministic.
"""

from __future__ import annotations

from typing import Any, Callable


class EventHandle:
    """A handle to a scheduled event, allowing cancellation.

    Cancellation is lazy: the event stays in the engine's heap but is
    skipped when popped. This keeps :meth:`cancel` O(1), which matters for
    simulations that cancel many timers (for example churn schedules).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self.cancelled = True
        # Drop references so cancelled events do not pin application
        # objects in memory while they wait to be popped from the heap.
        self.fn = _noop
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Replacement callback for cancelled events."""
