"""Reproducible named random streams.

Every source of randomness in a simulation (overlay wiring, node phases,
peer sampling, strategy coin flips, churn trace generation, update
injection, ...) draws from its own named stream derived from a single root
seed. This has two payoffs:

* **Reproducibility** — a experiment is identified by one integer seed.
* **Variance isolation** — changing, say, the strategy does not perturb
  the overlay wiring or the churn trace, because the streams are
  independent. This mirrors how the paper compares strategies "over the
  same random 20-out network".

Streams are derived by hashing ``(root_seed, name parts...)`` with
SHA-256, so they are stable across Python versions and processes (unlike
``hash()``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

import numpy as np

_SeedPart = Union[str, int]


def derive_seed(root_seed: int, *name: _SeedPart) -> int:
    """Derive a 64-bit child seed from a root seed and a name path."""
    material = f"{root_seed}:" + "/".join(str(part) for part in name)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, named random number streams.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> a = streams.stream("overlay")
    >>> b = streams.stream("overlay")
    >>> a.random() == b.random()  # same name -> same stream
    True
    >>> c = streams.stream("churn")
    >>> a.random() == c.random()  # different name -> independent
    False
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, int):
            raise TypeError(f"root seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = root_seed

    def stream(self, *name: _SeedPart) -> random.Random:
        """Return a fresh ``random.Random`` for the given name path."""
        return random.Random(derive_seed(self.root_seed, *name))

    def numpy_stream(self, *name: _SeedPart) -> np.random.Generator:
        """Return a fresh NumPy ``Generator`` for the given name path."""
        return np.random.default_rng(derive_seed(self.root_seed, *name))

    def child(self, *name: _SeedPart) -> "RandomStreams":
        """Return a sub-factory rooted at ``name`` (for nested components)."""
        return RandomStreams(derive_seed(self.root_seed, *name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(root_seed={self.root_seed})"
