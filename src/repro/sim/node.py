"""Node lifecycle: identity, online/offline state, and message dispatch.

The paper's system model (§2.1) allows nodes to "leave the network at any
time"; in the smartphone-trace scenario (§4.1) a node is online only while
the phone is charging with adequate connectivity. :class:`SimNode` is the
minimal lifecycle base that the churn scheduler toggles and the transport
consults before delivering.

Protocol classes (e.g. :class:`repro.core.protocol.TokenAccountNode`)
subclass or wrap this to attach behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.network import Message


class SimNode:
    """A network participant with an online flag and lifecycle hooks.

    Parameters
    ----------
    node_id:
        Dense integer identifier; also the index into overlay adjacency.
    online:
        Initial availability. Failure-free scenarios keep this ``True``
        forever; trace-driven scenarios toggle it via :meth:`set_online`.
    """

    __slots__ = ("node_id", "online", "_online_listeners", "ever_online")

    def __init__(self, node_id: int, online: bool = True):
        self.node_id = node_id
        self.online = online
        self.ever_online = online
        self._online_listeners: List[Callable[[bool], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def set_online(self, online: bool) -> None:
        """Toggle availability, notifying listeners on actual transitions."""
        if online == self.online:
            return
        self.online = online
        if online:
            self.ever_online = True
        for listener in self._online_listeners:
            listener(online)

    def add_online_listener(self, listener: Callable[[bool], None]) -> None:
        """Register ``listener(online)`` to run on every state transition.

        Listeners fire in registration order, after the flag is updated —
        so a listener that sends a message (the pull-on-rejoin of §4.1.2)
        observes the node as already online.
        """
        self._online_listeners.append(listener)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def deliver(self, message: "Message") -> None:
        """Handle an incoming message. Subclasses override.

        The transport only calls this while the node is online.
        """
        raise NotImplementedError(
            f"node {self.node_id} received a message but defines no handler"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "online" if self.online else "offline"
        return f"{type(self).__name__}(id={self.node_id}, {state})"
