"""The discrete-event simulation engine.

:class:`Simulator` maintains a virtual clock and a binary heap of pending
events. It is the only component that advances time; every other part of
the library (timers, message transport, churn schedules, metric samplers)
schedules callbacks through it.

Design notes
------------
* Events firing at the same virtual instant run in scheduling order
  (FIFO), so runs are deterministic.
* The engine never looks at wall-clock time; a two-day scenario with
  ``Δ = 172.8 s`` simulates 172,800 virtual seconds regardless of how long
  the host takes.
* ``run(until=...)`` stops *after* processing every event at ``until`` so
  that metric samplers scheduled exactly at the horizon still fire.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.events import EventHandle


class SimulationError(RuntimeError):
    """Raised on invalid use of the engine (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event scheduler with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds. Defaults to 0.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    2
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self, start_time: float = 0.0):
        self.now: float = float(start_time)
        self._heap: list[EventHandle] = []
        self._seq: int = 0
        self._stopped: bool = False
        self.processed: int = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        handle = EventHandle(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def reschedule(self, handle: EventHandle, time: float) -> EventHandle:
        """Re-arm a handle that has already fired, reusing its allocation.

        Periodic timers are by far the most common event source (every
        node reschedules one per round), so avoiding a fresh
        :class:`EventHandle` per tick measurably cuts allocator traffic.
        The handle must not be sitting in the heap: only pass a handle
        whose callback has already run (or that was never scheduled).
        Rescheduling a cancelled handle un-cancels it; the caller must
        then restore ``fn``/``args``, which :meth:`EventHandle.cancel`
        cleared.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self.now}"
            )
        handle.time = time
        handle.seq = self._seq
        handle.cancelled = False
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next pending event.

        Returns ``True`` if an event was processed, ``False`` if the heap
        was empty (cancelled events are discarded transparently).
        """
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = handle.time
            handle.fn(*handle.args)
            self.processed += 1
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Run events until the heap drains, ``until`` passes, or ``stop()``.

        Parameters
        ----------
        until:
            Inclusive virtual-time horizon. Events scheduled exactly at
            ``until`` are processed; later events remain queued. When the
            horizon is reached the clock is advanced to ``until`` even if
            no event fired exactly there.
        max_events:
            Optional safety valve on the number of events processed in
            this call.

        Returns
        -------
        int
            The number of events processed by this call.
        """
        # This loop is the simulation's hottest code: bind everything it
        # touches to locals and keep the per-event work to one heappop,
        # one comparison against the horizon, and the callback itself.
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        bounded = max_events is not None
        processed = 0
        while heap:
            head = heap[0]
            if head.cancelled:
                heappop(heap)
                continue
            if until is not None and head.time > until:
                break
            if bounded and processed >= max_events:
                break
            heappop(heap)
            self.now = head.time
            head.fn(*head.args)
            processed += 1
            if self._stopped:
                break
        if until is not None and not self._stopped and self.now < until:
            self.now = until
        self.processed += processed
        return processed

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Upper bound on the number of queued events.

        Cancellation is lazy (see :class:`repro.sim.events.EventHandle`),
        so cancelled events linger in the heap until popped and this
        count *includes* them. Use :attr:`live_pending` for the exact
        number of events that will still fire.
        """
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Exact number of queued events that will still fire.

        O(pending): walks the heap and skips cancelled entries. Intended
        for assertions and diagnostics, not for hot loops.
        """
        return sum(1 for handle in self._heap if not handle.cancelled)

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` if drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={len(self._heap)})"
