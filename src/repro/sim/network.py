"""Message transport with a fixed per-message transfer time.

The paper's timing model (§4.1) assumes a reliable transfer protocol and a
transfer time of 1.728 s per message — one hundredth of the proactive
period Δ = 172.8 s. We model transfer time as latency: a message sent at
``t`` is delivered at ``t + transfer_time``. By default there is no
in-transit drop, matching the reliable-transfer assumption, but a message
addressed to a node that is *offline at delivery time* is lost (the
destination left the network, which the model explicitly permits).

The paper's §2.1 notes "the protocols themselves do not require this
[reliable transfer] assumption", and §3.3.1 claims the proactive
component keeps the system alive "even under high message drop rates".
To exercise that claim the transport also supports i.i.d. in-transit
message loss (``loss_rate``), used by the fault-injection tests and the
fault-tolerance bench.

The transport also keeps per-node send accounting. This supports the
rate-limit bound of §3.4 (a node sends at most ``⌊t/Δ⌋ + C`` messages in
any window of length ``t``), which we audit in tests and benches via
:class:`repro.core.ratelimit.RateLimitAuditor`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.node import SimNode


@dataclass(frozen=True)
class Message:
    """An application-layer message in flight.

    Attributes
    ----------
    src:
        Sender node id.
    dst:
        Destination node id.
    payload:
        Application-defined content (kept opaque by the transport).
    kind:
        Application-defined tag used for dispatch; the token account
        protocol uses ``"data"`` for Algorithm 4 messages and push gossip
        adds ``"pull-request"`` / ``"pull-reply"`` for the churn scenario.
    sent_at:
        Virtual send time.
    """

    src: int
    dst: int
    payload: Any
    kind: str
    sent_at: float


@dataclass
class NetworkStats:
    """Aggregate transport counters for one simulation run."""

    sent: int = 0
    delivered: int = 0
    lost_offline: int = 0
    lost_dropped: int = 0
    #: sends attempted by a node that was (already) offline at the send
    #: instant — dropped and counted, never delivered (see
    #: :meth:`Network.send` on the same-instant churn race)
    lost_sender_offline: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record_send(self, kind: str) -> None:
        self.sent += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class Network:
    """Routes messages between registered nodes with fixed latency.

    Parameters
    ----------
    sim:
        The discrete-event engine.
    transfer_time:
        Latency applied to every message, in virtual seconds.

    Notes
    -----
    * **Same-instant ordering under churn.** Events at one virtual
      instant run in scheduling order (FIFO seq, see
      :class:`~repro.sim.engine.Simulator`). Churn transitions are
      scheduled up-front by :meth:`repro.churn.schedule.ChurnSchedule.apply`
      — *before* any protocol timer is armed — so when a node's period
      timer fires at the very instant the node is taken offline, the
      offline transition has already run and the tick's own online guard
      skips the send. Sends scheduled *dynamically* (application control
      plane, workload callbacks, failure injectors) cannot rely on that
      ordering: a stale callback may still attempt to send after its
      node went offline in the same instant. Such sends are not a crash;
      they are dropped and counted in ``stats.lost_sender_offline`` (the
      destination left the network — the model explicitly permits this,
      and the sender leaving mid-instant is the symmetric case).
    * ``send_log_enabled`` turns on per-node timestamp logs used by the
      burst auditor; it is off by default because half a million nodes
      each logging every send is needless memory in large runs.
    """

    def __init__(
        self,
        sim: Simulator,
        transfer_time: float,
        loss_rate: float = 0.0,
        loss_rng: Optional[random.Random] = None,
        transfer_jitter: float = 0.0,
        transfer_rng: Optional[random.Random] = None,
    ):
        if transfer_time < 0:
            raise ValueError(f"transfer_time must be >= 0, got {transfer_time}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("a loss_rng is required when loss_rate > 0")
        if not 0.0 <= transfer_jitter < 1.0:
            raise ValueError(
                f"transfer_jitter must be in [0, 1), got {transfer_jitter}"
            )
        if transfer_jitter > 0.0 and transfer_rng is None:
            raise ValueError("a transfer_rng is required when transfer_jitter > 0")
        self.sim = sim
        self.transfer_time = transfer_time
        self.loss_rate = loss_rate
        self.loss_rng = loss_rng
        self.transfer_jitter = transfer_jitter
        self.transfer_rng = transfer_rng
        self.nodes: Dict[int, SimNode] = {}
        self.stats = NetworkStats()
        self.sent_per_node: Dict[int, int] = {}
        self.send_log_enabled = False
        self.send_log: Dict[int, List[float]] = {}
        self._send_listeners: List[Callable[[Message], None]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, node: SimNode) -> None:
        """Attach a node to the network; its id must be unique."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node
        self.sent_per_node[node.node_id] = 0

    def register_all(self, nodes: Sequence[SimNode]) -> None:
        for node in nodes:
            self.register(node)

    def node(self, node_id: int) -> SimNode:
        return self.nodes[node_id]

    def is_online(self, node_id: int) -> bool:
        return self.nodes[node_id].online

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self, src: int, dst: int, payload: Any, kind: str = "data"
    ) -> Optional[Message]:
        """Send ``payload`` from ``src`` to ``dst``; returns the message.

        Delivery is scheduled ``transfer_time`` seconds in the future and
        silently dropped if the destination is offline at that instant.

        A send attempted by an *offline* node — reachable when a
        dynamically scheduled callback races a churn transition at the
        same virtual instant (see the class notes) — is dropped before
        any accounting: it returns ``None`` and increments
        ``stats.lost_sender_offline`` only. It does not count as sent,
        does not enter the per-node send log, and is invisible to send
        listeners, so the §3.4 burst audit never sees a message the
        node could not actually emit.
        """
        sender = self.nodes[src]
        if not sender.online:
            self.stats.lost_sender_offline += 1
            return None
        if dst not in self.nodes:
            raise KeyError(f"unknown destination node {dst}")
        message = Message(src, dst, payload, kind, self.sim.now)
        self.stats.record_send(kind)
        self.sent_per_node[src] += 1
        if self.send_log_enabled:
            self.send_log.setdefault(src, []).append(self.sim.now)
        for listener in self._send_listeners:
            listener(message)
        delay = self.transfer_time
        if self.transfer_jitter > 0.0:
            # Symmetric uniform jitter: mean delay stays transfer_time,
            # so metrics normalized by the ideal transfer time compare.
            delay *= 1.0 + self.transfer_jitter * (
                2.0 * self.transfer_rng.random() - 1.0
            )
        self.sim.schedule(delay, self._deliver, message)
        return message

    def add_send_listener(self, listener: Callable[[Message], None]) -> None:
        """Observe every send (used by metric collectors and auditors)."""
        self._send_listeners.append(listener)

    def enable_send_log(self) -> None:
        """Record per-node send timestamps (for burst auditing)."""
        self.send_log_enabled = True

    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> None:
        if self.loss_rate > 0.0 and self.loss_rng.random() < self.loss_rate:
            self.stats.lost_dropped += 1
            return
        receiver = self.nodes[message.dst]
        if not receiver.online:
            self.stats.lost_offline += 1
            return
        self.stats.delivered += 1
        receiver.deliver(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(nodes={len(self.nodes)}, sent={self.stats.sent}, "
            f"delivered={self.stats.delivered})"
        )
