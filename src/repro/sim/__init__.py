"""Discrete-event simulation substrate.

This subpackage replaces PeerSim (the simulator used in the paper) with a
small, deterministic, event-driven engine:

* :mod:`repro.sim.engine` — the event loop (virtual clock + binary heap).
* :mod:`repro.sim.events` — schedulable events and cancellation handles.
* :mod:`repro.sim.process` — periodic processes (the ``wait(Δ)`` loop of
  the paper's pseudo-code) with per-node random phase.
* :mod:`repro.sim.randomness` — named, reproducible random streams derived
  from a single root seed.
* :mod:`repro.sim.node` — node lifecycle (online/offline, message dispatch).
* :mod:`repro.sim.network` — message transport with a fixed per-message
  transfer time and loss on offline destinations.

Everything in the package is deterministic given a root seed: two runs with
the same configuration produce bit-identical event orders and results.
"""

from repro.sim.engine import Simulator
from repro.sim.events import EventHandle
from repro.sim.network import Message, Network, NetworkStats
from repro.sim.node import SimNode
from repro.sim.process import PeriodicProcess
from repro.sim.randomness import RandomStreams

__all__ = [
    "EventHandle",
    "Message",
    "Network",
    "NetworkStats",
    "PeriodicProcess",
    "RandomStreams",
    "SimNode",
    "Simulator",
]
