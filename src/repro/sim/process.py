"""Periodic processes — the ``wait(Δ)`` loop of the paper's pseudo-code.

Every algorithm in the paper (Algorithms 1–4) is a loop of the form::

    loop:
        wait(Δ)
        <do something>

:class:`PeriodicProcess` expresses that loop as a self-rescheduling event.
Two details matter for fidelity:

* **Unsynchronized rounds.** The paper's system model does not assume
  synchronized rounds, and PeerSim gives every node a random phase. We do
  the same: the first tick fires at ``phase`` (uniform in ``[0, Δ)`` by
  default) and then every ``Δ`` seconds.
* **Drift-free schedule.** Ticks fire at ``phase + k·Δ`` exactly for
  integer ``k``, so the token grant rate of exactly one per round that the
  analysis in §4.3 relies on holds regardless of callback cost.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import EventHandle


class PeriodicProcess:
    """A callback invoked every ``period`` virtual seconds.

    Simulations allocate one of these per node, and each reschedules an
    event every round — so the class is slotted and re-arms one reusable
    :class:`EventHandle` via :meth:`Simulator.reschedule` instead of
    allocating a fresh handle per tick.

    Parameters
    ----------
    sim:
        The simulator that owns the virtual clock.
    period:
        The round length Δ, in seconds. Must be positive.
    callback:
        Called with no arguments on every tick.
    phase:
        Offset of the tick grid from time zero. If ``None``, a uniform
        random phase in ``[0, period)`` is drawn from ``rng``.
    rng:
        Source for the random phase (required when ``phase is None``).
    """

    __slots__ = (
        "_sim",
        "period",
        "phase",
        "_callback",
        "_next_k",
        "_handle",
        "ticks_fired",
        "_running",
    )

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        phase: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if phase is None:
            if rng is None:
                raise ValueError("either an explicit phase or an rng is required")
            phase = rng.random() * period
        if not 0 <= phase < period:
            raise ValueError(f"phase must lie in [0, period), got {phase}")
        self._sim = sim
        self.period = period
        self.phase = phase
        self._callback = callback
        self._next_k = 0
        self._handle: Optional[EventHandle] = None
        self.ticks_fired = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> "PeriodicProcess":
        """Begin ticking at the next point of the grid ``phase + k·period``.

        A grid point exactly at the current time counts as the next tick,
        so a process started at t=0 with phase 0 fires immediately (well,
        as the next event at t=0). Restarting a stopped process resumes on
        the same grid.
        """
        if self._running:
            raise RuntimeError("process already started")
        self._running = True
        self._next_k = max(
            self._next_k, math.ceil((self._sim.now - self.phase) / self.period)
        )
        if self._next_k < 0:
            self._next_k = 0
        self._schedule_next()
        return self

    def stop(self) -> None:
        """Stop ticking. Idempotent; the process can be restarted."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._running

    def next_tick_time(self) -> float:
        """Absolute virtual time of the next tick (valid while running)."""
        return self.phase + self._next_k * self.period

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        handle = self._handle
        if handle is None or handle.cancelled:
            # First tick after construction or a stop(): a cancelled
            # handle dropped its callback reference, start fresh.
            self._handle = self._sim.schedule_at(self.next_tick_time(), self._fire)
        else:
            # Steady state: the handle just fired, re-arm it in place.
            self._sim.reschedule(handle, self.next_tick_time())

    def _fire(self) -> None:
        if not self._running:
            return
        self.ticks_fired += 1
        self._next_k += 1
        self._callback()
        if self._running:
            self._schedule_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeriodicProcess(period={self.period}, phase={self.phase:.3f}, "
            f"ticks={self.ticks_fired}, running={self._running})"
        )
