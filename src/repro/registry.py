"""Pluggable component registries: name -> factory, with parameter schemas.

The experiment harness is assembled from four kinds of components, each
kept in its own :class:`Registry`:

* **strategies** — the proactive/reactive function pairs of §3
  (:mod:`repro.core.strategies`, :mod:`repro.core.grading`);
* **applications** — :class:`ApplicationPlugin` bundles that know how to
  build one application's per-node apps, workload, substrate and metric
  (:mod:`repro.apps`);
* **overlays** — topology builders (:mod:`repro.overlay`);
* **churn models** — availability-trace generators (:mod:`repro.churn`);
* **backends** — simulation execution engines (:mod:`repro.backends`):
  the exact discrete-event reference and the bulk-synchronous NumPy
  vectorized engine for large-N runs.

Components register themselves with a decorator::

    from repro.registry import ParamSpec, overlays

    @overlays.register(
        "kout",
        summary="fixed random k-out overlay (the paper's default)",
        params=(ParamSpec("k", "int", default=20, help="out-degree"),),
    )
    def _build(n, rng, k=20):
        return random_kout_overlay(n, k, rng)

and are instantiated by name through :meth:`Registry.create`, which
validates keyword parameters against the declared :class:`ParamSpec`
schema (unknown and missing-required parameters fail fast with the list
of valid choices). The registries lazily import the built-in component
modules on first lookup, so importing :mod:`repro.registry` alone stays
cheap and free of cycles.

The scenario layer (:mod:`repro.scenarios`) and the experiment runner
(:mod:`repro.experiments.runner`) are written purely against these
registries: adding a new application, overlay or churn model is one
registered factory away from being usable in ``repro run`` / ``repro
suite`` — no edits to the runner, CLI or sweep code.
"""

from __future__ import annotations

import importlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.api import Application
    from repro.overlay.graph import Overlay
    from repro.overlay.peer_sampling import PeerSampler
    from repro.scenarios import ScenarioSpec
    from repro.sim.engine import Simulator
    from repro.sim.network import Network
    from repro.sim.randomness import RandomStreams


# ----------------------------------------------------------------------
# Parameter schemas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of a registered component factory."""

    name: str
    #: human-readable type tag ("int", "float", "bool", "str", "tuple")
    type: str = "str"
    default: Any = None
    required: bool = False
    help: str = ""

    def describe(self) -> str:
        """Render as ``name: type = default`` (or ``required``)."""
        tail = "required" if self.required else f"default {self.default!r}"
        text = f"{self.name}: {self.type} ({tail})"
        if self.help:
            text += f" — {self.help}"
        return text


@dataclass(frozen=True)
class Registration:
    """One registry entry: a named factory plus its parameter schema."""

    kind: str
    name: str
    factory: Callable[..., Any]
    summary: str = ""
    params: Tuple[ParamSpec, ...] = ()

    @property
    def param_names(self) -> Tuple[str, ...]:
        """The declared parameter names, in declaration order."""
        return tuple(spec.name for spec in self.params)

    def param(self, name: str) -> ParamSpec:
        """Look up one declared :class:`ParamSpec` by name."""
        for spec in self.params:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def filter_params(self, candidates: Mapping[str, Any]) -> Dict[str, Any]:
        """Keep the candidates this component declares, dropping ``None``.

        The bridge from flat legacy surfaces (``make_strategy``'s unified
        signature, ``ExperimentConfig``'s shared fields) to the strict
        per-component schema: one filter, used by every such surface, so
        they cannot drift apart.
        """
        declared = set(self.param_names)
        return {
            key: value
            for key, value in candidates.items()
            if key in declared and value is not None
        }

    def validate(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Check ``params`` against the schema; returns them as a dict.

        Unknown names, missing required parameters and type mismatches
        raise ``ValueError`` with the component's schema, so
        configuration mistakes (including CLI ``--app-param`` typos)
        read as usage errors rather than ``TypeError`` tracebacks from
        deep inside a factory.
        """
        known = set(self.param_names)
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(
                f"{self.kind} {self.name!r} got unknown parameter(s) "
                f"{', '.join(repr(name) for name in unknown)}; "
                f"accepted: {', '.join(self.param_names) or '(none)'}"
            )
        for spec in self.params:
            if spec.required and params.get(spec.name) is None:
                raise ValueError(
                    f"{self.kind} {self.name!r} requires parameter {spec.name!r} "
                    f"({spec.describe()})"
                )
            value = params.get(spec.name)
            if value is not None and not _type_matches(spec.type, value):
                raise ValueError(
                    f"{self.kind} {self.name!r} parameter {spec.name!r} "
                    f"expects {spec.type}, got {value!r}"
                )
        return dict(params)

    def describe(self) -> str:
        """One block of ``repro list`` output."""
        lines = [f"{self.name}" + (f" — {self.summary}" if self.summary else "")]
        for spec in self.params:
            lines.append(f"    {spec.describe()}")
        return "\n".join(lines)


#: accepted runtime types per ParamSpec.type tag (bool is excluded from
#: the numeric tags: ``True`` is a valid int in Python but almost
#: certainly a configuration mistake for an ``int`` parameter)
_TYPE_CHECKS: Dict[str, Callable[[Any], bool]] = {
    "int": lambda value: isinstance(value, int) and not isinstance(value, bool),
    "float": lambda value: (
        isinstance(value, (int, float)) and not isinstance(value, bool)
    ),
    "bool": lambda value: isinstance(value, bool),
    "str": lambda value: isinstance(value, str),
    "tuple": lambda value: isinstance(value, (tuple, list)),
}


def _type_matches(type_tag: str, value: Any) -> bool:
    check = _TYPE_CHECKS.get(type_tag)
    return True if check is None else check(value)


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class Registry:
    """A name -> :class:`Registration` mapping with lazy built-in loading.

    Parameters
    ----------
    kind:
        Human-readable component kind used in error messages ("app",
        "strategy", "overlay", "churn model").
    builtin_modules:
        Modules imported on first lookup; importing them runs their
        ``@registry.register(...)`` decorators. Keeping the list here
        (instead of importing eagerly) avoids import cycles between the
        registry and the component modules.
    """

    def __init__(self, kind: str, builtin_modules: Sequence[str] = ()):
        self.kind = kind
        self._builtin_modules = tuple(builtin_modules)
        self._entries: Dict[str, Registration] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        summary: str = "",
        params: Sequence[ParamSpec] = (),
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register ``factory`` under ``name``."""

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._entries:
                raise ValueError(f"duplicate {self.kind} registration {name!r}")
            self._entries[name] = Registration(
                kind=self.kind,
                name=name,
                factory=factory,
                summary=summary,
                params=tuple(params),
            )
            return factory

        return decorator

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        # Flag only after every import succeeds: a failed builtin import
        # must surface again on the next lookup, not leave a silently
        # truncated registry behind. (Re-imports of the modules that did
        # succeed are no-ops — Python caches them in sys.modules.)
        for module in self._builtin_modules:
            importlib.import_module(module)
        self._loaded = True

    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        self._ensure_loaded()
        return tuple(self._entries)

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __iter__(self) -> Iterator[Registration]:
        self._ensure_loaded()
        return iter(self._entries.values())

    def get(self, name: str) -> Registration:
        """Look up a registration; unknown names list the valid choices."""
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; expected one of {self.names()}"
            ) from None

    def create(self, name: str, *args: Any, **params: Any) -> Any:
        """Validate ``params`` and call the factory.

        Positional ``args`` carry the assembly context (``n``, ``rng``,
        ``horizon``, ...) that is not part of the declared schema.
        """
        registration = self.get(name)
        return registration.factory(*args, **registration.validate(params))

    def describe(self) -> str:
        """Multi-block human-readable catalog of every registration."""
        self._ensure_loaded()
        return "\n".join(entry.describe() for entry in self._entries.values())


# ----------------------------------------------------------------------
# The application plugin contract
# ----------------------------------------------------------------------
@dataclass
class BuildContext:
    """Everything an :class:`ApplicationPlugin` may need during assembly.

    Handed to the plugin hooks by the scenario builder
    (:class:`repro.experiments.runner.Experiment`); plugins draw any
    randomness from named :attr:`streams` so assembly stays deterministic
    and component-independent (the PR 1 determinism contract).
    """

    spec: "ScenarioSpec"
    sim: "Simulator"
    network: "Network"
    overlay: "Overlay"
    sampler: "PeerSampler"
    streams: "RandomStreams"


class ApplicationPlugin(ABC):
    """Assembly hooks contributed by one registered application.

    The experiment runner builds every scenario through this interface —
    it never imports an application module directly. Subclasses accept
    their declared parameters as keyword arguments (the registry
    validates them first) and implement:

    * :meth:`build_apps` — one :class:`~repro.core.api.Application` per
      node (called before nodes exist);
    * :meth:`build_metric` — the scalar performance metric sampled into
      the result's time series;

    and optionally:

    * :meth:`build_workload` — an external driver with a ``start()``
      method (e.g. the push gossip update injector);
    * :meth:`build_environment` — named substrate objects (placement
      maps, failure injectors, ...) exposed as attributes on the built
      :class:`~repro.experiments.runner.Experiment`;
    * :meth:`result_extras` — extra result values derived after the
      run; all keys land in ``ExperimentResult.extras``, and
      ``surviving_walks`` is additionally mirrored into the dedicated
      result field.
    """

    #: registry name (set by convention to match the registration)
    name: str = "abstract"
    #: overlay registry name used when the spec does not pick one
    default_overlay: str = "kout"
    #: whether the application is meaningful under churn schedules
    supports_churn: bool = True
    #: why churn is unsupported (shown in the rejection error)
    churn_note: str = ""

    @abstractmethod
    def build_apps(self, ctx: BuildContext) -> List["Application"]:
        """One application instance per node, in node-id order."""

    def build_workload(self, ctx: BuildContext, nodes: Sequence[Any]) -> Any:
        """An optional workload driver (``start()``-able), or ``None``."""
        return None

    def build_environment(
        self, ctx: BuildContext, nodes: Sequence[Any], apps: Sequence["Application"]
    ) -> Dict[str, Any]:
        """Optional named substrate objects, attached to the experiment."""
        return {}

    @abstractmethod
    def build_metric(
        self, ctx: BuildContext, nodes: Sequence[Any], workload: Any
    ) -> Callable[[float], Optional[float]]:
        """The sampled performance metric ``f(now) -> value``."""

    def result_extras(self, ctx: BuildContext, metric: Any) -> Dict[str, Any]:
        """Extra result values; exposed as ``ExperimentResult.extras``."""
        return {}


# ----------------------------------------------------------------------
# The global registries
# ----------------------------------------------------------------------
strategies = Registry(
    "strategy",
    builtin_modules=("repro.core.strategies", "repro.core.grading"),
)

applications = Registry(
    "app",
    builtin_modules=(
        "repro.apps.gossip_learning",
        "repro.apps.push_gossip",
        "repro.apps.chaotic_iteration",
        "repro.apps.replication",
    ),
)

overlays = Registry(
    "overlay",
    builtin_modules=("repro.overlay.kout", "repro.overlay.watts_strogatz"),
)

churn_models = Registry("churn model", builtin_modules=("repro.churn.models",))

backends = Registry("backend", builtin_modules=("repro.backends",))

#: the five registries, keyed by the section names ``repro list`` prints
ALL_REGISTRIES: Dict[str, Registry] = {
    "strategies": strategies,
    "applications": applications,
    "overlays": overlays,
    "churn-models": churn_models,
    "backends": backends,
}
