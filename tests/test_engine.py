"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order(sim):
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "middle")
    assert sim.run() == 3
    assert fired == ["early", "middle", "late"]


def test_same_time_events_run_fifo(sim):
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time(sim):
    times = []
    sim.schedule(2.5, lambda: times.append(sim.now))
    sim.schedule(7.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.5, 7.25]
    assert sim.now == 7.25


def test_run_until_is_inclusive(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(2.0001, fired.append, "c")
    processed = sim.run(until=2.0)
    assert processed == 2
    assert fired == ["a", "b"]
    assert sim.now == 2.0


def test_run_until_advances_clock_without_events(sim):
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_events_scheduled_during_run_are_processed(sim):
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_schedule_in_past_raises(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    handle.cancel()
    sim.run()
    assert fired == ["y"]


def test_cancel_is_idempotent(sim):
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.run() == 0


def test_cancel_drops_callback_references(sim):
    class Heavy:
        pass

    heavy = Heavy()
    handle = sim.schedule(1.0, lambda obj: None, heavy)
    handle.cancel()
    assert handle.args == ()


def test_stop_halts_run(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    assert sim.pending == 1


def test_run_resumes_after_stop(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "b")
    sim.run()
    sim.run()
    assert fired == ["a", "b"]


def test_max_events_limits_processing(sim):
    for _ in range(10):
        sim.schedule(1.0, lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.run() == 6


def test_step_processes_single_event(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_step_skips_cancelled(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    handle.cancel()
    assert sim.step() is True
    assert fired == ["b"]


def test_peek_time(sim):
    assert sim.peek_time() is None
    handle = sim.schedule(3.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    assert sim.peek_time() == 3.0
    handle.cancel()
    assert sim.peek_time() == 5.0


def test_processed_counter(sim):
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.processed == 5


def test_start_time_offset():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0
    with pytest.raises(SimulationError):
        sim.schedule_at(50.0, lambda: None)


def test_ties_broken_by_scheduling_order_across_times(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule_at(1.0, fired.append, 2)
    sim.schedule(0.5, lambda: sim.schedule_at(1.0, fired.append, 3))
    sim.run()
    assert fired == [1, 2, 3]


def test_pending_counts_cancelled_but_live_pending_does_not(sim):
    """Regression: ``pending`` is documented as an upper bound that
    includes lazily-cancelled events; ``live_pending`` is exact."""
    handles = [sim.schedule(float(t), lambda: None) for t in range(1, 5)]
    handles[0].cancel()
    handles[2].cancel()
    assert sim.pending == 4
    assert sim.live_pending == 2
    assert sim.run() == 2
    assert sim.pending == 0
    assert sim.live_pending == 0


def test_reschedule_reuses_handle(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, "tick")
    sim.run()
    assert fired == ["tick"]
    rearmed = sim.reschedule(handle, 2.0)
    assert rearmed is handle
    assert not handle.cancelled
    sim.run()
    assert fired == ["tick", "tick"]


def test_reschedule_in_past_raises(sim):
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.reschedule(handle, 0.5)


def test_reschedule_keeps_fifo_ties_with_fresh_events(sim):
    fired = []
    recycled = sim.schedule(1.0, fired.append, "old")
    sim.run()
    fired.clear()
    sim.reschedule(recycled, 5.0)
    sim.schedule_at(5.0, fired.append, "new")
    sim.run()
    assert fired == ["old", "new"]
