"""Unit tests for Algorithm 4 mechanics (the TokenAccountNode)."""

import pytest

from repro.core.protocol import DATA
from repro.core.strategies import (
    GeneralizedTokenAccount,
    ProactiveStrategy,
    PureReactiveStrategy,
    SimpleTokenAccount,
)
from tests.conftest import MiniSystem, ring_overlay


def test_proactive_node_sends_every_round():
    system = MiniSystem(
        ProactiveStrategy(), n=3, period=10.0, phases=[0.0, 0.0, 0.0]
    ).start()
    system.run(until=95.0)
    for node in system.nodes:
        assert node.proactive_sends == 10  # ticks at t = 0, 10, ..., 90
        assert node.account.balance == 0


def test_simple_banks_until_full_then_sends():
    """With C = 3 and no incoming traffic, a node banks 3 rounds, then
    sends proactively every round."""
    overlay = ring_overlay(2)
    system = MiniSystem(
        SimpleTokenAccount(3),
        overlay=overlay,
        period=10.0,
        phases=[0.0, 5.0],
        useful=False,
    )
    node = system.nodes[0]
    system.start()
    # After 3 ticks (t = 0, 10, 20) the account is full. But incoming
    # messages from node 1 also trigger reactive sends; use usefulness
    # False — the simple strategy reacts regardless (eq. 2), so isolate
    # node 0 by checking bank-up before node 1's first delivery arrives.
    system.sim.run(until=4.9)
    assert node.account.balance == 1
    assert node.proactive_sends == 0


def test_simple_proactive_fires_when_account_full():
    # Single sender with no incoming messages: a 2-ring where node 1 is
    # offline keeps node 0 undisturbed, but then node 0 cannot send
    # either. Instead give node 0 no in-links: overlay 0 -> 1, 1 -> 0
    # with node 1 never ticking (we simply never start it).
    overlay = ring_overlay(2)
    system = MiniSystem(
        SimpleTokenAccount(2), overlay=overlay, period=10.0, phases=[0.0, 0.0]
    )
    node = system.nodes[0]
    node.start()  # node 1 stays silent
    system.sim.run(until=100.0)
    # Ticks at 0, 10 bank to C = 2; from t = 20 on, every tick sends.
    assert node.account.balance == 2
    assert node.proactive_sends == 9  # t = 20, 30, ..., 100
    assert node.reactive_sends == 0


def test_reactive_send_spends_whole_balance_with_a1():
    overlay = ring_overlay(2)
    system = MiniSystem(
        GeneralizedTokenAccount(1, 10),
        overlay=overlay,
        period=100.0,
        phases=[0.0, 50.0],
        useful=True,
    )
    node0, node1 = system.nodes
    node0.start()
    node1.start()
    # Let node 0 bank a few tokens: ticks at 0, 100, 200 -> balance 3.
    # (Generalized proactive only fires at a = C, so no sends happen.)
    system.sim.run(until=249.0)
    assert node0.account.balance == 3
    # Deliver a useful message: with A = 1 node 0 spends everything.
    from repro.sim.network import Message

    node0.deliver(Message(src=1, dst=0, payload=7, kind=DATA, sent_at=249.0))
    assert node0.messages_received == 1
    assert node0.reactive_sends == 3
    assert node0.account.balance == 0
    assert node0.account.spent == 3


def test_account_never_negative_under_any_traffic():
    system = MiniSystem(
        GeneralizedTokenAccount(1, 5), n=5, period=5.0, useful=True
    ).start()
    original_withdraw = None
    for node in system.nodes:
        assert node.account.balance >= 0
    system.run(until=500.0)
    for node in system.nodes:
        assert node.account.balance >= 0


def test_pure_reactive_overdraft():
    overlay = ring_overlay(3)
    system = MiniSystem(
        PureReactiveStrategy(fanout=1, useful_only=False),
        overlay=overlay,
        period=10.0,
        phases=[0.0, 3.0, 6.0],
    ).start()
    system.nodes[0].kick()
    system.run(until=200.0)
    # The kicked message circulates forever (each receipt sends one copy).
    total_reactive = sum(node.reactive_sends for node in system.nodes)
    assert total_reactive > 10
    assert all(node.proactive_sends == 0 for node in system.nodes)


def test_offline_node_neither_banks_nor_sends():
    system = MiniSystem(SimpleTokenAccount(5), n=3, period=10.0)
    node = system.nodes[0]
    node.set_online(False)
    system.start()
    system.run(until=100.0)
    assert node.account.balance == 0
    assert node.proactive_sends == 0
    assert node.reactive_sends == 0


def test_message_lost_when_destination_goes_offline_mid_transfer():
    system = MiniSystem(
        ProactiveStrategy(), n=2, period=10.0, phases=[0.0, 0.0], transfer_time=0.1
    )
    system.nodes[0].start()  # node 1 silent but online: a valid peer
    # node 0 sends at t = 0; node 1 drops offline before delivery (t=0.1).
    system.sim.schedule_at(0.05, system.nodes[1].set_online, False)
    system.run(until=5.0)
    assert system.network.stats.lost_offline > 0
    assert system.apps[1].received == []


def test_proactive_with_no_online_peer_banks_token():
    overlay = ring_overlay(2)
    system = MiniSystem(
        ProactiveStrategy(), overlay=overlay, period=10.0, phases=[0.0, 0.0]
    )
    system.nodes[1].set_online(False)
    system.nodes[0].start()
    system.run(until=35.0)
    node = system.nodes[0]
    assert node.proactive_sends == 0
    assert node.skipped_no_peer == 4  # t = 0, 10, 20, 30
    # ProactiveStrategy has capacity 0: the banked tokens are clamped.
    assert node.account.balance == 0


def test_no_peer_bank_respects_capacity():
    overlay = ring_overlay(2)
    system = MiniSystem(
        SimpleTokenAccount(2), overlay=overlay, period=10.0, phases=[0.0, 0.0]
    )
    system.nodes[1].set_online(False)
    system.nodes[0].start()
    system.run(until=100.0)
    assert system.nodes[0].account.balance == 2  # clamped at C


def test_reactive_no_peer_refunds_tokens():
    overlay = ring_overlay(2)
    system = MiniSystem(
        GeneralizedTokenAccount(1, 10),
        overlay=overlay,
        period=10.0,
        phases=[0.0, 5.0],
        useful=True,
        transfer_time=1.0,
    )
    node0, node1 = system.nodes
    node0.start()
    node1.start()
    # node 1 sends at t = 5 (balance 0 -> proactive? simple C=10 banks).
    # Build up node 0's balance, then take node 1 offline right before a
    # message arrives so the reactive sends have no live peer.
    system.sim.run(until=31.0)  # node 0 banked at 0, 10, 20, 30
    balance_before = node0.account.balance
    assert balance_before >= 3
    # Deliver a useful message by hand while node 1 is offline.
    node1.set_online(False)
    from repro.sim.network import Message

    node0.deliver(Message(src=1, dst=0, payload=999, kind=DATA, sent_at=31.0))
    assert node0.account.balance == balance_before  # fully refunded
    assert node0.skipped_no_peer > 0


def test_unhandled_control_message_raises():
    system = MiniSystem(ProactiveStrategy(), n=2, period=10.0)
    from repro.sim.network import Message

    with pytest.raises(RuntimeError, match="unhandled control"):
        system.nodes[0].deliver(
            Message(src=1, dst=0, payload=None, kind="mystery", sent_at=0.0)
        )


def test_send_control_rejects_data_kind():
    system = MiniSystem(ProactiveStrategy(), n=2, period=10.0)
    with pytest.raises(ValueError):
        system.nodes[0].send_control(1, None, DATA)


def test_try_spend_token():
    system = MiniSystem(SimpleTokenAccount(5), n=2, period=10.0, initial_tokens=1)
    node = system.nodes[0]
    assert node.try_spend_token() is True
    assert node.account.balance == 0
    assert node.try_spend_token() is False


def test_kick_sends_without_touching_account():
    system = MiniSystem(SimpleTokenAccount(5), n=3, period=10.0, initial_tokens=3)
    node = system.nodes[0]
    assert node.kick(2) == 2
    assert node.account.balance == 3
    assert system.network.sent_per_node[0] == 2


def test_kick_while_offline_is_noop():
    system = MiniSystem(SimpleTokenAccount(5), n=3, period=10.0)
    system.nodes[0].set_online(False)
    assert system.nodes[0].kick() == 0


def test_useful_counter():
    overlay = ring_overlay(2)
    system = MiniSystem(
        ProactiveStrategy(),
        overlay=overlay,
        period=10.0,
        phases=[0.0, 0.0],
        useful=lambda payload: payload % 2 == 0,
    ).start()
    system.run(until=100.0)
    node = system.nodes[0]
    assert node.messages_received > 0
    assert 0 < node.useful_received <= node.messages_received


def test_app_lifecycle_hooks_fire():
    system = MiniSystem(ProactiveStrategy(), n=2, period=10.0).start()
    node = system.nodes[0]
    node.set_online(False)
    node.set_online(True)
    assert system.apps[0].online_events == [("offline", None), ("online", None)]


def test_app_bind_rejects_double_binding():
    system = MiniSystem(ProactiveStrategy(), n=2, period=10.0)
    with pytest.raises(RuntimeError):
        system.apps[0].bind(system.nodes[1])
