"""Additional runner coverage: averaging internals and result plumbing."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import _average_series, run_averaged, run_experiment
from repro.metrics.series import TimeSeries


def test_average_series_pointwise():
    a = TimeSeries([(0.0, 1.0), (1.0, 3.0)])
    b = TimeSeries([(0.0, 3.0), (1.0, 5.0)])
    merged = _average_series([a, b])
    assert list(merged) == [(0.0, 2.0), (1.0, 4.0)]


def test_average_series_truncates_to_shortest():
    a = TimeSeries([(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)])
    b = TimeSeries([(0.0, 3.0), (1.0, 3.0)])
    merged = _average_series([a, b])
    assert len(merged) == 2


def test_average_series_requires_input():
    with pytest.raises(ValueError):
        _average_series([])


def test_run_averaged_merges_token_series():
    config = ExperimentConfig(
        app="gossip-learning",
        strategy="randomized",
        spend_rate=2,
        capacity=4,
        n=50,
        periods=15,
        seed=3,
        collect_tokens=True,
    )
    averaged = run_averaged(config, repeats=2)
    assert averaged.tokens is not None
    assert not averaged.tokens.empty
    # The averaged balance stays within the capacity band.
    assert all(0 <= value <= 4 for value in averaged.tokens.values)


def test_run_averaged_single_repeat_is_plain_run():
    config = ExperimentConfig(
        app="push-gossip", strategy="simple", capacity=4, n=50, periods=15, seed=3
    )
    single = run_experiment(config)
    averaged = run_averaged(config, repeats=1)
    assert averaged.metric.values == single.metric.values


def test_experiment_exposes_substrate_objects():
    from repro.experiments.runner import Experiment

    config = ExperimentConfig(
        app="push-gossip", strategy="simple", capacity=4, n=50, periods=10, seed=3
    )
    experiment = Experiment(config)
    assert experiment.overlay.n == 50
    assert len(experiment.nodes) == 50
    assert experiment.injector is not None
    assert experiment.trace is None  # failure-free scenario
    result = experiment.run()
    assert result.elapsed > 0


def test_trace_scenario_builds_trace_and_schedule():
    from repro.experiments.runner import Experiment

    config = ExperimentConfig(
        app="push-gossip",
        strategy="simple",
        capacity=4,
        n=50,
        periods=10,
        seed=3,
        scenario="trace",
    )
    experiment = Experiment(config)
    assert experiment.trace is not None
    assert experiment.trace.n == 50
    assert experiment.schedule is not None
    # Initial node states must match the trace.
    for node in experiment.nodes:
        assert node.online == experiment.schedule.initial_online(node.node_id)


def test_replication_exposes_placement_and_injector():
    from repro.experiments.runner import Experiment

    config = ExperimentConfig(
        app="replication-repair",
        strategy="simple",
        capacity=4,
        n=50,
        periods=10,
        seed=3,
        fail_fraction=0.1,
    )
    experiment = Experiment(config)
    assert experiment.placement is not None
    assert len(experiment.placement) == 50  # objects_per_node = 1.0
    assert experiment.failure_detector is not None
    assert experiment.failure_injector is not None
