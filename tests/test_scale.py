"""Tests for the benchmark scale presets."""

import pytest

from repro.experiments.scale import ScalePreset, current_scale


def test_default_scale_is_ci(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    preset = current_scale()
    assert preset.name == "ci"


def test_scale_selected_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "medium")
    assert current_scale().name == "medium"
    monkeypatch.setenv("REPRO_SCALE", "paper")
    assert current_scale().name == "paper"


def test_scale_env_is_case_insensitive(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "  MEDIUM ")
    assert current_scale().name == "medium"


def test_unknown_scale_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "galactic")
    with pytest.raises(ValueError, match="galactic"):
        current_scale()


def test_paper_scale_matches_published_numbers(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "paper")
    preset = current_scale()
    assert preset.n == 5000
    assert preset.n_large == 500_000
    assert preset.periods == 1000
    assert preset.repeats == 10
    assert preset.trace_users == 40_658


def test_scales_are_ordered(monkeypatch):
    presets = []
    for name in ("ci", "medium", "paper"):
        monkeypatch.setenv("REPRO_SCALE", name)
        presets.append(current_scale())
    for smaller, larger in zip(presets, presets[1:]):
        assert smaller.n <= larger.n
        assert smaller.n_large <= larger.n_large
        assert smaller.periods <= larger.periods


def test_label_mentions_sizes():
    preset = ScalePreset(
        name="x", n=10, n_large=20, periods=5, repeats=2, trace_users=7
    )
    assert "N=10" in preset.label
    assert "periods=5" in preset.label
