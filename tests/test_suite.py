"""Tests for the parallel suite orchestration layer.

The core contract under test: a suite's results depend only on its
configs — never on the worker count, the scheduling order, or whether
execution fell back to the serial path.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.export import save_suite, suite_to_dict
from repro.experiments.runner import run_experiment
from repro.experiments.scale import worker_count
from repro.experiments.suite import (
    ExperimentSuite,
    SuiteExecutionError,
    SuiteProgress,
    SuiteRunner,
    run_configs,
    run_suite,
)

BASE = ExperimentConfig(
    app="gossip-learning",
    strategy="randomized",
    spend_rate=5,
    capacity=10,
    n=60,
    periods=20,
    seed=7,
)


def small_suite(cells: int = 4) -> ExperimentSuite:
    return ExperimentSuite.from_configs(
        "small",
        [BASE.with_overrides(seed=BASE.seed + i) for i in range(cells)],
    )


def result_fingerprint(result) -> tuple:
    """Everything that should be invariant across worker counts."""
    return (
        result.config.seed,
        tuple(result.metric.times),
        tuple(result.metric.values),
        result.data_messages,
        result.network.sent,
        result.network.delivered,
    )


# ----------------------------------------------------------------------
# ExperimentSuite construction
# ----------------------------------------------------------------------
def test_suite_requires_configs():
    with pytest.raises(ValueError, match="no configs"):
        ExperimentSuite(name="empty", configs=())


def test_from_grid_row_major_order():
    suite = ExperimentSuite.from_grid(
        "grid", BASE, spend_rate=(1, 5), capacity=(10, 20)
    )
    combos = [(c.spend_rate, c.capacity) for c in suite]
    assert combos == [(1, 10), (1, 20), (5, 10), (5, 20)]


def test_from_grid_requires_axes():
    with pytest.raises(ValueError, match="axis"):
        ExperimentSuite.from_grid("grid", BASE)


def test_repeated_matches_run_averaged_seeds():
    suite = ExperimentSuite.from_configs("one", [BASE]).repeated(3)
    assert [c.seed for c in suite] == [7, 1007, 2007]


def test_repeated_identity_for_single_repeat():
    suite = small_suite(2)
    assert suite.repeated(1) is suite


def test_repeated_groups_are_contiguous():
    suite = small_suite(2).repeated(2)
    assert [c.seed for c in suite] == [7, 1007, 8, 1008]


# ----------------------------------------------------------------------
# Determinism across worker counts and scheduling
# ----------------------------------------------------------------------
def test_serial_matches_direct_run_experiment():
    suite = small_suite(3)
    serial = SuiteRunner(workers=1).run(suite)
    direct = [run_experiment(config) for config in suite]
    assert [result_fingerprint(r) for r in serial.results()] == [
        result_fingerprint(r) for r in direct
    ]
    assert serial.workers == 1
    assert serial.serial_fallback_reason is None


def test_parallel_bit_identical_to_serial():
    """Same suite seed => identical results for any worker count."""
    suite = small_suite(5)
    serial = SuiteRunner(workers=1).run(suite)
    pooled = SuiteRunner(workers=4).run(suite)
    assert [result_fingerprint(r) for r in serial.results()] == [
        result_fingerprint(r) for r in pooled.results()
    ]
    assert [cell.index for cell in pooled.cells] == list(range(5))


def test_run_configs_preserves_input_order():
    configs = [BASE.with_overrides(seed=s) for s in (31, 3, 17)]
    results = run_configs("ordered", configs, workers=2)
    assert [r.config.seed for r in results] == [31, 3, 17]


def test_suite_result_accounting():
    suite = small_suite(3)
    outcome = run_suite(suite, workers=1)
    assert len(outcome.cells) == 3
    assert outcome.total_events == sum(r.events_processed for r in outcome.results())
    assert outcome.total_events > 0
    assert outcome.virtual_seconds == pytest.approx(
        sum(c.horizon for c in suite.configs)
    )
    assert outcome.events_per_second > 0
    assert outcome.cells_per_second > 0
    assert "cells" in outcome.summary()


# ----------------------------------------------------------------------
# Worker failure propagation
# ----------------------------------------------------------------------
def _explode_on_seed_9(config: ExperimentConfig):
    if config.seed == 9:
        raise RuntimeError("boom at seed 9")
    return run_experiment(config)


@pytest.mark.parametrize("workers", [1, 3])
def test_worker_failure_propagates(workers):
    suite = small_suite(4)  # seeds 7, 8, 9, 10
    runner = SuiteRunner(workers=workers, task=_explode_on_seed_9)
    with pytest.raises(SuiteExecutionError) as excinfo:
        runner.run(suite)
    assert excinfo.value.index == 2
    assert excinfo.value.config.seed == 9
    assert isinstance(excinfo.value.__cause__, RuntimeError)


# ----------------------------------------------------------------------
# Serial fallback on platforms without fork
# ----------------------------------------------------------------------
def test_fallback_to_serial_without_fork(monkeypatch):
    import repro.experiments.suite as suite_module

    monkeypatch.setattr(suite_module, "_fork_available", lambda: False)
    suite = small_suite(2)
    outcome = SuiteRunner(workers=4).run(suite)
    assert outcome.workers == 1
    assert outcome.serial_fallback_reason == "no-fork"
    assert [result_fingerprint(r) for r in outcome.results()] == [
        result_fingerprint(r) for r in SuiteRunner(workers=1).run(suite).results()
    ]


# ----------------------------------------------------------------------
# Worker-count resolution
# ----------------------------------------------------------------------
def test_worker_count_override_wins(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert worker_count(5) == 5


def test_worker_count_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert worker_count() == 3


def test_worker_count_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "many")
    with pytest.raises(ValueError, match="not an integer"):
        worker_count()
    monkeypatch.setenv("REPRO_WORKERS", "0")
    with pytest.raises(ValueError, match=">= 1"):
        worker_count()
    with pytest.raises(ValueError, match=">= 1"):
        worker_count(0)


def test_worker_count_defaults_to_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert worker_count() >= 1


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------
def test_progress_callback_sees_every_cell():
    seen = []
    suite = small_suite(3)
    SuiteRunner(workers=1, progress=seen.append).run(suite)
    assert [p.done for p in seen] == [1, 2, 3]
    assert all(p.total == 3 for p in seen)
    assert seen[-1].eta_seconds == pytest.approx(0.0)
    assert "3/3" in seen[-1].render()


def test_progress_eta_unknown_before_first_cell():
    progress = SuiteProgress(suite_name="s", done=0, total=4, index=0, elapsed=0.0)
    assert progress.eta_seconds == float("inf")
    assert "eta ?" in progress.render()


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def test_suite_export_round_trip(tmp_path):
    outcome = run_suite(small_suite(2), workers=1)
    document = suite_to_dict(outcome)
    assert document["format"] == "repro-suite-v1"
    assert len(document["cells"]) == 2
    assert document["cells"][0]["result"]["format"] == "repro-result-v1"
    path = tmp_path / "suite.json"
    save_suite(outcome, path)
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded["total_events"] == outcome.total_events
    assert loaded["cells"][1]["seed"] == 8
