"""Tests for the token-budgeted replication repair application (§5)."""

import random

import pytest

from repro.apps.replication import (
    FailureDetector,
    PermanentFailureInjector,
    ReplicationApp,
    ReplicationMetric,
    place_objects,
)
from repro.core.strategies import ProactiveStrategy, SimpleTokenAccount
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from tests.conftest import MiniSystem


def repl_system(strategy, n=5, target=3, **kwargs):
    system = MiniSystem(
        strategy,
        n=n,
        app_factory=lambda i: ReplicationApp(target),
        **kwargs,
    )
    return system


# ----------------------------------------------------------------------
# App state machine
# ----------------------------------------------------------------------
def test_hold_installs_view_including_self():
    system = repl_system(ProactiveStrategy())
    app = system.apps[0]
    app.hold(7, {1, 2})
    assert app.holder_views[7] == {0, 1, 2}
    assert app.deficit(7) == 0


def test_most_urgent_prefers_largest_deficit():
    system = repl_system(ProactiveStrategy())
    app = system.apps[0]
    app.hold(1, {1, 2})  # deficit 0
    app.hold(2, {1})  # deficit 1
    app.hold(3, set())  # deficit 2
    assert app.most_urgent_object() == 3


def test_most_urgent_rotates_over_ties():
    system = repl_system(ProactiveStrategy())
    app = system.apps[0]
    app.hold(1, {1})
    app.hold(2, {1})
    picks = {app.most_urgent_object() for _ in range(4)}
    assert picks == {1, 2}


def test_most_urgent_none_when_all_met():
    system = repl_system(ProactiveStrategy())
    app = system.apps[0]
    app.hold(1, {1, 2})
    assert app.most_urgent_object() is None


def test_create_message_anti_entropy_fallback():
    system = repl_system(ProactiveStrategy())
    app = system.apps[0]
    app.hold(1, {1, 2})
    app.hold(2, {1, 3})
    payloads = {app.create_message()[0] for _ in range(4)}
    assert payloads == {1, 2}  # rotates over healthy objects


def test_create_message_none_when_empty():
    system = repl_system(ProactiveStrategy())
    assert system.apps[0].create_message() is None


def test_adopt_under_replicated_object():
    system = repl_system(ProactiveStrategy(), target=3)
    app = system.apps[0]
    useful = app.update_state((9, frozenset({1, 2})), sender=1)
    assert useful is True
    assert app.holder_views[9] == {0, 1, 2}
    assert app.adopted == 1


def test_refuse_healthy_object():
    system = repl_system(ProactiveStrategy(), target=3)
    app = system.apps[0]
    useful = app.update_state((9, frozenset({1, 2, 3})), sender=1)
    assert useful is False
    assert 9 not in app.holder_views


def test_merge_views_for_held_object():
    system = repl_system(ProactiveStrategy(), target=3)
    app = system.apps[0]
    app.hold(9, {1})
    assert app.update_state((9, frozenset({1, 2})), sender=1) is True  # learned 2
    assert app.holder_views[9] == {0, 1, 2}
    assert app.update_state((9, frozenset({1, 2})), sender=2) is False  # no news


def test_null_payload_useless():
    system = repl_system(ProactiveStrategy())
    assert system.apps[0].update_state(None, sender=1) is False


def test_coholder_failure_cleans_views_and_reacts():
    system = repl_system(SimpleTokenAccount(5), target=3, initial_tokens=2)
    app, node = system.apps[0], system.nodes[0]
    app.hold(9, {1, 2})
    app.on_coholder_failed(2)
    assert app.holder_views[9] == {0, 1}
    assert app.detections == 1
    assert node.reactive_sends == 1  # one token spent on repair


def test_unrelated_failure_ignored():
    system = repl_system(SimpleTokenAccount(5), target=3, initial_tokens=2)
    app, node = system.apps[0], system.nodes[0]
    app.hold(9, {1, 2})
    app.on_coholder_failed(4)
    assert app.detections == 0
    assert node.reactive_sends == 0


def test_reactive_detection_can_be_disabled():
    system = MiniSystem(
        SimpleTokenAccount(5),
        n=3,
        app_factory=lambda i: ReplicationApp(3, reactive_detection=False),
        initial_tokens=2,
    )
    app, node = system.apps[0], system.nodes[0]
    app.hold(9, {1, 2})
    app.on_coholder_failed(2)
    assert app.holder_views[9] == {0, 1}  # view still cleaned
    assert node.reactive_sends == 0  # but no reactive repair


def test_target_validation():
    with pytest.raises(ValueError):
        ReplicationApp(0)


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
def test_place_objects():
    system = repl_system(ProactiveStrategy(), n=10, target=3)
    placement = place_objects(system.apps, 20, 3, random.Random(1))
    assert len(placement) == 20
    for object_id, holders in placement.items():
        assert len(holders) == 3
        for node_id in holders:
            assert object_id in system.apps[node_id].holder_views
            assert system.apps[node_id].holder_views[object_id] == holders


def test_place_objects_impossible_target():
    system = repl_system(ProactiveStrategy(), n=3)
    with pytest.raises(ValueError):
        place_objects(system.apps, 5, 4, random.Random(1))


# ----------------------------------------------------------------------
# Failure detector and injector
# ----------------------------------------------------------------------
def test_detector_notifies_believed_coholders_after_delay():
    system = repl_system(SimpleTokenAccount(5), n=4, target=3)
    system.apps[0].hold(9, {2})
    system.apps[1].hold(8, {3})  # unrelated to node 2
    detector = FailureDetector(system.sim, system.nodes, delay=5.0)
    detector.node_failed(2)
    system.sim.run(until=4.9)
    assert system.apps[0].holder_views[9] == {0, 2}  # not yet
    system.sim.run(until=5.0)
    assert system.apps[0].holder_views[9] == {0}
    assert system.apps[1].holder_views[8] == {1, 3}  # untouched
    assert detector.notifications == 1


def test_detector_skips_offline_nodes():
    system = repl_system(SimpleTokenAccount(5), n=3, target=3)
    system.apps[0].hold(9, {2})
    system.nodes[0].set_online(False)
    detector = FailureDetector(system.sim, system.nodes, delay=1.0)
    detector.node_failed(2)
    system.sim.run()
    assert detector.notifications == 0


def test_detector_delay_validation():
    system = repl_system(ProactiveStrategy())
    with pytest.raises(ValueError):
        FailureDetector(system.sim, system.nodes, delay=-1.0)


def test_injector_fails_expected_fraction():
    system = repl_system(SimpleTokenAccount(5), n=20, target=3)
    detector = FailureDetector(system.sim, system.nodes, delay=1.0)
    injector = PermanentFailureInjector(
        system.sim,
        system.nodes,
        detector,
        fail_fraction=0.25,
        rng=random.Random(3),
        start=10.0,
        end=20.0,
    )
    system.sim.run(until=100.0)
    assert len(injector.failed) == 5
    for node_id in injector.failed:
        assert not system.nodes[node_id].online
        assert not system.nodes[node_id].process.running


def test_injector_validation():
    system = repl_system(ProactiveStrategy())
    detector = FailureDetector(system.sim, system.nodes, delay=1.0)
    with pytest.raises(ValueError):
        PermanentFailureInjector(
            system.sim, system.nodes, detector, 1.0, random.Random(1), 0.0, 1.0
        )
    with pytest.raises(ValueError):
        PermanentFailureInjector(
            system.sim, system.nodes, detector, 0.5, random.Random(1), 5.0, 1.0
        )


# ----------------------------------------------------------------------
# Ground-truth metric
# ----------------------------------------------------------------------
def test_metric_counts_true_holders():
    system = repl_system(ProactiveStrategy(), n=4, target=3)
    metric = ReplicationMetric(system.nodes, n_objects=3, target_replication=3)
    system.apps[0].hold(0, {1, 2})
    system.apps[1].hold(0, {0, 2})
    system.apps[2].hold(0, {0, 1})
    system.apps[0].hold(1, set())
    # object 0: 3 holders (healthy); object 1: 1 holder; object 2: lost
    assert metric.lost_objects() == 1
    assert metric.under_replicated() == 1
    assert metric(0.0) == pytest.approx(1 / 2)  # of 2 surviving objects
    assert metric.mean_replication() == pytest.approx(2.0)


def test_metric_ignores_offline_nodes():
    system = repl_system(ProactiveStrategy(), n=3, target=2)
    metric = ReplicationMetric(system.nodes, n_objects=1, target_replication=2)
    system.apps[0].hold(0, {1})
    system.apps[1].hold(0, {0})
    assert metric.under_replicated() == 0
    system.nodes[1].set_online(False)
    assert metric.under_replicated() == 1


# ----------------------------------------------------------------------
# End-to-end through the runner
# ----------------------------------------------------------------------
def test_token_account_repairs_after_burst():
    result = run_experiment(
        ExperimentConfig(
            app="replication-repair",
            strategy="randomized",
            spend_rate=5,
            capacity=10,
            n=150,
            periods=80,
            seed=1,
            fail_fraction=0.15,
            fail_window=(0.3, 0.32),
            audit_sends=True,
        )
    )
    assert result.ratelimit_violations == []
    assert result.messages_per_node_per_period <= 1.02
    # The burst damaged replication...
    assert result.metric.max() > 0.1
    # ...and the system fully repaired by the end.
    assert result.metric.final() == 0.0


def test_proactive_repairs_slower_than_token_account():
    def recovery_time(strategy, a, c):
        result = run_experiment(
            ExperimentConfig(
                app="replication-repair",
                strategy=strategy,
                spend_rate=a,
                capacity=c,
                n=150,
                periods=80,
                seed=1,
                fail_fraction=0.15,
                fail_window=(0.3, 0.32),
                sample_interval=43.2,
            )
        )
        burst_end = result.metric.times[-1] * 0.32
        recovered = result.metric.tail(burst_end).first_time_below(0.02)
        assert recovered is not None
        return recovered - burst_end

    proactive = recovery_time("proactive", None, None)
    randomized = recovery_time("randomized", 5, 10)
    assert randomized < proactive


def test_config_rejects_trace_scenario():
    with pytest.raises(ValueError, match="permanent failures"):
        ExperimentConfig(
            app="replication-repair", strategy="proactive", scenario="trace"
        )


def test_config_validates_failure_parameters():
    with pytest.raises(ValueError):
        ExperimentConfig(
            app="replication-repair", strategy="proactive", fail_fraction=1.5
        )
    with pytest.raises(ValueError):
        ExperimentConfig(
            app="replication-repair", strategy="proactive", fail_window=(0.8, 0.2)
        )
    with pytest.raises(ValueError):
        ExperimentConfig(
            app="replication-repair", strategy="proactive", target_replication=0
        )