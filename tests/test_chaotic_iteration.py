"""Tests for chaotic asynchronous power iteration (§2.4, §4.1.3)."""

import math
import random

import numpy as np
import pytest

from repro.apps.chaotic_iteration import (
    ChaoticIterationApp,
    ChaoticIterationMetric,
    build_chaotic_apps,
)
from repro.core.strategies import ProactiveStrategy, RandomizedTokenAccount
from repro.overlay.matrix import column_normalized_matrix
from repro.overlay.watts_strogatz import watts_strogatz_overlay
from tests.conftest import MiniSystem


def test_initial_state_from_buffers():
    app = ChaoticIterationApp({1: 0.5, 2: 0.25}, initial_buffer=1.0)
    assert app.x == pytest.approx(0.75)
    assert app.buffers == {1: 1.0, 2: 1.0}


def test_update_recomputes_x():
    app = ChaoticIterationApp({1: 0.5, 2: 0.5}, initial_buffer=1.0)
    useful = app.update_state(3.0, sender=1)
    assert useful is True
    assert app.x == pytest.approx(0.5 * 3.0 + 0.5 * 1.0)
    assert app.updates_applied == 1


def test_no_change_is_useless():
    """u = 1 iff the message causes a change in the local state."""
    app = ChaoticIterationApp({1: 0.5, 2: 0.5}, initial_buffer=1.0)
    useful = app.update_state(1.0, sender=1)  # same as buffered value
    assert useful is False
    assert app.stale_messages == 1


def test_create_message_copies_state():
    app = ChaoticIterationApp({1: 1.0})
    assert app.create_message() == app.x


def test_message_from_stranger_rejected():
    app = ChaoticIterationApp({1: 1.0})
    with pytest.raises(ValueError, match="non-in-neighbor"):
        app.update_state(1.0, sender=99)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ChaoticIterationApp({1: 1.0}, initial_buffer=0.0)
    with pytest.raises(ValueError):
        ChaoticIterationApp({1: -0.5})


def test_build_apps_wires_column_weights():
    overlay = watts_strogatz_overlay(10, 4, 0.0, random.Random(1))
    apps = build_chaotic_apps(overlay)
    for i, app in enumerate(apps):
        assert set(app.in_weights) == set(overlay.in_neighbors(i))
        for k, weight in app.in_weights.items():
            assert weight == pytest.approx(1.0 / overlay.out_degree(k))


def test_metric_requires_reference_or_overlay():
    with pytest.raises(ValueError):
        ChaoticIterationMetric([], reference=None, overlay=None)


def test_metric_size_mismatch_rejected():
    with pytest.raises(ValueError):
        ChaoticIterationMetric([object(), object()], reference=np.ones(3))


# ----------------------------------------------------------------------
# Integration: the distributed iteration converges to the eigenvector
# ----------------------------------------------------------------------
def chaotic_system(strategy, n=24, seed=3, rewire=0.1):
    overlay = watts_strogatz_overlay(n, 4, rewire, random.Random(seed))
    apps = build_chaotic_apps(overlay)
    system = MiniSystem(
        strategy,
        overlay=overlay,
        period=10.0,
        transfer_time=0.1,
        app_factory=lambda i: apps[i],
        seed=seed,
    )
    metric = ChaoticIterationMetric(system.nodes, overlay=overlay)
    return system, metric


def test_proactive_iteration_converges():
    system, metric = chaotic_system(ProactiveStrategy())
    initial_angle = metric(0.0)
    system.start()
    system.run(until=3000.0)
    final_angle = metric(system.sim.now)
    assert final_angle < initial_angle / 10
    assert final_angle < 0.05


def test_token_account_iteration_converges_faster():
    """Compare on a slow-mixing rewired ring (the reason the paper swaps
    the 20-out overlay for Watts-Strogatz, §4.1.3).

    Note the token variant starts *slower*: accounts begin empty, so for
    the first few rounds the randomized strategy neither banks enough to
    send proactively nor has tokens to react with — the cold-start
    handicap §4.2 mentions. The comparison is made after warm-up.
    """

    def angle_course(strategy):
        system, metric = chaotic_system(strategy, n=80, rewire=0.05, seed=5)
        system.start()
        angles = []
        for horizon in (1600.0, 2400.0, 3200.0):
            system.run(until=horizon)
            angles.append(metric(horizon))
        return angles

    proactive_angles = angle_course(ProactiveStrategy())
    token_angles = angle_course(RandomizedTokenAccount(5, 10))
    # Same token grant rate, but the reactive path propagates changes
    # immediately: the token variant must lead at every late checkpoint.
    assert all(
        token < proactive
        for token, proactive in zip(token_angles, proactive_angles)
    )
    # And by the last checkpoint the lead must be substantial (the paper
    # reports a significant speedup for chaotic iteration).
    assert token_angles[-1] < proactive_angles[-1] / 2


def test_converged_vector_is_fixed_point():
    system, metric = chaotic_system(ProactiveStrategy(), n=16)
    system.start()
    system.run(until=5000.0)
    vector = metric.current_vector()
    matrix = column_normalized_matrix(system.overlay)
    # Angle between x and Ax should be ~0 once converged.
    image = matrix @ vector
    cosine = abs(vector @ image) / (np.linalg.norm(vector) * np.linalg.norm(image))
    assert math.acos(min(1.0, cosine)) < 0.02
