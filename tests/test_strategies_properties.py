"""Property-based tests (hypothesis) for the §3.1 strategy contract."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rounding import rand_round
from repro.core.strategies import (
    GeneralizedTokenAccount,
    RandomizedTokenAccount,
    SimpleTokenAccount,
)

# (A, C) pairs with 1 <= A <= C
ac_pairs = st.tuples(st.integers(1, 50), st.integers(0, 100)).map(
    lambda pair: (pair[0], pair[0] + pair[1])
)
balances = st.integers(0, 300)


@given(ac_pairs, balances)
def test_generalized_reactive_never_exceeds_balance(ac, balance):
    a_param, capacity = ac
    strategy = GeneralizedTokenAccount(a_param, capacity)
    assert 0 <= strategy.reactive(balance, True) <= balance or balance == 0
    assert strategy.reactive(balance, False) <= strategy.reactive(balance, True)


@given(ac_pairs, balances)
def test_randomized_reactive_never_exceeds_balance(ac, balance):
    a_param, capacity = ac
    strategy = RandomizedTokenAccount(a_param, capacity)
    assert 0 <= strategy.reactive(balance, True) <= balance or balance == 0
    assert strategy.reactive(balance, False) == 0.0


@given(ac_pairs)
def test_proactive_monotone_and_bounded(ac):
    a_param, capacity = ac
    for strategy in (
        SimpleTokenAccount(capacity),
        GeneralizedTokenAccount(a_param, capacity),
        RandomizedTokenAccount(a_param, capacity),
    ):
        previous = -1.0
        for balance in range(capacity + 5):
            p = strategy.proactive(balance)
            assert 0.0 <= p <= 1.0
            assert p >= previous
            previous = p


@given(ac_pairs)
def test_declared_capacity_is_minimal(ac):
    """token_capacity is the smallest C with proactive(C) = 1 (§3.4)."""
    a_param, capacity = ac
    for strategy in (
        SimpleTokenAccount(capacity),
        GeneralizedTokenAccount(a_param, capacity),
        RandomizedTokenAccount(a_param, capacity),
    ):
        c = strategy.token_capacity
        assert strategy.proactive(c) == 1.0
        if c > 0:
            assert strategy.proactive(c - 1) < 1.0


@given(ac_pairs, balances)
def test_reactive_monotone_in_balance(ac, balance):
    a_param, capacity = ac
    for strategy in (
        GeneralizedTokenAccount(a_param, capacity),
        RandomizedTokenAccount(a_param, capacity),
    ):
        for useful in (True, False):
            assert strategy.reactive(balance + 1, useful) >= strategy.reactive(
                balance, useful
            )


@given(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    st.integers(0, 2**31),
)
def test_rand_round_within_one_of_value(value, seed):
    result = rand_round(value, random.Random(seed))
    assert isinstance(result, int)
    assert abs(result - value) < 1.0 or result == value


@given(ac_pairs, balances, st.integers(0, 2**31))
@settings(max_examples=200)
def test_randomized_rounding_never_overdraws(ac, balance, seed):
    """randRound(reactive(a, u)) <= a for integer a — the Algorithm 4
    invariant that keeps guarded accounts non-negative."""
    a_param, capacity = ac
    strategy = RandomizedTokenAccount(a_param, capacity)
    desired = strategy.reactive(balance, True)
    rounded = rand_round(desired, random.Random(seed))
    assert rounded <= balance
