"""Tests for metric collectors."""

from repro.core.strategies import SimpleTokenAccount
from repro.metrics.collectors import MetricCollector, TokenBalanceCollector
from repro.sim.engine import Simulator
from tests.conftest import MiniSystem


def test_samples_on_grid():
    sim = Simulator()
    collector = MetricCollector(sim, 10.0, lambda now: now * 2).start()
    sim.run(until=35.0)
    assert collector.series.times == [0.0, 10.0, 20.0, 30.0]
    assert collector.series.values == [0.0, 20.0, 40.0, 60.0]


def test_none_samples_skipped():
    sim = Simulator()
    collector = MetricCollector(
        sim, 10.0, lambda now: None if now < 15.0 else 1.0
    ).start()
    sim.run(until=40.0)
    assert collector.series.times == [20.0, 30.0, 40.0]


def test_stop_ends_sampling():
    sim = Simulator()
    collector = MetricCollector(sim, 10.0, lambda now: 1.0).start()
    sim.schedule_at(25.0, collector.stop)
    sim.run(until=100.0)
    assert collector.series.times == [0.0, 10.0, 20.0]


def test_token_balance_collector_averages_online_nodes():
    system = MiniSystem(SimpleTokenAccount(10), n=4, period=10.0, initial_tokens=2)
    system.nodes[0].account.balance = 6
    system.nodes[3].set_online(False)
    collector = TokenBalanceCollector(system.sim, 5.0, system.nodes).start()
    system.sim.run(until=0.0)
    # Online balances: 6, 2, 2 -> mean 10/3.
    assert collector.series.values[0] == (6 + 2 + 2) / 3


def test_token_balance_collector_skips_all_offline():
    system = MiniSystem(SimpleTokenAccount(10), n=2, period=10.0)
    for node in system.nodes:
        node.set_online(False)
    collector = TokenBalanceCollector(system.sim, 5.0, system.nodes).start()
    system.sim.run(until=20.0)
    assert collector.series.empty
