"""Integration tests for the experiment runner — small-scale versions of
the paper's headline claims."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_averaged, run_experiment

# Small but meaningful scale: big enough for the qualitative effects,
# small enough to keep the whole file under a minute.
SMALL = dict(n=200, periods=80)


def small_config(**kwargs):
    base = dict(SMALL)
    base.update(kwargs)
    return ExperimentConfig(**base)


def test_determinism_same_seed_same_series():
    config = small_config(
        app="push-gossip", strategy="randomized", spend_rate=5, capacity=10, seed=3
    )
    a = run_experiment(config)
    b = run_experiment(config)
    assert a.metric.times == b.metric.times
    assert a.metric.values == b.metric.values
    assert a.data_messages == b.data_messages


def test_different_seeds_differ():
    config = small_config(app="push-gossip", strategy="simple", capacity=10)
    a = run_experiment(config.with_overrides(seed=1))
    b = run_experiment(config.with_overrides(seed=2))
    assert a.metric.values != b.metric.values


def test_proactive_rate_is_one_message_per_period():
    result = run_experiment(small_config(app="push-gossip", strategy="proactive"))
    assert result.messages_per_node_per_period == pytest.approx(1.0, abs=0.02)


def test_token_account_rate_never_exceeds_proactive():
    """The service's promise: same (or lower) overall communication rate."""
    for strategy, a, c in [
        ("simple", None, 10),
        ("generalized", 5, 10),
        ("randomized", 10, 20),
    ]:
        result = run_experiment(
            small_config(
                app="gossip-learning", strategy=strategy, spend_rate=a, capacity=c
            )
        )
        assert result.messages_per_node_per_period <= 1.02


def test_gossip_learning_token_account_beats_proactive():
    """The qualitative Figure 2 (top) claim at small scale."""
    proactive = run_experiment(
        small_config(app="gossip-learning", strategy="proactive")
    )
    randomized = run_experiment(
        small_config(
            app="gossip-learning", strategy="randomized", spend_rate=10, capacity=20
        )
    )
    assert randomized.metric.final() > 3 * proactive.metric.final()


def test_push_gossip_token_account_beats_proactive():
    """The qualitative Figure 2 (middle) claim at small scale."""
    proactive = run_experiment(small_config(app="push-gossip", strategy="proactive"))
    generalized = run_experiment(
        small_config(
            app="push-gossip", strategy="generalized", spend_rate=5, capacity=10
        )
    )
    # Compare steady-state average lag over the last half of the run.
    start = proactive.metric.times[-1] / 2
    assert generalized.metric.mean(start=start) < proactive.metric.mean(start=start)


def test_burst_bound_holds_in_full_runs():
    for strategy, a, c in [
        ("simple", None, 5),
        ("generalized", 1, 10),
        ("randomized", 5, 10),
    ]:
        result = run_experiment(
            small_config(
                app="push-gossip",
                strategy=strategy,
                spend_rate=a,
                capacity=c,
                audit_sends=True,
            )
        )
        assert result.ratelimit_violations == []


def test_trace_scenario_runs_and_audits_clean():
    result = run_experiment(
        small_config(
            app="push-gossip",
            strategy="randomized",
            spend_rate=5,
            capacity=10,
            scenario="trace",
            audit_sends=True,
        )
    )
    assert result.ratelimit_violations == []
    assert not result.metric.empty
    # Under churn some nodes are offline: the rate must be well below 1.
    assert result.messages_per_node_per_period < 0.9


def test_trace_scenario_pull_requests_flow():
    result = run_experiment(
        small_config(
            app="push-gossip",
            strategy="simple",
            capacity=10,
            scenario="trace",
        )
    )
    assert result.network.by_kind.get("pull-request", 0) > 0


def test_token_collection():
    result = run_experiment(
        small_config(
            app="gossip-learning",
            strategy="randomized",
            spend_rate=5,
            capacity=10,
            collect_tokens=True,
        )
    )
    assert result.tokens is not None
    assert not result.tokens.empty
    assert all(0 <= value <= 10 for value in result.tokens.values)


def test_gossip_learning_reports_surviving_walks():
    result = run_experiment(small_config(app="gossip-learning", strategy="proactive"))
    assert result.surviving_walks is not None
    assert 1 <= result.surviving_walks <= SMALL["n"]


def test_token_account_reduces_walk_count():
    """§4.2: 'the token account service has a side-effect of reducing the
    number of models at the cost of speeding them up. In fact, we can
    observe an emergent evolutionary process in which random walks fight
    for bandwidth.'

    Both protocols eventually collapse to few walks in a finite network;
    the evolutionary fight makes the token account collapse at least as
    far while its walks move an order of magnitude faster. Compared at a
    horizon where the proactive baseline still holds several walks.
    """
    proactive = run_experiment(
        small_config(app="gossip-learning", strategy="proactive", periods=25)
    )
    randomized = run_experiment(
        small_config(
            app="gossip-learning",
            strategy="randomized",
            spend_rate=10,
            capacity=20,
            periods=25,
        )
    )
    assert randomized.surviving_walks <= proactive.surviving_walks
    assert randomized.metric.final() > 3 * proactive.metric.final()


def test_averaged_runs_smooth_the_series():
    config = small_config(
        app="push-gossip", strategy="randomized", spend_rate=5, capacity=10
    )
    single = run_experiment(config)
    averaged = run_averaged(config, repeats=3)
    assert len(averaged.metric) <= len(single.metric)
    assert not averaged.metric.empty


def test_run_averaged_validates_repeats():
    config = small_config(app="push-gossip", strategy="proactive")
    with pytest.raises(ValueError):
        run_averaged(config, repeats=0)


def test_chaotic_iteration_runs_end_to_end():
    result = run_experiment(
        small_config(
            app="chaotic-iteration", strategy="generalized", spend_rate=5, capacity=10
        )
    )
    assert not result.metric.empty
    # Angle decreases over the run.
    assert result.metric.final() < result.metric.values[0]


def test_summary_formatting():
    result = run_experiment(small_config(app="gossip-learning", strategy="proactive"))
    text = result.summary()
    assert "gossip-learning" in text
    assert "msgs/node/period" in text
