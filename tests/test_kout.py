"""Unit tests for the random k-out overlay (§4.1)."""

import random
from collections import Counter

import pytest

from repro.overlay.kout import random_kout_overlay


def test_every_node_has_exactly_k_out_links():
    overlay = random_kout_overlay(100, 20, random.Random(1))
    for i in range(overlay.n):
        assert overlay.out_degree(i) == 20


def test_no_self_loops_or_duplicates():
    overlay = random_kout_overlay(50, 10, random.Random(2))
    for i in range(overlay.n):
        targets = overlay.out_neighbors(i)
        assert i not in targets
        assert len(set(targets)) == len(targets)


def test_deterministic_given_rng_seed():
    a = random_kout_overlay(60, 5, random.Random(7))
    b = random_kout_overlay(60, 5, random.Random(7))
    assert list(a.edges()) == list(b.edges())


def test_different_seeds_differ():
    a = random_kout_overlay(60, 5, random.Random(7))
    b = random_kout_overlay(60, 5, random.Random(8))
    assert list(a.edges()) != list(b.edges())


def test_targets_roughly_uniform():
    """In-degrees concentrate around k (law of large numbers check)."""
    n, k = 400, 20
    overlay = random_kout_overlay(n, k, random.Random(3))
    in_degrees = Counter()
    for _src, dst in overlay.edges():
        in_degrees[dst] += 1
    mean_in = sum(in_degrees.values()) / n
    assert mean_in == pytest.approx(k)
    # With n*k = 8000 draws, no node should be wildly over-represented.
    assert max(in_degrees.values()) < 3 * k


def test_minimum_viable_network():
    overlay = random_kout_overlay(3, 2, random.Random(1))
    for i in range(3):
        assert sorted(overlay.out_neighbors(i)) == sorted(j for j in range(3) if j != i)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        random_kout_overlay(10, 0, random.Random(1))
    with pytest.raises(ValueError):
        random_kout_overlay(10, 10, random.Random(1))
    with pytest.raises(ValueError):
        random_kout_overlay(5, 20, random.Random(1))
