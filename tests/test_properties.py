"""System-level property tests (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.trace import Interval, merge_intervals
from repro.core.account import OverspendError, TokenAccount
from repro.core.strategies import (
    GeneralizedTokenAccount,
    RandomizedTokenAccount,
    SimpleTokenAccount,
)
from repro.sim.engine import Simulator
from tests.conftest import MiniSystem


# ----------------------------------------------------------------------
# Engine: arbitrary schedules run in time order
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=60))
def test_events_always_execute_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.tuples(st.floats(0.0, 100.0), st.booleans()), min_size=1, max_size=40)
)
def test_cancellation_never_fires(events):
    sim = Simulator()
    fired = []
    handles = []
    for delay, cancel in events:
        handle = sim.schedule(delay, fired.append, delay)
        handles.append((handle, cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    expected = sorted(delay for (delay, cancel) in events if not cancel)
    assert sorted(fired) == expected


# ----------------------------------------------------------------------
# Trace merging: output is always a disjoint sorted cover of the input
# ----------------------------------------------------------------------
interval_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=0.001, max_value=100.0),
    ).map(lambda pair: Interval(pair[0], pair[0] + pair[1])),
    max_size=30,
)


@given(interval_lists)
def test_merge_produces_disjoint_sorted_intervals(intervals):
    merged = merge_intervals(intervals)
    for earlier, later in zip(merged, merged[1:]):
        assert earlier.end < later.start


@given(interval_lists)
def test_merge_preserves_coverage(intervals):
    merged = merge_intervals(intervals)

    def covered(time, intervals):
        return any(i.contains(time) for i in intervals)

    probes = [i.start for i in intervals] + [(i.start + i.end) / 2 for i in intervals]
    for probe in probes:
        assert covered(probe, intervals) == covered(probe, merged)


@given(interval_lists)
def test_merge_total_duration_never_shrinks_below_max_piece(intervals):
    merged = merge_intervals(intervals)
    total_merged = sum(i.duration for i in merged)
    if intervals:
        assert total_merged >= max(i.duration for i in intervals) - 1e-9
        assert total_merged <= sum(i.duration for i in intervals) + 1e-9


# ----------------------------------------------------------------------
# Token account: arbitrary grant/withdraw/refund sequences keep invariants
# ----------------------------------------------------------------------
operations = st.lists(
    st.tuples(st.sampled_from(["grant", "withdraw", "refund"]), st.integers(0, 5)),
    max_size=80,
)


@given(st.integers(0, 10), operations)
def test_account_invariants_under_arbitrary_operations(capacity, ops):
    account = TokenAccount(capacity=capacity)
    for op, amount in ops:
        if op == "grant":
            account.grant()
        elif op == "withdraw":
            try:
                account.withdraw(amount)
            except OverspendError:
                pass
        else:
            account.refund(amount)
        assert 0 <= account.balance <= capacity


# ----------------------------------------------------------------------
# Whole-system: short random simulations keep every protocol invariant
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    st.sampled_from(
        [
            ("simple", None, 5),
            ("generalized", 1, 5),
            ("generalized", 3, 6),
            ("randomized", 2, 4),
            ("randomized", 5, 10),
        ]
    ),
    st.integers(3, 10),
    st.integers(0, 2**30),
)
def test_simulation_invariants(spec, n, seed):
    name, a_param, capacity = spec
    if name == "simple":
        strategy = SimpleTokenAccount(capacity)
    elif name == "generalized":
        strategy = GeneralizedTokenAccount(a_param, capacity)
    else:
        strategy = RandomizedTokenAccount(a_param, capacity)
    system = MiniSystem(strategy, n=n, period=10.0, seed=seed, useful=True)
    system.start()
    system.run(until=300.0)
    for node in system.nodes:
        # Non-negativity and capacity invariants.
        assert 0 <= node.account.balance <= capacity
        # Conservation: granted tokens = spent + still held.
        assert node.account.granted == node.account.spent + node.account.balance
    stats = system.network.stats
    # Every sent message is delivered, lost, or still in flight.
    resolved = stats.delivered + stats.lost_offline + stats.lost_dropped
    assert resolved <= stats.sent
    in_flight = stats.sent - resolved
    assert in_flight >= 0
    if system.sim.pending == 0:
        assert in_flight == 0
