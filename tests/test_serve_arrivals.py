"""ArrivalSpec validation and arrival-schedule generator tests."""

from __future__ import annotations

import random

import pytest

from repro.scenarios import ARRIVAL_PATTERNS, ArrivalSpec
from repro.serve.arrivals import arrival_times


def times(spec, horizon, seed=1):
    return list(arrival_times(spec, horizon, random.Random(seed)))


def test_pattern_names_are_closed():
    assert ARRIVAL_PATTERNS == ("uniform", "poisson", "flash-crowd")


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(pattern="nope"),
        dict(rate=0.0),
        dict(rate=-5.0),
        dict(pattern="flash-crowd", rate=100.0, peak_rate=10.0),
        dict(pattern="flash-crowd", start_fraction=1.5),
        dict(pattern="flash-crowd", window_fraction=0.0),
        dict(pattern="flash-crowd", decay_fraction=-1.0),
    ],
)
def test_spec_validation(kwargs):
    with pytest.raises(ValueError):
        ArrivalSpec(**kwargs)


def test_labels_render():
    assert ArrivalSpec(pattern="poisson", rate=250).label() == "poisson(250/s)"
    assert "flash-crowd(10->100/s" in ArrivalSpec(
        pattern="flash-crowd", rate=10, peak_rate=100
    ).label()


def test_uniform_schedule_is_exactly_spaced():
    schedule = times(ArrivalSpec(pattern="uniform", rate=10.0), horizon=1.0)
    assert len(schedule) == 9  # first arrival at one gap, none at/after 1.0
    gaps = [b - a for a, b in zip(schedule, schedule[1:])]
    assert all(abs(gap - 0.1) < 1e-9 for gap in gaps)


def test_poisson_schedule_statistics():
    spec = ArrivalSpec(pattern="poisson", rate=200.0)
    schedule = times(spec, horizon=10.0)
    # 2000 expected; 5 sigma ~ 224
    assert 1700 < len(schedule) < 2300
    assert all(0.0 < t < 10.0 for t in schedule)
    assert schedule == sorted(schedule)


def test_schedules_are_deterministic_per_seed():
    spec = ArrivalSpec(pattern="flash-crowd", rate=50.0, peak_rate=500.0)
    assert times(spec, 5.0, seed=3) == times(spec, 5.0, seed=3)
    assert times(spec, 5.0, seed=3) != times(spec, 5.0, seed=4)


def test_flash_crowd_concentrates_in_the_window():
    horizon = 10.0
    spec = ArrivalSpec(
        pattern="flash-crowd",
        rate=20.0,
        peak_rate=600.0,
        start_fraction=0.4,
        window_fraction=0.2,
        decay_fraction=0.1,
    )
    schedule = times(spec, horizon)
    window = [t for t in schedule if 4.0 <= t < 6.0]
    before = [t for t in schedule if t < 4.0]
    # in-window density must dwarf the baseline (600/s vs 20/s)
    assert len(window) > 10 * max(1, len(before))
    # and the decay tail settles back toward the baseline by the end
    tail = [t for t in schedule if t >= 9.0]
    assert len(tail) < len(window) / 5


def test_zero_or_negative_horizon_rejected():
    with pytest.raises(ValueError):
        times(ArrivalSpec(), horizon=0.0)
