"""Tests for the 15-minute window smoothing of §4.2."""

import pytest

from repro.metrics.series import TimeSeries
from repro.metrics.smoothing import window_average


def test_simple_windows():
    series = TimeSeries([(0.0, 1.0), (1.0, 3.0), (10.0, 10.0), (11.0, 20.0)])
    smoothed = window_average(series, window=5.0)
    assert list(smoothed) == [(2.5, 2.0), (12.5, 15.0)]


def test_single_sample():
    series = TimeSeries([(7.0, 42.0)])
    smoothed = window_average(series, window=10.0)
    assert list(smoothed) == [(12.0, 42.0)]  # window aligned at first sample


def test_empty_series():
    assert window_average(TimeSeries(), 10.0).empty


def test_empty_windows_skipped():
    series = TimeSeries([(0.0, 1.0), (100.0, 2.0)])
    smoothed = window_average(series, window=10.0)
    assert len(smoothed) == 2
    assert smoothed.times[0] == 5.0
    assert smoothed.times[1] == 105.0


def test_window_alignment_at_first_sample():
    series = TimeSeries([(50.0, 1.0), (54.0, 3.0), (61.0, 5.0)])
    smoothed = window_average(series, window=10.0)
    assert list(smoothed) == [(55.0, 2.0), (65.0, 5.0)]


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        window_average(TimeSeries(), 0.0)


def test_mean_is_preserved_globally():
    series = TimeSeries([(float(i), float(i % 7)) for i in range(100)])
    smoothed = window_average(series, window=20.0)
    # Equal-occupancy windows: the global mean is exactly preserved.
    assert smoothed.mean() == pytest.approx(series.mean())


def test_smoothing_reduces_variance():
    values = [(float(i), float((-1) ** i)) for i in range(100)]
    series = TimeSeries(values)
    smoothed = window_average(series, window=10.0)
    assert max(abs(v) for v in smoothed.values) < 0.2
