"""Unit tests for the token account invariants."""

import pytest

from repro.core.account import OverspendError, TokenAccount


def test_initial_state():
    account = TokenAccount()
    assert account.balance == 0
    assert account.granted == 0
    assert account.spent == 0


def test_grant_and_withdraw():
    account = TokenAccount()
    account.grant()
    account.grant()
    assert account.balance == 2
    account.withdraw(1)
    assert account.balance == 1
    assert account.granted == 2
    assert account.spent == 1


def test_overspend_rejected():
    account = TokenAccount(initial=2)
    with pytest.raises(OverspendError):
        account.withdraw(3)
    assert account.balance == 2  # unchanged on failure


def test_overdraft_allowed_when_enabled():
    account = TokenAccount(allow_overdraft=True)
    account.withdraw(5)
    assert account.balance == -5


def test_negative_initial_requires_overdraft():
    with pytest.raises(ValueError):
        TokenAccount(initial=-1)
    assert TokenAccount(initial=-1, allow_overdraft=True).balance == -1


def test_capacity_clamps_grants():
    account = TokenAccount(capacity=3)
    for _ in range(10):
        account.grant()
    assert account.balance == 3
    assert account.granted == 3  # clamped grants are not counted


def test_capacity_zero_never_banks():
    account = TokenAccount(capacity=0)
    account.grant()
    assert account.balance == 0


def test_initial_above_capacity_rejected():
    with pytest.raises(ValueError):
        TokenAccount(initial=5, capacity=3)


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        TokenAccount(capacity=-1)


def test_refund_restores_tokens():
    account = TokenAccount(initial=5, capacity=10)
    account.withdraw(4)
    account.refund(3)
    assert account.balance == 4
    assert account.spent == 1


def test_refund_respects_capacity():
    account = TokenAccount(initial=3, capacity=3)
    account.withdraw(1)
    account.grant()  # back to 3
    account.refund(1)  # would exceed capacity -> clamped
    assert account.balance == 3


def test_refund_zero_is_noop():
    account = TokenAccount(initial=2, capacity=5)
    account.refund(0)
    assert account.balance == 2


def test_negative_amounts_rejected():
    account = TokenAccount(initial=2)
    with pytest.raises(ValueError):
        account.withdraw(-1)
    with pytest.raises(ValueError):
        account.refund(-1)


def test_withdraw_exact_balance():
    account = TokenAccount(initial=3)
    account.withdraw(3)
    assert account.balance == 0
