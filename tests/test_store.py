"""Result-store round-trips: hits are bit-identical, resume is sound.

Covers the PR 3 acceptance criteria at library level:

* a cache hit returns a bit-identical :class:`ExperimentResult`
  (every field, including ``extras``);
* a warm suite rerun simulates zero cells and reproduces the cold run
  bit-identically (guarded by poisoning the execution path);
* a schema-version bump invalidates stale entries and ``gc`` prunes
  them;
* a crashed/partial suite resumes: only the missing cells simulate and
  the merged outcome equals a from-scratch run.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.suite import ExperimentSuite, SuiteRunner
from repro.scenarios import ComponentRef, ScenarioSpec
from repro.store import (
    RESULT_SCHEMA_VERSION,
    ResultStore,
    StoreMissError,
    cell_key,
    diff_stores,
    task_identity,
)


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        app="gossip-learning",
        strategy="randomized",
        spend_rate=5,
        capacity=10,
        n=50,
        periods=10,
        seed=7,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def small_suite() -> ExperimentSuite:
    return ExperimentSuite.from_grid(
        "store-test", small_config(), spend_rate=(1, 5), capacity=(10, 20)
    )


def assert_results_identical(left, right, ignore_elapsed=False):
    """Field-by-field bit-identity check for two experiment results."""
    assert left.config == right.config
    assert left.label == right.label
    assert left.metric.times == right.metric.times
    assert left.metric.values == right.metric.values
    if left.tokens is None:
        assert right.tokens is None
    else:
        assert left.tokens.times == right.tokens.times
        assert left.tokens.values == right.tokens.values
    assert left.network == right.network
    assert left.data_messages == right.data_messages
    assert left.messages_per_node_per_period == right.messages_per_node_per_period
    assert left.ratelimit_violations == right.ratelimit_violations
    assert left.surviving_walks == right.surviving_walks
    assert left.extras == right.extras
    assert left.events_processed == right.events_processed
    if not ignore_elapsed:
        assert left.elapsed == right.elapsed


def poison_execution(monkeypatch):
    """Make any actual cell execution fail loudly."""

    def boom(*args, **kwargs):
        raise AssertionError("a cell was simulated, expected pure cache hits")

    monkeypatch.setattr("repro.experiments.suite._execute_cell", boom)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_cell_key_is_deterministic_and_seed_sensitive():
    config = small_config()
    assert cell_key(config) == cell_key(small_config())
    assert cell_key(config) != cell_key(small_config(seed=8))
    assert cell_key(config) != cell_key(small_config(capacity=11))


def test_cell_key_distinguishes_config_surface_from_spec():
    config = small_config()
    assert cell_key(config) != cell_key(config.to_spec())


def test_cell_key_distinguishes_task_and_schema_version():
    config = small_config()
    assert cell_key(config, task=run_experiment) == cell_key(config)
    assert cell_key(config, task=small_suite) != cell_key(config)
    assert cell_key(config, schema_version=RESULT_SCHEMA_VERSION + 1) != cell_key(
        config
    )


def test_cell_key_covers_scenario_specs():
    spec = ScenarioSpec(
        app=ComponentRef("gossip-learning"),
        strategy=ComponentRef.of("simple", capacity=5),
        n=40,
        periods=5,
    )
    assert cell_key(spec) == cell_key(spec)
    assert cell_key(spec) != cell_key(spec.with_overrides(seed=2))


def test_task_identity_default_matches_run_experiment():
    assert task_identity(None) == task_identity(run_experiment)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_cache_hit_returns_bit_identical_result(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = small_config()
    fresh = run_experiment(config, store=store)
    assert fresh.extras  # gossip learning populates extras
    cached = run_experiment(config, store=store)
    assert_results_identical(fresh, cached)
    resimulated = run_experiment(config)
    assert_results_identical(cached, resimulated, ignore_elapsed=True)


def test_round_trip_preserves_tokens_and_audit_fields(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = small_config(collect_tokens=True, audit_sends=True)
    fresh = run_experiment(config, store=store)
    assert fresh.tokens is not None
    cached = store.get(config)
    assert cached is not None
    assert_results_identical(fresh, cached)


def test_warm_suite_rerun_simulates_zero_cells(tmp_path, monkeypatch):
    store = ResultStore(tmp_path / "store")
    suite = small_suite()
    cold = SuiteRunner(workers=1, store=store).run(suite)
    assert cold.cache_hits == 0
    assert cold.simulated_cells == len(suite)
    assert len(store) == len(suite)

    poison_execution(monkeypatch)
    warm = SuiteRunner(workers=1, store=store).run(suite)
    assert warm.cache_hits == len(suite)
    assert warm.simulated_cells == 0
    for cold_cell, warm_cell in zip(cold.cells, warm.cells):
        assert warm_cell.cached
        assert_results_identical(cold_cell.result, warm_cell.result)


def test_pooled_run_persists_and_serves_across_worker_counts(tmp_path):
    store = ResultStore(tmp_path / "store")
    suite = small_suite()
    pooled = SuiteRunner(workers=2, store=store).run(suite)
    serial = SuiteRunner(workers=1, store=store).run(suite)
    assert serial.cache_hits == len(suite)
    for left, right in zip(pooled.cells, serial.cells):
        assert_results_identical(left.result, right.result)


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
def test_schema_version_bump_invalidates_stale_entries(tmp_path):
    root = tmp_path / "store"
    config = small_config()
    old_store = ResultStore(root, schema_version=1)
    result = run_experiment(config)
    old_store.put(config, result)
    assert old_store.get(config) is not None

    new_store = ResultStore(root, schema_version=2)
    assert new_store.get(config) is None  # stale entry never hits
    removed, kept = new_store.gc()
    assert (removed, kept) == (1, 0)
    assert len(new_store) == 0


def test_gc_removes_corrupt_entries_and_all_flag(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = small_config()
    store.put(config, run_experiment(config))
    corrupt = store.entries_dir / ("0" * 64 + ".pkl")
    corrupt.write_bytes(b"not a pickle")
    assert store.get(config) is not None
    removed, kept = store.gc()
    assert (removed, kept) == (1, 1)
    removed, kept = store.gc(remove_all=True)
    assert (removed, kept) == (1, 0)
    assert len(store) == 0


def test_gc_sweeps_orphaned_temp_files(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = small_config()
    store.put(config, run_experiment(config))
    orphan = store.entries_dir / ("1" * 64 + ".tmp.12345")
    orphan.write_bytes(b"torn write")
    removed, kept = store.gc()
    assert (removed, kept) == (1, 1)
    assert not orphan.exists()
    assert store.get(config) is not None


def test_corrupt_entry_reads_as_miss_and_is_rewritten(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = small_config()
    store.put(config, run_experiment(config))
    path = store.path_for_key(store.key_for(config))
    path.write_bytes(pickle.dumps({"format": "something-else"}))
    assert store.get(config) is None
    rerun = run_experiment(config, store=store)
    assert_results_identical(store.get(config), rerun)


# ----------------------------------------------------------------------
# Crash / resume
# ----------------------------------------------------------------------
def test_partial_suite_resumes_bit_identically(tmp_path, monkeypatch):
    suite = small_suite()
    reference = SuiteRunner(workers=1).run(suite)

    # Simulate a suite killed after two cells: only those made it to disk.
    store = ResultStore(tmp_path / "store")
    partial = ExperimentSuite.from_configs("partial", suite.configs[:2])
    SuiteRunner(workers=1, store=store).run(partial)
    assert len(store) == 2

    resumed = SuiteRunner(workers=1, store=store).run(suite)
    assert resumed.cache_hits == 2
    assert resumed.simulated_cells == len(suite) - 2
    for reference_cell, resumed_cell in zip(reference.cells, resumed.cells):
        assert_results_identical(
            reference_cell.result, resumed_cell.result, ignore_elapsed=True
        )

    # And the now-complete store replays the whole suite without simulating.
    poison_execution(monkeypatch)
    replay = SuiteRunner(workers=1, store=store, offline=True).run(suite)
    assert replay.cache_hits == len(suite)


# ----------------------------------------------------------------------
# Offline mode
# ----------------------------------------------------------------------
def test_offline_requires_store():
    with pytest.raises(ValueError, match="offline"):
        SuiteRunner(workers=1, offline=True)


def test_offline_miss_raises_store_miss_error(tmp_path):
    store = ResultStore(tmp_path / "store")
    suite = small_suite()
    runner = SuiteRunner(workers=1, store=store, offline=True)
    with pytest.raises(StoreMissError) as excinfo:
        runner.run(suite)
    assert len(excinfo.value.missing) == len(suite)


# ----------------------------------------------------------------------
# Task separation, listings, diff
# ----------------------------------------------------------------------
def final_metric_task(config):
    """A custom cell task used to check task-keyed separation."""
    return run_experiment(config).metric.final()


def test_distinct_tasks_never_share_entries(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = small_config()
    store.put(config, 1.25, task=final_metric_task)
    assert store.get(config) is None  # default task must not see it
    assert store.get(config, task=final_metric_task) == 1.25


def test_entries_listing_carries_metadata(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = small_config()
    store.put(config, run_experiment(config))
    (entry,) = list(store.entries())
    assert entry.label == config.label()
    assert entry.seed == config.seed
    assert entry.config_kind == "ExperimentConfig"
    assert entry.summary["n"] == config.n
    assert entry.summary["periods"] == config.periods
    assert "final_metric" in entry.summary
    assert not entry.stale


def test_diff_stores_buckets(tmp_path):
    left = ResultStore(tmp_path / "left")
    right = ResultStore(tmp_path / "right")
    shared = small_config()
    shared_result = run_experiment(shared)
    left.put(shared, shared_result)
    right.put(shared, shared_result)
    only_left = small_config(seed=11)
    left.put(only_left, run_experiment(only_left))
    report = diff_stores(left, right)
    assert [entry.label for entry in report["matching"]] == [shared.label()]
    assert [entry.seed for entry in report["only_left"]] == [11]
    assert report["only_right"] == []
    assert report["differing"] == []


def test_diff_stores_flags_divergent_result_content(tmp_path):
    """Same key, drifted series content -> 'differing', even if the final
    metric happens to match (the digest covers the whole series)."""
    left = ResultStore(tmp_path / "left")
    right = ResultStore(tmp_path / "right")
    config = small_config()
    result = run_experiment(config)
    left.put(config, result)
    drifted = run_experiment(config)
    drifted.metric.values[0] += 1e-9  # mid-series drift, final value intact
    right.put(config, drifted)
    report = diff_stores(left, right)
    assert [entry.label for entry in report["differing"]] == [config.label()]
    assert report["matching"] == []


def test_diff_stores_ignores_wall_clock_differences(tmp_path):
    """Two independent runs of one config must compare as matching."""
    left = ResultStore(tmp_path / "left")
    right = ResultStore(tmp_path / "right")
    config = small_config()
    left.put(config, run_experiment(config))
    right.put(config, run_experiment(config))  # different elapsed wall-clock
    report = diff_stores(left, right)
    assert len(report["matching"]) == 1
    assert report["differing"] == []
