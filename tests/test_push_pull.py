"""Tests for the push-pull gossip extension (§2.3)."""

from repro.apps.push_gossip import PushPullGossipApp
from repro.core.strategies import SimpleTokenAccount
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.sim.network import Message
from tests.conftest import MiniSystem


def pp_system(strategy, n=3, **kwargs):
    return MiniSystem(
        strategy,
        n=n,
        app_factory=lambda i: PushPullGossipApp(),
        **kwargs,
    )


def deliver(node, payload, src=1):
    node.deliver(
        Message(src=src, dst=node.node_id, payload=payload, kind="data", sent_at=0.0)
    )


def test_fresher_push_adopted_no_reply():
    system = pp_system(SimpleTokenAccount(5), initial_tokens=3)
    node = system.nodes[0]
    deliver(node, 7)
    assert system.apps[0].update == 7
    assert system.apps[0].replies_sent == 0


def test_stale_push_triggers_paid_reply():
    system = pp_system(SimpleTokenAccount(5), initial_tokens=3)
    node = system.nodes[0]
    system.apps[0].update = 10
    balance_before = node.account.balance
    deliver(node, 4, src=1)
    assert system.apps[0].replies_sent == 1
    # One token for the reply; the simple strategy's reactive path also
    # fires (it reacts to any message while tokens remain).
    assert node.account.balance < balance_before
    system.sim.run()
    assert system.apps[1].update == 10  # the reply delivered our update


def test_no_reply_without_tokens():
    system = pp_system(SimpleTokenAccount(5), initial_tokens=0)
    node = system.nodes[0]
    system.apps[0].update = 10
    deliver(node, 4)
    assert system.apps[0].replies_sent == 0
    assert system.apps[0].replies_suppressed == 1


def test_equal_update_no_reply():
    """Neither side is ahead: replying would waste a token."""
    system = pp_system(SimpleTokenAccount(5), initial_tokens=3)
    node = system.nodes[0]
    system.apps[0].update = 10
    deliver(node, 10)
    assert system.apps[0].replies_sent == 0
    assert system.apps[0].replies_suppressed == 0


def test_null_push_gets_reply():
    """Algorithm 2 pushes its initial null update; a push-pull peer that
    knows something answers."""
    system = pp_system(SimpleTokenAccount(5), initial_tokens=3)
    node = system.nodes[0]
    system.apps[0].update = 10
    deliver(node, None)
    assert system.apps[0].replies_sent == 1


def test_push_pull_runs_in_harness():
    result = run_experiment(
        ExperimentConfig(
            app="push-pull-gossip",
            strategy="randomized",
            spend_rate=5,
            capacity=10,
            n=150,
            periods=60,
            seed=2,
            audit_sends=True,
        )
    )
    assert result.ratelimit_violations == []
    assert result.messages_per_node_per_period <= 1.02
    assert not result.metric.empty


def test_push_pull_not_worse_than_push():
    shared = dict(
        strategy="randomized", spend_rate=5, capacity=10, n=200, periods=80, seed=1
    )
    push = run_experiment(ExperimentConfig(app="push-gossip", **shared))
    pull = run_experiment(ExperimentConfig(app="push-pull-gossip", **shared))
    start = push.metric.times[-1] / 2
    assert pull.metric.mean(start=start) <= push.metric.mean(start=start) * 1.1
