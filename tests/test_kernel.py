"""The shared decision kernel: scalar ≡ batch, one implementation everywhere.

The refactor's contract is that `repro.serve` and the vectorized
simulation backend import the *same* Algorithm-4 kernel, and that the
columnar `decide_many` is bit-identical to a sequence of scalar
`decide_one` calls on the same generator (the two-uniforms-per-decision
RNG contract). These tests pin both, strategy by strategy, across every
registered strategy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernel import (
    VERDICT_REASONS,
    DecisionKernel,
    strategy_tables,
)
from repro.registry import strategies as strategy_registry
from repro.serve import TokenAccountLimiter

#: one representative parameterization per registered strategy
STRATEGY_PARAMS = {
    "proactive": {},
    "simple": {"capacity": 5},
    "generalized": {"spend_rate": 3, "capacity": 6},
    "randomized": {"spend_rate": 3, "capacity": 6},
    "graded-generalized": {"spend_rate": 3, "capacity": 6},
    "graded-randomized": {"spend_rate": 3, "capacity": 6},
    "reactive": {},
}


def all_registered_strategies():
    names = strategy_registry.names()
    assert set(names) == set(STRATEGY_PARAMS), (
        "a strategy was (un)registered; update STRATEGY_PARAMS so the "
        "kernel equivalence suite keeps covering the registry"
    )
    return names


def make_strategy(name):
    return strategy_registry.create(name, **STRATEGY_PARAMS[name])


def balances_for(strategy, rng):
    capacity = strategy.token_capacity
    if capacity is None:
        # overdraft strategies roam: exercise negative and large balances
        return rng.integers(-20, 200, size=512)
    return rng.integers(0, capacity + 1, size=512)


# ----------------------------------------------------------------------
# scalar == batch, per strategy, shared RNG stream
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", all_registered_strategies())
@pytest.mark.parametrize("useful", (True, False))
def test_decide_many_matches_scalar_stream(name, useful):
    """One seeded generator, consumed batch-wise vs one-at-a-time."""
    strategy = make_strategy(name)
    kernel = strategy.decision_kernel
    balances = balances_for(strategy, np.random.default_rng(99))

    batch_rng = np.random.default_rng(4242)
    codes = kernel.decide_many(balances, useful, batch_rng)

    scalar_rng = np.random.default_rng(4242)
    scalar = [
        kernel.decide_one(int(balance), useful, scalar_rng)
        for balance in balances
    ]
    assert [VERDICT_REASONS[code] for code in codes.tolist()] == scalar


@pytest.mark.parametrize("name", all_registered_strategies())
def test_decide_many_mixed_usefulness_matches_scalar(name):
    strategy = make_strategy(name)
    kernel = strategy.decision_kernel
    rng = np.random.default_rng(7)
    balances = balances_for(strategy, rng)
    useful = rng.random(len(balances)) < 0.5

    codes = kernel.decide_many(balances, useful, np.random.default_rng(11))
    scalar_rng = np.random.default_rng(11)
    scalar = [
        kernel.decide_one(int(balance), bool(flag), scalar_rng)
        for balance, flag in zip(balances, useful)
    ]
    assert [VERDICT_REASONS[code] for code in codes.tolist()] == scalar


def test_two_uniforms_consumed_even_when_not_needed():
    """The stream contract: every decision advances the RNG by exactly 2."""
    strategy = make_strategy("simple")  # deterministic tables: no draw *needed*
    kernel = strategy.decision_kernel
    rng = np.random.default_rng(0)
    kernel.decide_one(3, True, rng)
    probe = np.random.default_rng(0)
    probe.random(2)
    assert rng.random() == probe.random()


def test_decide_one_falls_back_for_graded_usefulness():
    """Non-boolean grades bypass the LUT and use the strategy formulas."""
    strategy = make_strategy("graded-generalized")
    kernel = strategy.decision_kernel
    rng = np.random.default_rng(1)
    # grade 1.0 (a float, not True) must behave like useful=True
    verdicts_float = [kernel.decide_one(5, 1.0, np.random.default_rng(s)) for s in range(40)]
    verdicts_bool = [kernel.decide_one(5, True, np.random.default_rng(s)) for s in range(40)]
    assert verdicts_float == verdicts_bool
    assert kernel.decide_one(5, 0.5, rng) in (None, "reactive", "proactive")


def test_decide_one_drawn_is_decide_one():
    strategy = make_strategy("randomized")
    kernel = strategy.decision_kernel
    for seed in range(25):
        rng = np.random.default_rng(seed)
        probe = np.random.default_rng(seed)
        expected = kernel.decide_one(4, True, rng)
        assert (
            kernel.decide_one_drawn(4, True, probe.random(), probe.random())
            == expected
        )


# ----------------------------------------------------------------------
# one kernel instance shared across layers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", all_registered_strategies())
def test_strategy_caches_one_kernel_instance(name):
    strategy = make_strategy(name)
    assert strategy.decision_kernel is strategy.decision_kernel


def test_limiter_and_vectorized_backend_share_the_strategy_kernel():
    """The serving layer and the simulation backend import one kernel."""
    from repro.backends.vectorized import _PushGossipKernel
    from repro.scenarios import ComponentRef, ScenarioSpec

    strategy = make_strategy("generalized")
    limiter = TokenAccountLimiter(strategy, period=1.0, seed=1)
    assert limiter._kernel is strategy.decision_kernel

    spec = ScenarioSpec(
        app=ComponentRef("push-gossip"),
        strategy=ComponentRef.of("generalized", spend_rate=3, capacity=6),
        n=64,
        periods=5,
        backend="vectorized",
    )
    sim = _PushGossipKernel(spec)
    assert sim.kernel is sim.strategy.decision_kernel
    assert isinstance(sim.kernel, DecisionKernel)
    # and it is the very kernel class the limiter decides with
    assert type(limiter._kernel) is type(sim.kernel)


def test_strategy_tables_match_direct_formulas():
    strategy = make_strategy("generalized")
    max_balance, proactive, useful, useless = strategy_tables(strategy)
    assert max_balance == strategy.token_capacity
    for balance in range(max_balance + 1):
        assert proactive[balance] == strategy.proactive(balance)
        assert useful[balance] == strategy.reactive(balance, True)
        assert useless[balance] == strategy.reactive(balance, False)


def test_kernel_lut_index_clips_only_unbounded_strategies():
    bounded = make_strategy("simple").decision_kernel
    unbounded = make_strategy("reactive").decision_kernel
    assert not bounded.clip_index
    assert unbounded.clip_index
    assert unbounded.lut_index(np.array([-5, 1000])).max() <= unbounded.lut_max
    assert unbounded.lut_index(np.array([-5, 1000])).min() >= 0


def test_kernel_is_importable_standalone():
    strategy = make_strategy("simple")
    kernel = DecisionKernel(strategy)
    rng = np.random.default_rng(3)
    assert kernel.decide_one(5, True, rng) == "reactive"
