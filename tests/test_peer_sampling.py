"""Unit tests for the peer sampling service (selectPeer of §2.1)."""

import random
from collections import Counter

from repro.overlay.graph import Overlay
from repro.overlay.peer_sampling import PeerSampler
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import SimNode


def wired(out_neighbors, seed=1):
    overlay = Overlay(out_neighbors)
    network = Network(Simulator(), 1.0)
    nodes = [SimNode(i) for i in range(overlay.n)]
    network.register_all(nodes)
    sampler = PeerSampler(overlay, network, random.Random(seed))
    return sampler, nodes


def test_returns_only_out_neighbors():
    sampler, _ = wired([[1, 2], [0], [0]])
    for _ in range(100):
        assert sampler.select_peer(0) in (1, 2)
        assert sampler.select_peer(1) == 0


def test_uniform_over_online_neighbors():
    sampler, _ = wired([[1, 2, 3, 4], [0], [0], [0], [0]], seed=3)
    counts = Counter(sampler.select_peer(0) for _ in range(8000))
    for neighbor in (1, 2, 3, 4):
        assert abs(counts[neighbor] / 8000 - 0.25) < 0.03


def test_skips_offline_neighbors():
    sampler, nodes = wired([[1, 2], [0], [0]])
    nodes[1].set_online(False)
    for _ in range(50):
        assert sampler.select_peer(0) == 2


def test_none_when_all_neighbors_offline():
    sampler, nodes = wired([[1, 2], [0], [0]])
    nodes[1].set_online(False)
    nodes[2].set_online(False)
    assert sampler.select_peer(0) is None


def test_none_when_no_neighbors():
    sampler, _ = wired([[1], []])
    assert sampler.select_peer(1) is None


def test_fallback_path_still_uniform():
    """With most neighbors offline, the explicit-filter path is used."""
    sampler, nodes = wired([[1, 2, 3, 4, 5, 6, 7, 8], [0]] + [[0]] * 7, seed=5)
    for node in nodes[1:8]:
        node.set_online(False)  # only neighbor 8 stays online
    for _ in range(50):
        assert sampler.select_peer(0) == 8


def test_online_neighbors_helper():
    sampler, nodes = wired([[1, 2, 3], [0], [0], [0]])
    nodes[2].set_online(False)
    assert sampler.online_neighbors(0) == [1, 3]
    assert sampler.online_neighbors(1) == [0]
