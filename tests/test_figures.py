"""Tests for the per-figure harnesses (micro scale)."""

import pytest

from repro.experiments.figures import (
    QUICK_SELECTION,
    REPRESENTATIVE_SELECTION,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
)
from repro.experiments.scale import ScalePreset

# Periods must comfortably exceed the largest C in the selection: with
# zero initial tokens, a generalized-strategy node is silent for its
# first C rounds (the cold-start handicap the paper notes in §4.2).
MICRO = ScalePreset(
    name="micro", n=80, n_large=150, periods=60, repeats=1, trace_users=400
)


def test_selection_covers_text_mentions():
    """§4.2 discusses these settings by name; they must be in the plot."""
    assert ("proactive", None, None) in REPRESENTATIVE_SELECTION
    assert ("generalized", 5, 10) in REPRESENTATIVE_SELECTION
    assert ("randomized", 10, 20) in REPRESENTATIVE_SELECTION
    assert set(QUICK_SELECTION) <= set(REPRESENTATIVE_SELECTION)


def test_figure1_series_and_summary():
    data = figure1(scale=MICRO, seed=2)
    assert set(data.series) == {"online", "has been online", "up", "down"}
    online = data.series["online"]
    ever = data.series["has been online"]
    assert len(online) == 48  # hourly midpoints over two days
    # ever-online is monotone and ends between 0.6 and 0.75 (Figure 1).
    assert ever.values == sorted(ever.values)
    assert 0.55 <= ever.final() <= 0.80
    # logouts are rendered negative, logins positive.
    assert all(v <= 0 for v in data.series["down"].values)
    assert all(v >= 0 for v in data.series["up"].values)
    summary = data.extras["summary"]
    assert 0.25 <= summary.never_online_fraction <= 0.38


def test_figure2_gossip_learning_micro():
    data = figure2("gossip-learning", scale=MICRO, quick=True, seed=3)
    assert set(data.series) == {
        "proactive",
        "simple C=10",
        "gene. A=5 C=10",
        "gene. A=10 C=20",
        "rand. A=5 C=10",
        "rand. A=10 C=20",
    }
    assert data.message_rates["proactive"] == pytest.approx(1.0, abs=0.02)
    # Every token account variant beats the proactive baseline.
    baseline = data.series["proactive"].final()
    for label, series in data.series.items():
        if label != "proactive":
            assert series.final() > baseline


def test_figure3_trace_scenario_micro():
    data = figure3("push-gossip", scale=MICRO, quick=True, seed=3)
    assert "proactive" in data.series
    for label, series in data.series.items():
        assert not series.empty, label


def test_figure3_rejects_chaotic():
    with pytest.raises(ValueError):
        figure3("chaotic-iteration", scale=MICRO)


def test_figure4_uses_large_n_and_adds_a1_variants():
    data = figure4("gossip-learning", scale=MICRO, quick=True, seed=3)
    assert "gene. A=1 C=5" in data.series
    assert "gene. A=1 C=10" in data.series
    assert f"N={MICRO.n_large}" in data.description


def test_figure4_rejects_chaotic():
    with pytest.raises(ValueError):
        figure4("chaotic-iteration", scale=MICRO)


def test_figure5_tokens_approach_prediction():
    data = figure5(scale=MICRO, seed=3, settings=((2, 4), (5, 10)))
    predictions = data.extras["predictions"]
    assert predictions["A=2 C=4"] == pytest.approx(8 / 5)
    assert predictions["A=5 C=10"] == pytest.approx(50 / 11)
    for label, series in data.series.items():
        # Tail average within 30% of prediction even at micro scale.
        tail = series.tail(series.times[-1] * 0.6)
        assert tail.mean() == pytest.approx(predictions[label], rel=0.35)
    # The mean-field trajectories are included for plotting.
    assert set(data.extras["meanfield"]) == set(data.series)
