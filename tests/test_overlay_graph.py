"""Unit tests for the static overlay container."""

import pytest

from repro.overlay.graph import Overlay


def test_basic_queries():
    overlay = Overlay([[1, 2], [2], [0]])
    assert overlay.n == 3
    assert overlay.num_edges == 4
    assert overlay.out_neighbors(0) == (1, 2)
    assert overlay.out_degree(0) == 2
    assert overlay.in_neighbors(2) == (0, 1)
    assert overlay.in_degree(2) == 2
    assert overlay.in_neighbors(1) == (0,)


def test_edges_iteration():
    overlay = Overlay([[1], [2], [0]])
    assert sorted(overlay.edges()) == [(0, 1), (1, 2), (2, 0)]


def test_empty_neighbor_lists_allowed():
    overlay = Overlay([[1], []])
    assert overlay.out_neighbors(1) == ()
    assert overlay.in_neighbors(0) == ()


def test_self_loop_rejected():
    with pytest.raises(ValueError, match="self-loop"):
        Overlay([[0]])


def test_duplicate_link_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        Overlay([[1, 1], []])


def test_out_of_range_target_rejected():
    with pytest.raises(ValueError, match="out-of-range"):
        Overlay([[5]])
    with pytest.raises(ValueError, match="out-of-range"):
        Overlay([[-1]])


def test_symmetric_detection():
    symmetric = Overlay([[1], [0]])
    asymmetric = Overlay([[1], []])
    assert symmetric.is_symmetric()
    assert not asymmetric.is_symmetric()


def test_in_neighbors_cached_consistently():
    overlay = Overlay([[1, 2], [0], [1]])
    first = overlay.in_neighbors(1)
    second = overlay.in_neighbors(1)
    assert first == second == (0, 2)


def test_in_out_degree_sums_match():
    overlay = Overlay([[1, 2, 3], [2], [3], [0, 1]])
    total_out = sum(overlay.out_degree(i) for i in range(overlay.n))
    total_in = sum(overlay.in_degree(i) for i in range(overlay.n))
    assert total_out == total_in == overlay.num_edges
