"""Unit tests for figure-harness helpers (no full runs)."""

import pytest

from repro.experiments.figures import (
    FigureData,
    _selection_label,
    figure1,
)
from repro.experiments.scale import ScalePreset


def test_selection_labels():
    assert _selection_label("proactive", None, None) == "proactive"
    assert _selection_label("simple", None, 10) == "simple C=10"
    assert _selection_label("generalized", 5, 10) == "gene. A=5 C=10"
    assert _selection_label("randomized", 10, 20) == "rand. A=10 C=20"


def test_figure_data_defaults():
    data = FigureData(name="x", description="y", series={})
    assert data.message_rates == {}
    assert data.extras == {}
    assert data.scale_label == ""


def test_figure1_deterministic_given_seed():
    scale = ScalePreset(
        name="t", n=10, n_large=10, periods=5, repeats=1, trace_users=300
    )
    a = figure1(scale=scale, seed=5)
    b = figure1(scale=scale, seed=5)
    assert list(a.series["online"]) == list(b.series["online"])
    c = figure1(scale=scale, seed=6)
    assert list(a.series["online"]) != list(c.series["online"])


def test_figure1_bars_align_with_hours():
    scale = ScalePreset(
        name="t", n=10, n_large=10, periods=5, repeats=1, trace_users=200
    )
    data = figure1(scale=scale, seed=1)
    up = data.series["up"]
    # One bar per hour, centered on the half hour.
    assert len(up) == 48
    assert up.times[0] == pytest.approx(1800.0)
    assert up.times[1] - up.times[0] == pytest.approx(3600.0)
