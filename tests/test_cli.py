"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_run_command(capsys):
    code = main(
        "run --app push-gossip --strategy randomized -A 5 -C 10"
        " --nodes 80 --periods 20".split()
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "push-gossip/randomized(A=5, C=10)" in out
    assert "msgs/node/period" in out


def test_run_with_audit(capsys):
    code = main(
        "run --app gossip-learning --strategy simple -C 5"
        " --nodes 60 --periods 15 --audit".split()
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "burst bound verified" in out


def test_run_with_loss(capsys):
    code = main(
        "run --app gossip-learning --strategy simple -C 5"
        " --nodes 60 --periods 15 --loss-rate 0.2".split()
    )
    assert code == 0


def test_figure1_command(capsys):
    code = main(["figure", "1", "--scale", "ci"])
    out = capsys.readouterr().out
    assert code == 0
    assert "figure1" in out
    assert "online" in out  # column header (may be truncated to fit)


def test_figure_requires_app_for_2_to_4(capsys):
    code = main(["figure", "2"])
    assert code == 2
    assert "--app is required" in capsys.readouterr().err


def test_figure_unknown_number(capsys):
    code = main(["figure", "9"])
    assert code == 2


def test_trace_command(tmp_path, capsys):
    out_file = tmp_path / "trace.txt"
    code = main("trace --users 150 --hours 24 --out".split() + [str(out_file)])
    out = capsys.readouterr().out
    assert code == 0
    assert "generated" in out
    assert out_file.exists()
    from repro.churn.trace import AvailabilityTrace

    trace = AvailabilityTrace.load(out_file)
    assert trace.n == 150
    assert trace.horizon == 24 * 3600.0


def test_scale_option_does_not_leak_into_later_invocations(monkeypatch, capsys):
    """Regression: --scale must not mutate REPRO_SCALE process-globally.

    Two sequential in-process CLI calls: the first picks an explicit
    scale, the second passes none and must see the default again (and
    the environment must be untouched — a leaked REPRO_SCALE would also
    reach forked suite workers).
    """
    import os

    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert main(["figure", "1", "--scale", "smoke"]) == 0
    first = capsys.readouterr().out
    assert "smoke" in first
    assert "REPRO_SCALE" not in os.environ
    # Second call, no --scale: the default (ci) applies, not smoke.
    assert main(["figure", "1"]) == 0
    second = capsys.readouterr().out
    assert "ci(" in second
    assert "smoke" not in second


def test_explicit_scale_resolution_matches_env_resolution(monkeypatch):
    from repro.experiments.scale import current_scale, scale_preset

    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert scale_preset("ci") == current_scale()  # the default is ci
    with pytest.raises(ValueError, match="unknown scale"):
        scale_preset("galactic")


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["frobnicate"])


def test_parser_rejects_unknown_strategy():
    with pytest.raises(SystemExit):
        main(["run", "--app", "push-gossip", "--strategy", "leaky-bucket"])


def test_figure_plot_flag(capsys):
    code = main(["figure", "1", "--scale", "ci", "--plot"])
    out = capsys.readouterr().out
    assert code == 0
    assert "a = online" in out
    assert "+----" in out  # chart frame


def test_run_save_json(tmp_path, capsys):
    out_file = tmp_path / "run.json"
    code = main(
        "run --app push-gossip --strategy simple -C 5"
        " --nodes 60 --periods 15 --save".split()
        + [str(out_file)]
    )
    assert code == 0
    assert out_file.exists()
    from repro.experiments.export import load_result_json

    document = load_result_json(out_file)
    assert document["config"]["capacity"] == 5


def test_list_command(capsys):
    code = main(["list"])
    out = capsys.readouterr().out
    assert code == 0
    for section in ("strategies:", "applications:", "overlays:", "churn-models:"):
        assert section in out
    assert "randomized" in out
    assert "flash-crowd" in out
    assert "spend_rate" in out  # parameter schemas are printed


def test_list_command_single_kind(capsys):
    code = main(["list", "overlays"])
    out = capsys.readouterr().out
    assert code == 0
    assert "watts-strogatz" in out
    assert "applications:" not in out


def test_run_trace_driven_chaotic_iteration(capsys):
    code = main(
        "run --app chaotic-iteration --strategy randomized -A 2 -C 6"
        " --nodes 60 --periods 10 --scenario trace".split()
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "chaotic-iteration/randomized(A=2, C=6)/trace" in out


def test_run_lossy_watts_strogatz_push_gossip(capsys):
    code = main(
        "run --app push-gossip --strategy randomized -A 5 -C 10 --nodes 60"
        " --periods 10 --overlay watts-strogatz --loss-rate 0.1".split()
    )
    assert code == 0


def test_run_flash_crowd_scenario_with_churn_param(capsys):
    code = main(
        "run --app gossip-learning --strategy simple -C 5 --nodes 60 --periods 10"
        " --scenario flash-crowd --churn-param base_fraction=0.5".split()
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "flash-crowd" in out


def test_run_churn_flag_overrides_scenario_preset(capsys):
    code = main(
        "run --app gossip-learning --strategy simple -C 5 --nodes 60 --periods 10"
        " --churn flash-crowd --churn-param base_fraction=0.6".split()
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "flash-crowd" in out


def test_run_app_param_overrides(capsys):
    code = main(
        "run --app push-gossip --strategy simple -C 5 --nodes 60 --periods 10"
        " --app-param inject_interval=34.56".split()
    )
    assert code == 0


def test_run_rejects_unknown_app_param(capsys):
    code = main(
        "run --app push-gossip --strategy simple -C 5 --nodes 60 --periods 10"
        " --app-param shininess=11".split()
    )
    assert code == 2
    assert "unknown parameter" in capsys.readouterr().err


def test_run_rejects_mistyped_app_param(capsys):
    code = main(
        "run --app push-gossip --strategy simple -C 5 --nodes 60 --periods 10"
        " --app-param inject_interval=junk".split()
    )
    assert code == 2
    assert "expects float" in capsys.readouterr().err


def test_parser_rejects_unknown_overlay():
    args = "run --app push-gossip --strategy simple -C 5 --overlay torus"
    with pytest.raises(SystemExit):
        main(args.split())


def test_figure_save_csv(tmp_path, capsys):
    out_file = tmp_path / "figure1.csv"
    code = main("figure 1 --scale ci --save".split() + [str(out_file)])
    assert code == 0
    assert out_file.exists()
    header = out_file.read_text().splitlines()[0]
    assert header.startswith("time,")
