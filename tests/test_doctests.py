"""Run the library's docstring examples as tests.

Keeps the ``>>>`` examples in the API documentation truthful — a stale
example is a failing test, not silent documentation rot.
"""

import doctest

import pytest

import repro.core.discrete_balance
import repro.core.meanfield
import repro.core.rounding
import repro.serve.limiter
import repro.sim.engine
import repro.sim.randomness

MODULES = [
    repro.core.discrete_balance,
    repro.core.meanfield,
    repro.core.rounding,
    repro.serve.limiter,
    repro.sim.engine,
    repro.sim.randomness,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
