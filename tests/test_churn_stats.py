"""Tests for trace statistics (the Figure 1 quantities)."""

import pytest

from repro.churn.stats import (
    ever_online_fraction,
    login_logout_fractions,
    online_fraction,
    trace_summary,
)
from repro.churn.trace import AvailabilityTrace, Interval


@pytest.fixture
def trace():
    return AvailabilityTrace(
        100.0,
        [
            [Interval(0.0, 50.0)],
            [Interval(25.0, 75.0)],
            [Interval(60.0, 100.0)],
            [],
        ],
    )


def test_online_fraction(trace):
    assert online_fraction(trace, [0.0]) == [0.25]
    assert online_fraction(trace, [30.0]) == [0.5]
    assert online_fraction(trace, [55.0]) == [0.25]
    assert online_fraction(trace, [70.0]) == [0.5]
    assert online_fraction(trace, [99.0]) == [0.25]


def test_ever_online_fraction_monotone(trace):
    times = [0.0, 20.0, 30.0, 59.0, 61.0, 99.0]
    fractions = ever_online_fraction(trace, times)
    assert fractions == sorted(fractions)
    assert fractions[0] == 0.25  # only node 0 online from the start
    assert fractions[-1] == 0.75  # node 3 never appears


def test_ever_online_counts_first_appearance(trace):
    assert ever_online_fraction(trace, [24.9])[0] == 0.25
    assert ever_online_fraction(trace, [25.1])[0] == 0.5
    assert ever_online_fraction(trace, [60.1])[0] == 0.75


def test_login_logout_bins(trace):
    edges = [0.0, 50.0, 100.0]
    logins, logouts = login_logout_fractions(trace, edges)
    # Bin 1 (0-50): node 1 logs in at 25 (node 0's t=0 start is a login
    # event too). Logouts: node 0 at 50 falls in bin 2.
    assert logins[0] == 0.5  # nodes 0 and 1
    assert logins[1] == 0.25  # node 2 at 60
    assert logouts[0] == 0.0
    assert logouts[1] == 0.5  # node 0 at 50, node 1 at 75


def test_login_logout_requires_two_edges(trace):
    with pytest.raises(ValueError):
        login_logout_fractions(trace, [0.0])


def test_trace_summary(trace):
    summary = trace_summary(trace)
    assert summary.n == 4
    assert summary.never_online_fraction == 0.25
    assert summary.mean_online_fraction == pytest.approx(
        (50 + 50 + 40 + 0) / (4 * 100.0)
    )
    assert summary.sessions_per_user == 0.75
    assert summary.mean_session_length == pytest.approx(140 / 3)


def test_empty_trace_rejected():
    empty = AvailabilityTrace(10.0, [])
    with pytest.raises(ValueError):
        online_fraction(empty, [0.0])
    with pytest.raises(ValueError):
        trace_summary(empty)
