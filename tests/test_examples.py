"""Smoke test: the quickstart example runs and prints sane output.

Only the fastest example runs in the unit suite; the other demos are
exercised manually / by documentation review (they take ~30-60 s each).
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_quickstart_example_runs():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    out = completed.stdout
    assert "proactive baseline" in out
    assert "randomized token account" in out
    # The table contains a lag column and a budget column.
    assert "avg lag" in out
    assert "msgs/node/round" in out


def test_all_examples_compile():
    """Every example at least byte-compiles (catches bit-rot cheaply)."""
    import py_compile

    for script in sorted(EXAMPLES.glob("*.py")):
        py_compile.compile(str(script), doraise=True)
