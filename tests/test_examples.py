"""Smoke tests: every documented example entry point runs end to end.

Each script under ``examples/`` honours ``REPRO_EXAMPLE_TINY=1``, which
shrinks its network/horizon to a seconds-long miniature; the suite runs
all of them that way so the documented entry points cannot rot. The
quickstart additionally gets an output-content check at tiny scale.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

EXAMPLE_SCRIPTS = sorted(EXAMPLES.glob("*.py"))


def _run_tiny(script: Path) -> subprocess.CompletedProcess:
    environment = dict(os.environ, REPRO_EXAMPLE_TINY="1")
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=environment,
    )


def test_examples_directory_is_covered():
    """The parametrized list below really covers the examples directory."""
    assert EXAMPLE_SCRIPTS, f"no example scripts found under {EXAMPLES}"


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[script.stem for script in EXAMPLE_SCRIPTS]
)
def test_example_runs_at_tiny_scale(script):
    completed = _run_tiny(script)
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"


def test_quickstart_example_output():
    completed = _run_tiny(EXAMPLES / "quickstart.py")
    assert completed.returncode == 0, completed.stderr
    out = completed.stdout
    assert "proactive baseline" in out
    assert "randomized token account" in out
    # The table contains a lag column and a budget column.
    assert "avg lag" in out
    assert "msgs/node/round" in out


def test_all_examples_compile():
    """Every example at least byte-compiles (catches bit-rot cheaply)."""
    import py_compile

    for script in EXAMPLE_SCRIPTS:
        py_compile.compile(str(script), doraise=True)
