"""Binary wire framing: codec round trips and the dual-protocol server.

The binary path's correctness claims: every frame round-trips exactly
(any key, any decision, any ``f64`` retry hint), the incremental frame
splitter is insensitive to how the byte stream is segmented (the
property a TCP client actually needs), and one server port speaks both
protocols with first-byte negotiation.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import wire
from repro.serve.limiter import Decision, TokenAccountLimiter
from repro.serve.server import AdmissionServer

# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
keys = st.text(min_size=1, max_size=wire.MAX_KEY_LENGTH).filter(
    lambda k: len(k.encode()) <= wire.MAX_FRAME - 4
)

decisions = st.one_of(
    st.builds(
        lambda key, reason, balance: Decision(True, key, reason, balance),
        keys,
        st.sampled_from(("reactive", "proactive")),
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
    ),
    st.builds(
        lambda key, balance, retry: Decision(False, key, "exhausted", balance, retry),
        keys,
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    ),
)


def segmented(blob: bytes, cuts) -> list:
    """Split ``blob`` at the given relative cut points (pathological TCP)."""
    bounds = sorted({int(cut * len(blob)) for cut in cuts})
    pieces, last = [], 0
    for bound in bounds:
        pieces.append(blob[last:bound])
        last = bound
    pieces.append(blob[last:])
    return [piece for piece in pieces if piece]


# ----------------------------------------------------------------------
# codec round trips
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(key=keys, useful=st.booleans())
def test_request_round_trip(key, useful):
    frame = wire.encode_request_binary(key, useful)
    payloads, consumed = wire.split_frames(bytearray(frame))
    assert consumed == len(frame) and len(payloads) == 1
    assert wire.parse_request_binary(payloads[0]) == ("A", key, useful)


@settings(max_examples=200, deadline=None)
@given(decision=decisions)
def test_decision_round_trip(decision):
    frame = wire.encode_decision_binary(decision)
    assert len(frame) == wire.DECISION_FRAME_SIZE
    payloads, consumed = wire.split_frames(bytearray(frame))
    assert consumed == len(frame)
    status, decoded = wire.decode_response_binary(payloads[0], key=decision.key)
    assert status == wire.STATUS_DECISION
    assert decoded == decision


@settings(max_examples=100, deadline=None)
@given(
    batch=st.lists(decisions, min_size=0, max_size=20),
    cuts=st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=8),
)
def test_pipelined_stream_survives_any_segmentation(batch, cuts):
    """Feeding a response run in arbitrary chunks recovers every frame."""
    blob = wire.encode_decisions_binary(batch)
    assert blob == b"".join(wire.encode_decision_binary(d) for d in batch)
    buffer = bytearray()
    recovered = []
    for piece in segmented(blob, cuts):
        buffer += piece
        payloads, consumed = wire.split_frames(buffer)
        del buffer[:consumed]
        for payload in payloads:
            index = len(recovered)
            status, decoded = wire.decode_response_binary(
                payload, key=batch[index].key
            )
            recovered.append(decoded)
    assert not buffer  # every byte consumed
    assert recovered == batch


@settings(max_examples=100, deadline=None)
@given(
    requests=st.lists(st.tuples(keys, st.booleans()), min_size=1, max_size=20),
    cuts=st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=8),
)
def test_request_stream_survives_any_segmentation(requests, cuts):
    blob = b"".join(wire.encode_request_binary(k, u) for k, u in requests)
    buffer = bytearray()
    recovered = []
    for piece in segmented(blob, cuts):
        buffer += piece
        payloads, consumed = wire.split_frames(buffer)
        del buffer[:consumed]
        recovered.extend(wire.parse_request_binary(p) for p in payloads)
    assert recovered == [("A", k, u) for k, u in requests]


def test_split_frames_rejects_oversized_prefix():
    bogus = (wire.MAX_FRAME + 1).to_bytes(2, "little") + b"x"
    with pytest.raises(ValueError, match="exceeds"):
        wire.split_frames(bytearray(bogus))


def test_malformed_payloads_raise():
    with pytest.raises(ValueError):
        wire.parse_request_binary(b"")
    with pytest.raises(ValueError, match="opcode"):
        wire.parse_request_binary(bytes([99]))
    with pytest.raises(ValueError, match="key"):
        wire.parse_request_binary(bytes([wire.OP_ACQUIRE, wire.FLAG_USEFUL]))
    with pytest.raises(ValueError):
        wire.decode_response_binary(b"")
    with pytest.raises(ValueError, match="status"):
        wire.decode_response_binary(bytes([77]))
    with pytest.raises(ValueError, match="server error"):
        wire.decode_response_binary(bytes([wire.STATUS_ERROR]) + b"boom")


@settings(max_examples=100, deadline=None)
@given(decision=decisions)
def test_text_wire_round_trip(decision):
    """`Decision.to_wire`/`from_wire` — the text codec on the dataclass."""
    line = decision.to_wire()
    parsed = Decision.from_wire(line, key=decision.key)
    assert parsed.admitted == decision.admitted
    if decision.admitted:
        assert parsed.reason == decision.reason
        assert parsed.balance == decision.balance
    else:
        assert parsed.retry_after == pytest.approx(
            decision.retry_after or 0.0, abs=1e-6, rel=1e-9
        )


def test_magic_first_byte_is_not_ascii():
    """The negotiation invariant: no text command starts with MAGIC[0]."""
    assert wire.MAGIC[0] >= 0x80


# ----------------------------------------------------------------------
# the dual-protocol server
# ----------------------------------------------------------------------
def _run(coro):
    return asyncio.run(coro)


async def _start_server(**limiter_kwargs):
    defaults = dict(capacity=4, period=60.0, seed=5)
    defaults.update(limiter_kwargs)
    limiter = TokenAccountLimiter("simple", **defaults)
    server = await AdmissionServer(limiter).start()
    return server


async def _binary_client(port):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(wire.MAGIC)
    await writer.drain()
    assert await reader.readexactly(len(wire.MAGIC)) == wire.MAGIC
    return reader, writer


async def _read_frames(reader, count):
    buffer = bytearray()
    frames = []
    while len(frames) < count:
        chunk = await reader.read(2**16)
        assert chunk, "server closed early"
        buffer += chunk
        payloads, consumed = wire.split_frames(buffer)
        del buffer[:consumed]
        frames.extend(payloads)
    return frames


def test_binary_pipeline_answers_in_order():
    async def scenario():
        server = await _start_server()
        reader, writer = await _binary_client(server.port)
        writer.write(wire.encode_request_binary("k") * 6)
        await writer.drain()
        frames = await _read_frames(reader, 6)
        decided = [
            wire.decode_response_binary(f, key="k")[1] for f in frames
        ]
        assert [d.admitted for d in decided] == [True] * 4 + [False] * 2
        # balances count down: proof the run went through one batch
        assert [d.balance for d in decided[:4]] == [3, 2, 1, 0]
        writer.close()
        await server.close()

    _run(scenario())


def test_binary_stats_and_ping_are_flush_barriers():
    async def scenario():
        server = await _start_server()
        reader, writer = await _binary_client(server.port)
        writer.write(
            wire.encode_request_binary("a")
            + wire.encode_command_binary(wire.OP_STATS)
            + wire.encode_request_binary("a")
            + wire.encode_command_binary(wire.OP_PING)
        )
        await writer.drain()
        frames = await _read_frames(reader, 4)
        statuses = [wire.decode_response_binary(f, key="a")[0] for f in frames]
        assert statuses == [
            wire.STATUS_DECISION,
            wire.STATUS_STATS,
            wire.STATUS_DECISION,
            wire.STATUS_PONG,
        ]
        stats = json.loads(wire.decode_response_binary(frames[1])[1])
        # the STATS barrier saw exactly the one admission before it
        assert stats["admitted"] == 1
        writer.close()
        await server.close()

    _run(scenario())


def test_text_and_binary_clients_share_one_port():
    async def scenario():
        server = await _start_server()
        b_reader, b_writer = await _binary_client(server.port)
        t_reader, t_writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        b_writer.write(wire.encode_request_binary("shared"))
        await b_writer.drain()
        t_writer.write(b"A shared\n")
        await t_writer.drain()
        (frame,) = await _read_frames(b_reader, 1)
        _, binary_decision = wire.decode_response_binary(frame, key="shared")
        text_line = await t_reader.readline()
        assert binary_decision.admitted
        assert text_line.startswith(b"+ ")
        # both decisions drained the same account
        assert server.limiter.balance("shared") == 2
        b_writer.close()
        t_writer.close()
        await server.close()

    _run(scenario())


def test_unknown_binary_version_gets_text_error_and_close():
    async def scenario():
        server = await _start_server()
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(bytes([wire.MAGIC[0]]) + b"TA\x7f")
        await writer.drain()
        line = await reader.readline()
        assert line.startswith(b"! unsupported")
        assert await reader.read() == b""  # connection closed
        writer.close()
        await server.close()

    _run(scenario())


def test_unknown_opcode_answers_error_frame_and_survives():
    async def scenario():
        server = await _start_server()
        reader, writer = await _binary_client(server.port)
        writer.write(bytes([1, 0, 42]))  # length 1, opcode 42
        writer.write(wire.encode_command_binary(wire.OP_PING))
        await writer.drain()
        frames = await _read_frames(reader, 2)
        with pytest.raises(ValueError, match="opcode"):
            wire.decode_response_binary(frames[0])
        assert wire.decode_response_binary(frames[1])[0] == wire.STATUS_PONG
        writer.close()
        await server.close()

    _run(scenario())


def test_oversized_frame_prefix_closes_the_connection():
    async def scenario():
        server = await _start_server()
        reader, writer = await _binary_client(server.port)
        writer.write((wire.MAX_FRAME + 9).to_bytes(2, "little") + b"xx")
        await writer.drain()
        frames = await _read_frames(reader, 1)
        with pytest.raises(ValueError, match="exceeds"):
            wire.decode_response_binary(frames[0])
        assert await reader.read() == b""
        writer.close()
        await server.close()

    _run(scenario())


def test_binary_usefulness_flag_reaches_the_limiter():
    async def scenario():
        # generalized at A=3: REACTIVE(a, False) = floor((2+a)/6) is 0
        # until the balance reaches 4, so useless traffic is rejected
        # while useful traffic is admitted from balance 3.
        limiter = TokenAccountLimiter(
            "generalized", spend_rate=3, capacity=6, period=60.0, seed=5,
            initial_tokens=3,
        )
        server = await AdmissionServer(limiter).start()
        reader, writer = await _binary_client(server.port)
        writer.write(
            wire.encode_request_binary("k", useful=False)
            + wire.encode_request_binary("k", useful=True)
        )
        await writer.drain()
        frames = await _read_frames(reader, 2)
        useless = wire.decode_response_binary(frames[0], key="k")[1]
        useful = wire.decode_response_binary(frames[1], key="k")[1]
        assert not useless.admitted
        assert useful.admitted
        writer.close()
        await server.close()

    _run(scenario())


# ----------------------------------------------------------------------
# the bulk admission opcode (cluster router -> worker)
# ----------------------------------------------------------------------
bulk_groups = st.lists(
    st.tuples(
        st.text(min_size=1, max_size=24).map(lambda k: k.encode("utf-8")),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=2**16 - 1),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=200, deadline=None)
@given(groups=bulk_groups)
def test_bulk_frame_round_trip(groups):
    frame = wire.encode_bulk_binary(groups)
    length = frame[0] | (frame[1] << 8)
    assert length == len(frame) - 2
    assert frame[2] == wire.OP_ACQUIRE_BULK
    parsed = wire.parse_bulk_binary(frame[2:])
    assert parsed == [
        (raw.decode("utf-8"), bool(flags & wire.FLAG_USEFUL), count)
        for raw, flags, count in groups
    ]


def test_bulk_frame_rejects_malformed_payloads():
    good = wire.encode_bulk_binary([(b"key", 1, 3)])[2:]
    with pytest.raises(ValueError):
        wire.parse_bulk_binary(good[:1])  # opcode alone: empty frame
    with pytest.raises(ValueError):
        wire.parse_bulk_binary(good[:-1])  # truncated trailing count
    with pytest.raises(ValueError):
        wire.parse_bulk_binary(good[:4])  # truncated key bytes
    with pytest.raises(ValueError):  # zero-request group
        wire.parse_bulk_binary(wire.encode_bulk_binary([(b"key", 1, 0)])[2:])
    with pytest.raises(ValueError):  # zero-length key
        wire.parse_bulk_binary(bytes((wire.OP_ACQUIRE_BULK, 0, 0, 1, 1, 0)))
    with pytest.raises(ValueError):  # over-long key
        wire.parse_bulk_binary(
            wire.encode_bulk_binary([(b"k" * (wire.MAX_KEY_LENGTH + 1), 1, 1)])[2:]
        )
    with pytest.raises(ValueError):  # the frame budget is enforced
        wire.encode_bulk_binary([(b"k" * 200, 1, 1)] * 32)


def test_run_frame_layout():
    frame = wire.encode_run_binary("reactive", 3, 2, 5, 1.5)
    assert len(frame) == wire.RUN_FRAME_SIZE
    length, status, reason, admits, rejects, balance, retry = (
        wire.RUN_STRUCT.unpack(frame)
    )
    assert length == wire.RUN_FRAME_SIZE - 2
    assert status == wire.STATUS_RUN
    assert reason == wire.REASON_CODES["reactive"]
    assert (admits, rejects, balance, retry) == (3, 2, 5, 1.5)


def test_worker_answers_bulk_group_with_one_run_frame():
    async def scenario():
        server = await _start_server()  # simple C=4, deterministic
        reader, writer = await _binary_client(server.port)
        writer.write(wire.encode_bulk_binary([(b"k", wire.FLAG_USEFUL, 6)]))
        await writer.drain()
        frame = await reader.readexactly(wire.RUN_FRAME_SIZE)
        _, status, reason, admits, rejects, balance, retry = (
            wire.RUN_STRUCT.unpack(frame)
        )
        assert status == wire.STATUS_RUN
        assert reason == wire.REASON_CODES["reactive"]
        # C=4 tokens pre-spend: a 4-admit prefix, 2 rejects at balance 0
        assert (admits, rejects, balance) == (4, 2, 4)
        assert retry > 0.0
        # the limiter's counters saw all six requests
        assert server.limiter.admitted == 4 and server.limiter.rejected == 2
        writer.close()
        await server.close()

    _run(scenario())


def test_worker_bulk_groups_interleave_with_plain_acquires_in_order():
    async def scenario():
        server = await _start_server()
        reader, writer = await _binary_client(server.port)
        # plain ACQUIRE, then a two-group bulk frame, then plain again:
        # responses must come back in exactly that order
        writer.write(
            wire.encode_request_binary("a")
            + wire.encode_bulk_binary(
                [(b"a", wire.FLAG_USEFUL, 2), (b"b", wire.FLAG_USEFUL, 1)]
            )
            + wire.encode_request_binary("b")
        )
        await writer.drain()
        first = await reader.readexactly(wire.DECISION_FRAME_SIZE)
        assert first[2] == wire.STATUS_DECISION
        run_a = await reader.readexactly(wire.RUN_FRAME_SIZE)
        run_b = await reader.readexactly(wire.RUN_FRAME_SIZE)
        last = await reader.readexactly(wire.DECISION_FRAME_SIZE)
        a = wire.RUN_STRUCT.unpack(run_a)
        b = wire.RUN_STRUCT.unpack(run_b)
        # "a" spent one token before its group (balance 3 pre-spend)
        assert (a[3], a[4], a[5]) == (2, 0, 3)
        assert (b[3], b[4], b[5]) == (1, 0, 4)
        decision = wire.decode_response_binary(last[2:], key="b")[1]
        assert decision.admitted and decision.balance == 2
        writer.close()
        await server.close()

    _run(scenario())


def test_worker_answers_bulk_with_decisions_when_not_closed_form():
    async def scenario():
        # randomized strategies cannot promise an admit-prefix run, so
        # the worker falls back to per-request DECISION frames
        limiter = TokenAccountLimiter(
            "randomized", spend_rate=3, capacity=6, period=60.0, seed=5
        )
        server = await AdmissionServer(limiter).start()
        reader, writer = await _binary_client(server.port)
        writer.write(wire.encode_bulk_binary([(b"k", wire.FLAG_USEFUL, 5)]))
        await writer.drain()
        frames = await _read_frames(reader, 5)
        decided = [wire.decode_response_binary(f, key="k")[1] for f in frames]
        assert len(decided) == 5
        assert limiter.admitted + limiter.rejected == 5
        writer.close()
        await server.close()

    _run(scenario())


def test_worker_answers_malformed_bulk_with_error_frame():
    async def scenario():
        server = await _start_server()
        reader, writer = await _binary_client(server.port)
        # a zero-count group is invalid; the worker answers an ERROR
        # frame and keeps serving
        bogus = bytes((wire.OP_ACQUIRE_BULK, 1, 0, 1, ord("k"), 0, 0))
        writer.write(
            wire._LENGTH.pack(len(bogus)) + bogus
            + wire.encode_request_binary("k")
        )
        await writer.drain()
        frames = await _read_frames(reader, 2)
        assert frames[0][0] == wire.STATUS_ERROR
        assert frames[1][0] == wire.STATUS_DECISION
        writer.close()
        await server.close()

    _run(scenario())
