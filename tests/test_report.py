"""Tests for ASCII reporting and speedup calculations."""

import math

import pytest

from repro.experiments.report import (
    final_value_speedups,
    format_messages_per_node,
    format_series_table,
    format_speedups,
    steady_state_lag_ratios,
    time_to_threshold_speedups,
)
from repro.metrics.series import TimeSeries


def series(points):
    return TimeSeries(points)


@pytest.fixture
def gossip_like():
    return {
        "proactive": series([(0.0, 0.01), (100.0, 0.01), (200.0, 0.01)]),
        "randomized": series([(0.0, 0.05), (100.0, 0.08), (200.0, 0.10)]),
    }


def test_final_value_speedups(gossip_like):
    speedups = final_value_speedups(gossip_like)
    assert speedups["proactive"] == pytest.approx(1.0)
    assert speedups["randomized"] == pytest.approx(10.0)


def test_final_value_speedups_needs_baseline(gossip_like):
    with pytest.raises(KeyError):
        final_value_speedups(gossip_like, baseline="missing")


def test_steady_state_lag_ratios():
    curves = {
        "proactive": series([(0.0, 90.0), (50.0, 30.0), (100.0, 30.0)]),
        "generalized": series([(0.0, 90.0), (50.0, 10.0), (100.0, 10.0)]),
    }
    ratios = steady_state_lag_ratios(curves, tail_fraction=0.5)
    assert ratios["proactive"] == pytest.approx(1.0)
    assert ratios["generalized"] == pytest.approx(3.0)


def test_lag_ratio_handles_zero_lag():
    curves = {
        "proactive": series([(0.0, 10.0), (100.0, 10.0)]),
        "perfect": series([(0.0, 0.0), (100.0, 0.0)]),
    }
    ratios = steady_state_lag_ratios(curves)
    assert ratios["perfect"] == math.inf


def test_time_to_threshold_speedups():
    curves = {
        "proactive": series([(0.0, 1.0), (100.0, 0.5), (200.0, 0.1)]),
        "fast": series([(0.0, 1.0), (50.0, 0.05)]),
        "never": series([(0.0, 1.0), (200.0, 0.9)]),
    }
    speedups = time_to_threshold_speedups(curves, threshold=0.2)
    assert speedups["proactive"] == pytest.approx(1.0)
    assert speedups["fast"] == pytest.approx(4.0)
    assert speedups["never"] is None


def test_time_to_threshold_default_uses_baseline_final():
    curves = {
        "proactive": series([(0.0, 1.0), (200.0, 0.1)]),
        "fast": series([(0.0, 1.0), (40.0, 0.05)]),
    }
    speedups = time_to_threshold_speedups(curves)
    assert speedups["fast"] == pytest.approx(5.0)


def test_format_series_table_contains_all_columns(gossip_like):
    table = format_series_table(gossip_like, rows=3)
    assert "proactive" in table
    assert "randomized" in table
    lines = table.splitlines()
    assert len(lines) == 2 + 3  # header + rule + rows


def test_format_series_table_empty():
    assert "no series" in format_series_table({})


def test_format_series_table_handles_short_series():
    table = format_series_table(
        {
            "long": series([(float(i) * 3600, 1.0) for i in range(10)]),
            "short": series([(7.0 * 3600, 2.0)]),
        },
        rows=5,
    )
    assert "-" in table  # missing samples rendered as dashes


def test_format_speedups():
    text = format_speedups({"a": 2.0, "b": None}, title="test title")
    assert "test title" in text
    assert "2.00x" in text
    assert "n/a" in text


def test_format_messages_per_node():
    text = format_messages_per_node({"proactive": 1.0, "randomized": 0.93})
    assert "1.000" in text
    assert "0.930" in text
