"""Tests for the TimeSeries container."""

import pytest

from repro.metrics.series import TimeSeries


def test_append_and_iterate():
    series = TimeSeries()
    series.append(0.0, 1.0)
    series.append(1.0, 2.0)
    assert len(series) == 2
    assert list(series) == [(0.0, 1.0), (1.0, 2.0)]
    assert series[1] == (1.0, 2.0)


def test_construct_from_points():
    series = TimeSeries([(0.0, 5.0), (2.0, 6.0)])
    assert series.final() == 6.0


def test_non_monotone_append_rejected():
    series = TimeSeries([(5.0, 1.0)])
    with pytest.raises(ValueError):
        series.append(4.0, 2.0)


def test_equal_times_allowed():
    series = TimeSeries([(1.0, 1.0)])
    series.append(1.0, 2.0)
    assert len(series) == 2


def test_final_on_empty_raises():
    with pytest.raises(ValueError):
        TimeSeries().final()


def test_value_at():
    series = TimeSeries([(0.0, 10.0), (5.0, 20.0), (10.0, 30.0)])
    assert series.value_at(0.0) == 10.0
    assert series.value_at(4.9) == 10.0
    assert series.value_at(5.0) == 20.0
    assert series.value_at(100.0) == 30.0
    with pytest.raises(ValueError):
        series.value_at(-1.0)


def test_mean_over_window():
    series = TimeSeries([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)])
    assert series.mean() == 2.5
    assert series.mean(start=2.0) == 3.5
    assert series.mean(start=1.0, end=2.0) == 2.5
    with pytest.raises(ValueError):
        series.mean(start=100.0)


def test_min_max():
    series = TimeSeries([(0.0, 3.0), (1.0, 1.0), (2.0, 2.0)])
    assert series.min() == 1.0
    assert series.max() == 3.0


def test_threshold_crossings():
    series = TimeSeries([(0.0, 10.0), (1.0, 5.0), (2.0, 1.0)])
    assert series.first_time_below(6.0) == 1.0
    assert series.first_time_below(0.5) is None
    assert series.first_time_at_least(10.0) == 0.0
    assert series.first_time_at_least(11.0) is None


def test_map_values():
    series = TimeSeries([(0.0, 1.0), (1.0, 4.0)])
    doubled = series.map_values(lambda v: 2 * v)
    assert list(doubled) == [(0.0, 2.0), (1.0, 8.0)]
    assert list(series) == [(0.0, 1.0), (1.0, 4.0)]  # original untouched


def test_tail():
    series = TimeSeries([(0.0, 1.0), (5.0, 2.0), (10.0, 3.0)])
    tail = series.tail(5.0)
    assert list(tail) == [(5.0, 2.0), (10.0, 3.0)]


def test_empty_flag():
    assert TimeSeries().empty
    assert not TimeSeries([(0.0, 0.0)]).empty
