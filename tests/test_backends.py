"""Unit tests for the simulation-backend layer.

The equivalence gate (``test_backend_equivalence.py``) establishes that
the vectorized engine matches the event engine; these tests cover the
layer's plumbing — registry, dispatch, determinism, the supported
envelope, store keying, CLI and overlay fast paths.
"""

import numpy as np
import pytest

from repro.backends import BackendUnsupportedError
from repro.cli import main
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.suite import ExperimentSuite, SuiteRunner
from repro.registry import backends
from repro.scenarios import ComponentRef, ScenarioSpec
from repro.sim.randomness import RandomStreams
from repro.store import ResultStore


def vec_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        app="push-gossip",
        strategy="randomized",
        spend_rate=10,
        capacity=20,
        n=80,
        periods=20,
        seed=3,
        backend="vectorized",
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# ----------------------------------------------------------------------
# Registry + spec surface
# ----------------------------------------------------------------------
def test_backend_registry_entries():
    assert "event" in backends
    assert "vectorized" in backends
    assert backends.get("event").summary


def test_spec_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        ScenarioSpec(
            app=ComponentRef("push-gossip"),
            strategy=ComponentRef.of("simple", capacity=5),
            n=10,
            periods=5,
            backend="quantum",
        )


def test_config_backend_flows_into_spec():
    assert vec_config().to_spec().backend == "vectorized"
    assert vec_config(backend="event").to_spec().backend == "event"


def test_cli_lists_backends(capsys):
    assert main(["list", "backends"]) == 0
    out = capsys.readouterr().out
    assert "vectorized" in out and "event" in out


# ----------------------------------------------------------------------
# Dispatch + determinism
# ----------------------------------------------------------------------
def test_vectorized_result_shape():
    result = run_experiment(vec_config(collect_tokens=True, audit_sends=True))
    assert result.config.backend == "vectorized"
    assert not result.metric.empty
    assert result.tokens is not None and not result.tokens.empty
    assert result.data_messages > 0
    assert result.network.by_kind["data"] == result.data_messages
    assert result.ratelimit_violations == []
    assert result.events_processed > 0


def test_vectorized_is_deterministic():
    first = run_experiment(vec_config(audit_sends=True))
    second = run_experiment(vec_config(audit_sends=True))
    assert list(first.metric.times) == list(second.metric.times)
    assert list(first.metric.values) == list(second.metric.values)
    assert first.data_messages == second.data_messages
    assert first.network.sent == second.network.sent
    assert first.events_processed == second.events_processed


def test_seed_changes_vectorized_result():
    first = run_experiment(vec_config(seed=3))
    second = run_experiment(vec_config(seed=4))
    assert list(first.metric.values) != list(second.metric.values)


def test_suite_dispatches_per_cell_backend():
    """A suite mixing backends routes every cell through its own engine."""
    suite = ExperimentSuite.from_configs(
        "mixed-backends",
        [vec_config(), vec_config(backend="event")],
    )
    result = SuiteRunner(workers=1).run(suite)
    assert [cell.config.backend for cell in result.cells] == ["vectorized", "event"]
    assert all(not cell.result.metric.empty for cell in result.cells)


def test_vectorized_under_churn_runs():
    result = run_experiment(vec_config(scenario="flash-crowd", periods=30))
    assert not result.metric.empty
    # Churned runs send strictly less than the failure-free rate of ~1.
    assert 0 < result.messages_per_node_per_period < 1.0


# ----------------------------------------------------------------------
# Supported envelope
# ----------------------------------------------------------------------
def test_vectorized_rejects_other_apps():
    with pytest.raises(BackendUnsupportedError, match="gossip-learning"):
        run_experiment(
            ExperimentConfig(
                app="gossip-learning",
                strategy="simple",
                capacity=5,
                n=40,
                periods=5,
                backend="vectorized",
            )
        )


def test_vectorized_rejects_grading():
    with pytest.raises(BackendUnsupportedError, match="grading"):
        run_experiment(vec_config(grading_scale=5.0))


def test_vectorized_rejects_reactive_injection():
    with pytest.raises(BackendUnsupportedError, match="reactive-injection"):
        run_experiment(vec_config(reactive_injection=True))


def test_unsupported_error_is_usage_error():
    assert issubclass(BackendUnsupportedError, ValueError)


# ----------------------------------------------------------------------
# Store keying across backends
# ----------------------------------------------------------------------
def test_store_roundtrips_vectorized_results(tmp_path):
    store = ResultStore(tmp_path / "store")
    config = vec_config()
    fresh = run_experiment(config, store=store)
    cached = run_experiment(config, store=store)
    assert list(cached.metric.values) == list(fresh.metric.values)
    assert cached.elapsed == fresh.elapsed  # the pickled original, not a rerun
    assert len(store) == 1


def test_backends_never_share_store_cells(tmp_path):
    store = ResultStore(tmp_path / "store")
    vec_result = run_experiment(vec_config(), store=store)
    event_result = run_experiment(vec_config(backend="event"), store=store)
    assert len(store) == 2
    assert list(vec_result.metric.values) != list(event_result.metric.values)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_run_with_vectorized_backend(capsys):
    code = main(
        "run --app push-gossip --strategy simple -C 5 --backend vectorized"
        " --nodes 80 --periods 20".split()
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "msgs/node/period" in out


def test_cli_vectorized_unsupported_app_is_usage_error(capsys):
    code = main(
        "run --app gossip-learning --strategy simple -C 5 --backend vectorized"
        " --nodes 40 --periods 5".split()
    )
    assert code == 2
    assert "vectorized" in capsys.readouterr().err


def test_spec_validates_initial_tokens_for_every_backend():
    """Account invariants fail at spec time, identically per backend."""
    for backend in ("event", "vectorized"):
        with pytest.raises(ValueError, match="initial_tokens must be >= 0"):
            vec_config(strategy="simple", spend_rate=None, capacity=5,
                       initial_tokens=-3, backend=backend)
        with pytest.raises(ValueError, match="exceeds the strategy's"):
            vec_config(strategy="simple", spend_rate=None, capacity=5,
                       initial_tokens=6, backend=backend)
    # The overdraft reference keeps permitting a negative start.
    cfg = vec_config(
        strategy="reactive", spend_rate=None, capacity=None, initial_tokens=-1
    )
    assert cfg.to_spec().initial_tokens == -1


def test_vectorized_tolerates_zero_degree_sink_node():
    """A trailing out-degree-0 node must not crash the CSR peer draw."""
    from repro.registry import overlays

    @overlays.register(
        "ring-with-sink-test",
        summary="test-only ring whose last node has no out-links",
    )
    def _build(n, rng):
        from repro.overlay.graph import Overlay

        rows = [[(i + 1) % n] for i in range(n - 1)] + [[]]
        return Overlay(rows)

    try:
        result = run_experiment(vec_config(overlay="ring-with-sink-test", n=16))
        assert result.data_messages > 0
    finally:
        # Test-only registration: leave the global catalog untouched for
        # tests that assert the exact built-in set.
        overlays._entries.pop("ring-with-sink-test", None)


# ----------------------------------------------------------------------
# Overlay fast paths
# ----------------------------------------------------------------------
def test_kout_adjacency_is_valid_wiring():
    from repro.overlay.kout import kout_adjacency

    targets = kout_adjacency(200, 7, seed=123)
    assert targets.shape == (200, 7)
    rows = np.arange(200)[:, None]
    assert (targets != rows).all()  # no self-loops
    assert ((targets >= 0) & (targets < 200)).all()
    ordered = np.sort(targets, axis=1)
    assert (ordered[:, 1:] != ordered[:, :-1]).all()  # distinct per row


def test_large_kout_overlay_matches_vectorized_csr():
    """Event-side Overlay and vectorized CSR wire the same topology."""
    from repro.overlay.kout import (
        NUMPY_WIRING_MIN_N,
        kout_adjacency,
        random_kout_overlay,
    )

    n, k, seed = NUMPY_WIRING_MIN_N, 5, 11
    overlay = random_kout_overlay(n, k, RandomStreams(seed).stream("overlay"))
    targets = kout_adjacency(
        n, k, RandomStreams(seed).stream("overlay").getrandbits(64)
    )
    assert overlay.n == n
    for node in (0, 1, n // 2, n - 1):
        assert overlay.out_neighbors(node) == tuple(targets[node])


def test_trusted_overlay_rows_skip_validation():
    from repro.overlay.graph import Overlay

    overlay = Overlay.from_trusted_rows([(1, 2), (0, 2), (0, 1)])
    assert overlay.n == 3
    assert overlay.out_neighbors(0) == (1, 2)
    assert overlay.in_neighbors(0) == (1, 2)
