"""Store identity audit for the ``backend`` axis.

The backend a cell was simulated on is part of its identity: keys must
differ across backends, entries written before the axis existed (schema
version 1) must never satisfy a lookup, ``repro store gc`` must prune
them, and ``repro store diff`` across backends must report disjoint
grids — never a match.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.store import RESULT_SCHEMA_VERSION, ResultStore, cell_key, diff_stores


def config(**overrides) -> ExperimentConfig:
    defaults = dict(
        app="push-gossip",
        strategy="simple",
        capacity=5,
        n=60,
        periods=10,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_schema_version_bumped_for_backend_axis():
    # The backend axis changed what a cell key means; the bump is the
    # contract that no pre-axis entry can ever hit again.
    assert RESULT_SCHEMA_VERSION >= 2


def test_backend_axis_changes_config_key():
    assert cell_key(config()) != cell_key(config(backend="vectorized"))


def test_backend_axis_changes_spec_key():
    event_spec = config().to_spec()
    vector_spec = config(backend="vectorized").to_spec()
    assert event_spec.canonical_dict() != vector_spec.canonical_dict()
    assert cell_key(event_spec) != cell_key(vector_spec)


def test_pre_backend_entries_are_misses(tmp_path):
    """Entries written under schema v1 (no backend axis) never hit."""
    root = tmp_path / "store"
    legacy = ResultStore(root, schema_version=1)
    cfg = config()
    legacy.put(cfg, run_experiment(cfg))
    assert legacy.get(cfg) is not None  # sanity: hits under its own schema
    current = ResultStore(root)
    assert current.get(cfg) is None
    assert current.contains(cfg) is False


def test_gc_prunes_pre_backend_entries(tmp_path):
    root = tmp_path / "store"
    legacy = ResultStore(root, schema_version=1)
    cfg = config()
    legacy.put(cfg, run_experiment(cfg))
    current = ResultStore(root)
    current.put(config(seed=8), run_experiment(config(seed=8)))
    assert len(current) == 2
    removed, kept = current.gc()
    assert (removed, kept) == (1, 1)
    assert current.get(config(seed=8)) is not None


def test_store_diff_across_backends_reports_disjoint_grids(tmp_path):
    """The same scenario on two backends must never diff as matching."""
    event_store = ResultStore(tmp_path / "event")
    vector_store = ResultStore(tmp_path / "vectorized")
    run_experiment(config(), store=event_store)
    run_experiment(config(backend="vectorized"), store=vector_store)
    report = diff_stores(event_store, vector_store)
    assert report["matching"] == []
    assert len(report["only_left"]) == 1
    assert len(report["only_right"]) == 1


def test_mixed_backend_store_gc_keeps_both(tmp_path):
    """Current-schema cells from both backends coexist and survive gc."""
    store = ResultStore(tmp_path / "store")
    run_experiment(config(), store=store)
    run_experiment(config(backend="vectorized"), store=store)
    removed, kept = store.gc()
    assert (removed, kept) == (0, 2)
    assert store.get(config()) is not None
    assert store.get(config(backend="vectorized")) is not None
