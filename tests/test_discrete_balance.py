"""Tests for the exact discrete balance Markov model."""

import numpy as np
import pytest

from repro.core.discrete_balance import (
    round_transition_matrix,
    stationary_distribution,
    stationary_mean_balance,
)
from repro.core.meanfield import randomized_equilibrium
from repro.core.strategies import (
    ProactiveStrategy,
    PureReactiveStrategy,
    RandomizedTokenAccount,
    SimpleTokenAccount,
)


def test_transition_matrix_is_stochastic():
    strategy = RandomizedTokenAccount(5, 10)
    transition = round_transition_matrix(strategy)
    assert transition.shape == (11, 11)
    assert np.allclose(transition.sum(axis=1), 1.0)
    assert (transition >= -1e-12).all()


def test_stationary_distribution_is_a_distribution():
    strategy = RandomizedTokenAccount(3, 6)
    pi = stationary_distribution(strategy)
    assert pi.shape == (7,)
    assert pi.sum() == pytest.approx(1.0)
    assert (pi >= 0).all()


def test_stationary_is_fixed_point():
    strategy = RandomizedTokenAccount(4, 8)
    transition = round_transition_matrix(strategy)
    pi = stationary_distribution(strategy)
    assert np.allclose(pi @ transition, pi, atol=1e-9)


def test_agrees_with_meanfield_for_large_a():
    """The continuum limit: for large A the discreteness error vanishes."""
    for spend_rate, capacity in ((10, 20), (20, 40)):
        exact = stationary_mean_balance(RandomizedTokenAccount(spend_rate, capacity))
        continuum = randomized_equilibrium(spend_rate, capacity)
        assert exact == pytest.approx(continuum, rel=0.05)


def test_corrects_meanfield_for_small_a():
    """For A = 1 the continuum prediction (2/3) is far from both the
    exact chain and the simulation (~1 token); the chain must land on the
    simulation's side of the mean-field."""
    exact = stationary_mean_balance(RandomizedTokenAccount(1, 2))
    continuum = randomized_equilibrium(1, 2)  # 0.667
    assert exact > continuum + 0.25
    assert 0.8 <= exact <= 1.5  # simulation measures ~0.99


def test_proactive_strategy_pins_balance_at_zero():
    pi = stationary_distribution(ProactiveStrategy())
    assert pi.shape == (1,)
    assert pi[0] == pytest.approx(1.0)
    assert stationary_mean_balance(ProactiveStrategy()) == pytest.approx(0.0)


def test_simple_strategy_balance_is_a_driftless_walk():
    """With one Poisson arrival per round and reactive = 1 per message,
    the simple account's balance is a near-driftless walk on {0..C}: it
    earns one token per round and spends about one. The stationary mean
    sits mid-range, far from both boundaries."""
    mean = stationary_mean_balance(SimpleTokenAccount(10))
    assert 3.0 < mean < 8.0


def test_zero_arrivals_fills_account():
    """Without traffic the balance climbs to C and stays (proactive
    sends then keep the balance at C)."""
    strategy = RandomizedTokenAccount(5, 10)
    mean = stationary_mean_balance(strategy, arrival_rate=0.0)
    assert mean > 8.0


def test_high_arrival_rate_drains_account():
    strategy = RandomizedTokenAccount(5, 10)
    low_traffic = stationary_mean_balance(strategy, arrival_rate=0.5)
    high_traffic = stationary_mean_balance(strategy, arrival_rate=3.0)
    assert high_traffic < low_traffic


def test_unbounded_strategy_rejected():
    with pytest.raises(ValueError, match="capacity"):
        stationary_mean_balance(PureReactiveStrategy())
