"""Tests for result/figure export."""

import csv
import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.export import (
    figure_to_dict,
    load_result_json,
    result_to_dict,
    save_figure,
    save_result,
)
from repro.experiments.figures import FigureData
from repro.experiments.runner import run_experiment
from repro.metrics.series import TimeSeries


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        ExperimentConfig(
            app="push-gossip",
            strategy="simple",
            capacity=5,
            n=60,
            periods=20,
            seed=9,
            collect_tokens=True,
        )
    )


def test_result_to_dict_is_json_serializable(result):
    document = result_to_dict(result)
    text = json.dumps(document)
    assert "repro-result-v1" in text
    assert document["config"]["app"] == "push-gossip"
    assert len(document["metric"]["times"]) == len(result.metric)
    assert "tokens" in document


def test_result_json_roundtrip(result, tmp_path):
    path = tmp_path / "run.json"
    save_result(result, path)
    loaded = load_result_json(path)
    assert loaded["label"] == result.label
    assert list(loaded["metric"]) == list(result.metric)
    assert list(loaded["tokens"]) == list(result.tokens)
    assert loaded["messages_per_node_per_period"] == pytest.approx(
        result.messages_per_node_per_period
    )


def test_result_csv(result, tmp_path):
    path = tmp_path / "run.csv"
    save_result(result, path)
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["time", "metric"]
    assert len(rows) - 1 == len(result.metric)
    assert float(rows[1][0]) == result.metric.times[0]


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "foreign.json"
    path.write_text('{"hello": "world"}')
    with pytest.raises(ValueError, match="not a repro result"):
        load_result_json(path)


def make_figure():
    return FigureData(
        name="test-figure",
        description="a test",
        series={
            "a": TimeSeries([(0.0, 1.0), (10.0, 2.0)]),
            "b": TimeSeries([(5.0, 3.0)]),
        },
        message_rates={"a": 1.0, "b": 0.9},
        extras={"note": "hi", "skipme": object()},
        scale_label="test",
    )


def test_figure_to_dict_skips_unserializable_extras():
    document = figure_to_dict(make_figure())
    json.dumps(document)  # must not raise
    assert document["extras"] == {"note": "hi"}
    assert set(document["series"]) == {"a", "b"}


def test_figure_json(tmp_path):
    path = tmp_path / "figure.json"
    save_figure(make_figure(), path)
    document = json.loads(path.read_text())
    assert document["format"] == "repro-figure-v1"
    assert document["series"]["a"]["values"] == [1.0, 2.0]


def test_figure_csv_wide_format(tmp_path):
    path = tmp_path / "figure.csv"
    save_figure(make_figure(), path)
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["time", "a", "b"]
    # Union of times: 0, 5, 10; series b has a hole at 0 and 10.
    assert len(rows) == 4
    assert rows[1] == ["0.0", "1.0", ""]
    assert rows[2] == ["5.0", "", "3.0"]
    assert rows[3] == ["10.0", "2.0", ""]