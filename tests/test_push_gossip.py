"""Tests for the push gossip application (§2.3, §4.1.2)."""

import random

import pytest

from repro.apps.push_gossip import (
    PULL_REQUEST,
    PushGossipApp,
    PushGossipMetric,
    UpdateInjector,
)
from repro.core.strategies import ProactiveStrategy, SimpleTokenAccount
from repro.sim.network import Message
from tests.conftest import MiniSystem


def pg_system(strategy, n=4, pull=True, **kwargs):
    return MiniSystem(
        strategy,
        n=n,
        app_factory=lambda i: PushGossipApp(pull_on_rejoin=pull),
        **kwargs,
    )


# ----------------------------------------------------------------------
# State semantics (Algorithm 2 within the framework)
# ----------------------------------------------------------------------
def test_initial_update_is_null():
    app = PushGossipApp()
    assert app.update is None
    assert app.create_message() is None


def test_fresher_update_is_useful_and_adopted():
    app = PushGossipApp()
    assert app.update_state(5, sender=1) is True
    assert app.update == 5


def test_stale_update_is_useless():
    app = PushGossipApp()
    app.update = 10
    assert app.update_state(7, sender=1) is False
    assert app.update == 10


def test_equal_update_is_useless():
    app = PushGossipApp()
    app.update = 10
    assert app.update_state(10, sender=1) is False


def test_null_payload_is_useless():
    app = PushGossipApp()
    assert app.update_state(None, sender=1) is False
    app.update = 3
    assert app.update_state(None, sender=1) is False
    assert app.update == 3


def test_receive_injection():
    app = PushGossipApp()
    assert app.receive_injection(4) is True
    assert app.receive_injection(2) is False  # older than current
    assert app.update == 4


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
def test_injector_injects_at_interval():
    system = pg_system(ProactiveStrategy(), n=4, period=10.0)
    injector = UpdateInjector(
        system.sim, system.nodes, interval=5.0, rng=random.Random(1)
    )
    injector.start()
    system.start()
    system.sim.run(until=24.9)
    assert injector.latest == 5  # t = 0, 5, 10, 15, 20
    assert injector.injected == 5


def test_injector_skips_when_all_offline():
    system = pg_system(ProactiveStrategy(), n=3, period=10.0)
    for node in system.nodes:
        node.set_online(False)
    injector = UpdateInjector(
        system.sim, system.nodes, interval=5.0, rng=random.Random(1)
    )
    injector.start()
    system.sim.run(until=20.0)
    assert injector.latest == 0
    assert injector.skipped_all_offline == 5


def test_injector_reactive_mode_triggers_sends():
    system = pg_system(SimpleTokenAccount(5), n=4, period=1000.0, initial_tokens=3)
    injector = UpdateInjector(
        system.sim,
        system.nodes,
        interval=5.0,
        rng=random.Random(1),
        reactive_injection=True,
    )
    injector.start()
    system.start()
    system.sim.run(until=6.0)
    # With reactive injection, the injected node reacts immediately
    # (simple strategy: one message, one token).
    assert system.network.stats.by_kind.get("data", 0) >= 1


def test_injector_validation():
    system = pg_system(ProactiveStrategy(), n=2, period=10.0)
    with pytest.raises(ValueError):
        UpdateInjector(system.sim, system.nodes, interval=0.0, rng=random.Random(1))


# ----------------------------------------------------------------------
# Metric (eq. 7)
# ----------------------------------------------------------------------
def test_metric_average_lag():
    system = pg_system(ProactiveStrategy(), n=4, period=10.0)
    injector = UpdateInjector(
        system.sim, system.nodes, interval=5.0, rng=random.Random(1)
    )
    metric = PushGossipMetric(system.nodes, injector)
    injector.latest = 10
    system.apps[0].update = 10
    system.apps[1].update = 8
    system.apps[2].update = 5
    system.apps[3].update = None  # counts as index 0
    assert metric(0.0) == pytest.approx((0 + 2 + 5 + 10) / 4)


def test_metric_none_before_first_injection():
    system = pg_system(ProactiveStrategy(), n=2, period=10.0)
    injector = UpdateInjector(
        system.sim, system.nodes, interval=5.0, rng=random.Random(1)
    )
    metric = PushGossipMetric(system.nodes, injector)
    assert metric(0.0) is None


def test_metric_online_nodes_only():
    system = pg_system(ProactiveStrategy(), n=2, period=10.0)
    injector = UpdateInjector(
        system.sim, system.nodes, interval=5.0, rng=random.Random(1)
    )
    metric = PushGossipMetric(system.nodes, injector)
    injector.latest = 6
    system.apps[0].update = 6
    system.apps[1].update = 1
    system.nodes[1].set_online(False)
    assert metric(0.0) == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Pull-on-rejoin (§4.1.2)
# ----------------------------------------------------------------------
def test_rejoin_sends_pull_request():
    system = pg_system(SimpleTokenAccount(5), n=3, period=10.0)
    node = system.nodes[0]
    node.set_online(False)
    node.set_online(True)
    assert system.apps[0].pulls_sent == 1
    assert system.network.stats.by_kind.get(PULL_REQUEST) == 1


def test_pull_disabled_no_request():
    system = pg_system(SimpleTokenAccount(5), n=3, period=10.0, pull=False)
    node = system.nodes[0]
    node.set_online(False)
    node.set_online(True)
    assert system.apps[0].pulls_sent == 0


def test_pull_answered_when_update_and_token_available():
    system = pg_system(SimpleTokenAccount(5), n=2, period=10.0, initial_tokens=2)
    requester, responder = system.nodes
    system.apps[1].update = 9
    responder.deliver(
        Message(src=0, dst=1, payload=None, kind=PULL_REQUEST, sent_at=0.0)
    )
    assert system.apps[1].pulls_answered == 1
    assert responder.account.balance == 1  # one token burnt
    system.sim.run()
    assert system.apps[0].update == 9  # reply delivered as data


def test_pull_refused_without_tokens():
    system = pg_system(SimpleTokenAccount(5), n=2, period=10.0, initial_tokens=0)
    responder = system.nodes[1]
    system.apps[1].update = 9
    responder.deliver(
        Message(src=0, dst=1, payload=None, kind=PULL_REQUEST, sent_at=0.0)
    )
    assert system.apps[1].pulls_refused == 1
    system.sim.run()
    assert system.apps[0].update is None  # no answer given


def test_pull_refused_without_update():
    """No token is wasted answering with an empty update."""
    system = pg_system(SimpleTokenAccount(5), n=2, period=10.0, initial_tokens=2)
    responder = system.nodes[1]
    responder.deliver(
        Message(src=0, dst=1, payload=None, kind=PULL_REQUEST, sent_at=0.0)
    )
    assert system.apps[1].pulls_refused == 1
    assert responder.account.balance == 2  # nothing burnt


def test_pull_reply_enters_reactive_path():
    """The pull reply is a data message: the requester may react to it."""
    system = pg_system(SimpleTokenAccount(5), n=2, period=10.0, initial_tokens=2)
    requester, responder = system.nodes
    system.apps[1].update = 9
    responder.deliver(
        Message(src=0, dst=1, payload=None, kind=PULL_REQUEST, sent_at=0.0)
    )
    system.sim.run()
    # Requester adopted the update and, holding tokens, reacted. The
    # simple strategy reacts to *any* message while tokens remain
    # (eq. 2 ignores usefulness), so the two nodes ping-pong until all
    # tokens drain.
    assert system.apps[0].update == 9
    assert requester.reactive_sends >= 1
    assert requester.account.balance == 0


# ----------------------------------------------------------------------
# Integration: updates actually spread
# ----------------------------------------------------------------------
def test_integration_updates_spread_to_all_nodes():
    system = pg_system(ProactiveStrategy(), n=6, period=10.0, transfer_time=0.1)
    injector = UpdateInjector(
        system.sim, system.nodes, interval=1000.0, rng=random.Random(2)
    )
    injector.start()  # single update at t = 0
    system.start()
    system.run(until=500.0)
    assert injector.latest == 1
    assert all(app.update == 1 for app in system.apps)
