"""CLI coverage for ``--store``, ``repro report`` and ``repro store``.

Uses the ``smoke`` scale preset so CLI-level suites finish in well under
a second; the report tests poison the execution path to prove that a
report never simulates anything.
"""

from __future__ import annotations

import pytest

from repro.cli import main

SUITE_ARGS = [
    "--app",
    "gossip-learning",
    "--strategies",
    "simple",
    "--scale",
    "smoke",
    "--seed",
    "3",
    "--workers",
    "1",
    "--quiet",
]


@pytest.fixture(autouse=True)
def _isolated_scale(monkeypatch):
    """Keep --scale side effects (REPRO_SCALE mutation) out of other tests."""
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    monkeypatch.delenv("REPRO_STORE", raising=False)
    yield
    monkeypatch.delenv("REPRO_SCALE", raising=False)


def _poison_execution(monkeypatch):
    def boom(*args, **kwargs):
        raise AssertionError("a cell was simulated, expected pure cache hits")

    monkeypatch.setattr("repro.experiments.suite._execute_cell", boom)


def _populate(store_path) -> None:
    assert main(["suite", *SUITE_ARGS, "--store", str(store_path)]) == 0


def test_suite_store_cold_then_warm(tmp_path, capsys, monkeypatch):
    store = tmp_path / "store"
    assert main(["suite", *SUITE_ARGS, "--store", str(store)]) == 0
    cold_out = capsys.readouterr().out
    assert "0 cache hit(s), 3 simulated" in cold_out

    _poison_execution(monkeypatch)
    assert main(["suite", *SUITE_ARGS, "--store", str(store)]) == 0
    warm_out = capsys.readouterr().out
    assert "3 cache hit(s), 0 simulated" in warm_out
    # The sweep tables of both runs are identical, line for line.
    table = [line for line in cold_out.splitlines() if "best:" in line]
    assert table and table == [
        line for line in warm_out.splitlines() if "best:" in line
    ]


def test_report_suite_rebuilds_without_simulation(tmp_path, capsys, monkeypatch):
    store = tmp_path / "store"
    _populate(store)
    capsys.readouterr()
    _poison_execution(monkeypatch)
    report_args = [
        arg for arg in SUITE_ARGS if arg not in ("--workers", "1", "--quiet")
    ]
    assert main(["report", "suite", *report_args, "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "zero cells simulated" in out
    assert "best:" in out


def test_report_suite_missing_cells_fails_cleanly(tmp_path, capsys):
    store = tmp_path / "store"
    _populate(store)
    capsys.readouterr()
    code = main(
        [
            "report",
            "suite",
            "--app",
            "gossip-learning",
            "--strategies",
            "generalized",
            "--scale",
            "smoke",
            "--seed",
            "3",
            "--store",
            str(store),
        ]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "missing" in err and "--store" in err


def test_report_requires_a_store(capsys):
    code = main(["report", "suite", "--app", "gossip-learning", "--scale", "smoke"])
    assert code == 2
    assert "REPRO_STORE" in capsys.readouterr().err


def test_report_figure_from_store_and_save(tmp_path, capsys, monkeypatch):
    store = tmp_path / "figs"
    figure_args = [
        "figure",
        "2",
        "--app",
        "gossip-learning",
        "--scale",
        "smoke",
        "--quick",
        "--workers",
        "1",
    ]
    assert main([*figure_args, "--store", str(store)]) == 0
    capsys.readouterr()

    _poison_execution(monkeypatch)
    saved = tmp_path / "figure2.json"
    code = main(
        [
            "report",
            "figure",
            "2",
            "--app",
            "gossip-learning",
            "--scale",
            "smoke",
            "--quick",
            "--store",
            str(store),
            "--save",
            str(saved),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "rebuilt from the result store" in out
    assert saved.exists()


def test_store_ls_gc_and_env_fallback(tmp_path, capsys, monkeypatch):
    store = tmp_path / "store"
    _populate(store)
    capsys.readouterr()

    monkeypatch.setenv("REPRO_STORE", str(store))
    assert main(["store", "ls"]) == 0
    out = capsys.readouterr().out
    assert "3 entr" in out
    assert "gossip-learning/simple" in out

    assert main(["store", "gc"]) == 0
    assert "removed 0" in capsys.readouterr().out
    assert main(["store", "gc", "--all"]) == 0
    assert "removed 3" in capsys.readouterr().out
    assert main(["store", "ls"]) == 0
    assert "0 entr" in capsys.readouterr().out


def test_store_ls_without_store_is_usage_error(capsys):
    assert main(["store", "ls"]) == 2
    assert "REPRO_STORE" in capsys.readouterr().err


def test_store_diff_identical_and_divergent(tmp_path, capsys):
    left, right = tmp_path / "left", tmp_path / "right"
    _populate(left)
    _populate(right)
    capsys.readouterr()
    assert main(["store", "diff", str(left), str(right)]) == 0
    out = capsys.readouterr().out
    assert "matching cells:  3" in out
    assert "differing cells: 0" in out

    # A different seed produces disjoint keys, not differing cells.
    seed_args = [arg if arg != "3" else "4" for arg in SUITE_ARGS]
    assert main(["suite", *seed_args, "--store", str(right)]) == 0
    capsys.readouterr()
    assert main(["store", "diff", str(left), str(right)]) == 0
    out = capsys.readouterr().out
    assert "only in B:       3" in out


def test_run_command_with_store_round_trip(tmp_path, capsys):
    store = tmp_path / "runs"
    run_args = [
        "run",
        "--app",
        "push-gossip",
        "--strategy",
        "simple",
        "-C",
        "5",
        "--nodes",
        "60",
        "--periods",
        "10",
        "--store",
        str(store),
    ]
    assert main(run_args) == 0
    first = capsys.readouterr().out
    assert main(run_args) == 0
    second = capsys.readouterr().out
    # Identical table and summary; the second run was a cache hit.
    assert first.splitlines()[1:] == second.splitlines()[1:]
