"""Stable hashing and the consistent-hash ring: the cluster's routing core.

Two claims carry the multi-process cluster's correctness:

1. :func:`repro.serve.ring.stable_hash` is a pure function of the key
   bytes — identical across interpreter restarts and ``PYTHONHASHSEED``
   values — so the router and every worker's shard table agree on key
   placement forever. The golden values below pin the function itself:
   if the hash ever changes, persisted expectations (and any rolling
   cluster upgrade) would silently reshuffle every key.
2. Removing one of ``W`` ring members remaps *only that member's keys*
   (about ``1/W`` of the space) and never moves a key between two
   survivors — the failure-remap contract the router relies on to keep
   the §3.4 burst bound local to the dead worker's key range.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.ring import HashRing, stable_hash
from repro.serve.table import ShardedTable

# ----------------------------------------------------------------------
# stable_hash: pinned golden values
# ----------------------------------------------------------------------

#: regression pins — recompute only for a deliberate, breaking format
#: change (it reshuffles every deployed cluster's key placement)
GOLDEN_HASHES = {
    "alpha": 11099342189553124947,
    "beta": 12551039221781777427,
    "gamma": 17692412228044146680,
    "key0": 2600391952077980608,
}

GOLDEN_SEEDED = {
    "alpha": 3156713447692859461,
    "key0": 848079023173332410,
}

#: shard placement of key0..key11 on an 8-shard table — pinned so a
#: table rebuilt after an interpreter restart routes identically
GOLDEN_SHARDS_8 = [0, 6, 2, 6, 5, 0, 3, 5, 3, 4, 7, 6]


def test_stable_hash_matches_golden_values():
    for key, value in GOLDEN_HASHES.items():
        assert stable_hash(key) == value
    for key, value in GOLDEN_SEEDED.items():
        assert stable_hash(key, seed=7) == value


def test_stable_hash_accepts_bytes_like_input():
    assert stable_hash(b"alpha") == stable_hash("alpha")
    assert stable_hash(memoryview(b"alpha")) == stable_hash("alpha")
    assert stable_hash("héllo") == stable_hash("héllo".encode("utf-8"))


def test_stable_hash_seed_gives_independent_functions():
    assert stable_hash("alpha", seed=1) != stable_hash("alpha")
    assert stable_hash("alpha", seed=1) != stable_hash("alpha", seed=2)
    # the seed is masked to 64 bits, not rejected
    assert stable_hash("alpha", seed=2**70 + 3) == stable_hash("alpha", seed=3)


def test_stable_hash_survives_interpreter_restarts():
    """The same keys hash identically under fresh, differently-salted
    interpreters — the property builtin ``hash()`` lacks."""
    script = (
        "from repro.serve.ring import stable_hash\n"
        "from repro.serve.table import ShardedTable\n"
        "t = ShardedTable(shards=8, max_keys=64)\n"
        "print([stable_hash(k) for k in ('alpha', 'beta', 'gamma', 'key0')])\n"
        "print([t.shard_index('key%d' % i) for i in range(12)])\n"
    )
    outputs = []
    for hash_seed in ("0", "1", "12345"):
        env = {**os.environ, "PYTHONHASHSEED": hash_seed}
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1] == outputs[2]
    hashes, shards = outputs[0].splitlines()
    assert eval(hashes) == [GOLDEN_HASHES[k] for k in ("alpha", "beta", "gamma", "key0")]
    assert eval(shards) == GOLDEN_SHARDS_8


def test_sharded_table_pins_shard_assignment():
    table = ShardedTable(shards=8, max_keys=64)
    assert [table.shard_index(f"key{i}") for i in range(12)] == GOLDEN_SHARDS_8
    # memoized second lookup agrees, and shard_for honours the index
    for i in range(12):
        key = f"key{i}"
        assert table.shard_index(key) == GOLDEN_SHARDS_8[i]
        assert table.shard_for(key) is table.shards[GOLDEN_SHARDS_8[i]]


def test_sharded_table_single_shard_routes_everything_to_zero():
    table = ShardedTable(shards=1, max_keys=8)
    assert all(table.shard_index(f"k{i}") == 0 for i in range(20))


# ----------------------------------------------------------------------
# HashRing: basic contract
# ----------------------------------------------------------------------

def test_ring_owner_is_deterministic_and_a_member():
    ring = HashRing(["w0", "w1", "w2"], replicas=96, seed=1)
    owners = [ring.owner(f"key{i}") for i in range(8)]
    assert owners == ["w1", "w0", "w2", "w0", "w0", "w1", "w2", "w1"]
    rebuilt = HashRing(["w2", "w0", "w1"], replicas=96, seed=1)
    assert [rebuilt.owner(f"key{i}") for i in range(8)] == owners


def test_ring_edge_cases():
    with pytest.raises(LookupError):
        HashRing().owner("k")
    with pytest.raises(ValueError):
        HashRing(replicas=0)
    ring = HashRing(["w0"])
    with pytest.raises(ValueError):
        ring.add("w0")
    with pytest.raises(KeyError):
        ring.remove("w9")
    assert ring.owner("anything") == "w0"
    assert "w0" in ring and "w1" not in ring
    assert len(ring) == 1 and ring.members == ("w0",)


# ----------------------------------------------------------------------
# HashRing: the failure-remap property
# ----------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    workers=st.integers(min_value=2, max_value=6),
    victim=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_ring_removal_remaps_only_the_victims_keys(workers, victim, seed):
    """Removing one of W members moves exactly its keys — survivors keep
    every key they owned, and the moved share stays near ``K/W``."""
    victim %= workers
    names = [f"w{i}" for i in range(workers)]
    keys = [f"key{i}" for i in range(2000)]
    ring = HashRing(names, replicas=96, seed=seed)
    before = {key: ring.owner(key) for key in keys}
    ring.remove(names[victim])
    after = {key: ring.owner(key) for key in keys}

    moved = {key for key in keys if before[key] != after[key]}
    owned_by_victim = {key for key in keys if before[key] == names[victim]}
    # 1) exactly the victim's keys move, nothing between survivors
    assert moved == owned_by_victim
    # 2) every moved key lands on a live survivor
    assert all(after[key] != names[victim] for key in moved)
    # 3) the victim's share concentrates near K/W: ceil(K/W) + 50% slack
    #    (96 replicas keep member shares within a few percent of fair)
    assert len(moved) <= math.ceil(len(keys) / workers) * 1.5


def test_ring_add_back_restores_previous_ownership():
    """Member points are a pure function of (name, seed), so removing and
    re-adding a member restores the exact pre-failure placement."""
    ring = HashRing(["w0", "w1", "w2"], replicas=64, seed=9)
    keys = [f"key{i}" for i in range(500)]
    before = {key: ring.owner(key) for key in keys}
    ring.remove("w1")
    ring.add("w1")
    assert {key: ring.owner(key) for key in keys} == before
