"""Tests for graded usefulness — the §3.1 future-work extension."""

import pytest

from repro.apps.chaotic_iteration import ChaoticIterationApp
from repro.apps.gossip_learning import GossipLearningApp, ModelToken
from repro.apps.push_gossip import PushGossipApp
from repro.core.grading import (
    GradedGeneralizedTokenAccount,
    GradedRandomizedTokenAccount,
    as_grade,
    saturating_grade,
)
from repro.core.strategies import (
    GeneralizedTokenAccount,
    RandomizedTokenAccount,
    make_strategy,
    validate_strategy,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


# ----------------------------------------------------------------------
# Grade normalization helpers
# ----------------------------------------------------------------------
def test_as_grade_booleans():
    assert as_grade(True) == 1.0
    assert as_grade(False) == 0.0


def test_as_grade_floats_pass_through():
    assert as_grade(0.25) == 0.25
    assert as_grade(1.0) == 1.0
    assert as_grade(0) == 0.0


def test_as_grade_rejects_out_of_range():
    with pytest.raises(ValueError):
        as_grade(1.5)
    with pytest.raises(ValueError):
        as_grade(-0.1)


def test_saturating_grade():
    assert saturating_grade(0.0, 10.0) == 0.0
    assert saturating_grade(-5.0, 10.0) == 0.0
    assert saturating_grade(5.0, 10.0) == 0.5
    assert saturating_grade(10.0, 10.0) == 1.0
    assert saturating_grade(50.0, 10.0) == 1.0
    with pytest.raises(ValueError):
        saturating_grade(1.0, 0.0)


# ----------------------------------------------------------------------
# Graded strategies
# ----------------------------------------------------------------------
def test_graded_randomized_linear_in_grade():
    strategy = GradedRandomizedTokenAccount(5, 10)
    assert strategy.reactive(10, 0.0) == 0.0
    assert strategy.reactive(10, 0.5) == pytest.approx(1.0)
    assert strategy.reactive(10, 1.0) == pytest.approx(2.0)


def test_graded_randomized_reduces_to_binary():
    graded = GradedRandomizedTokenAccount(5, 10)
    binary = RandomizedTokenAccount(5, 10)
    for balance in range(11):
        assert graded.reactive(balance, True) == binary.reactive(balance, True)
        assert graded.reactive(balance, False) == binary.reactive(balance, False)
        assert graded.proactive(balance) == binary.proactive(balance)


def test_graded_generalized_reduces_to_binary():
    for a_param, capacity in ((1, 5), (5, 10), (10, 10)):
        graded = GradedGeneralizedTokenAccount(a_param, capacity)
        binary = GeneralizedTokenAccount(a_param, capacity)
        for balance in range(capacity + 1):
            assert graded.reactive(balance, True) == binary.reactive(balance, True)
            assert graded.reactive(balance, False) == binary.reactive(balance, False)


def test_graded_generalized_interpolates():
    strategy = GradedGeneralizedTokenAccount(5, 20)
    full = strategy.reactive(16, 1.0)
    half = strategy.reactive(16, 0.0)
    middle = strategy.reactive(16, 0.5)
    assert half <= middle <= full
    assert full == 4.0 and half == 2.0 and middle == 3.0


def test_graded_strategies_never_overspend():
    for strategy in (
        GradedRandomizedTokenAccount(5, 10),
        GradedGeneralizedTokenAccount(5, 10),
    ):
        for balance in range(11):
            for grade in (0.0, 0.25, 0.5, 0.75, 1.0):
                assert strategy.reactive(balance, grade) <= balance


def test_graded_strategies_monotone_in_grade():
    for strategy in (
        GradedRandomizedTokenAccount(3, 9),
        GradedGeneralizedTokenAccount(3, 9),
    ):
        for balance in range(10):
            values = [strategy.reactive(balance, g) for g in (0.0, 0.2, 0.5, 0.8, 1.0)]
            assert values == sorted(values)


def test_graded_strategies_satisfy_binary_contract():
    validate_strategy(GradedRandomizedTokenAccount(5, 10))
    validate_strategy(GradedGeneralizedTokenAccount(5, 10))


def test_factory_builds_graded_strategies():
    s = make_strategy("graded-randomized", spend_rate=2, capacity=4)
    assert s.describe() == "graded-randomized(A=2, C=4)"
    g = make_strategy("graded-generalized", spend_rate=2, capacity=4)
    assert g.describe() == "graded-generalized(A=2, C=4)"
    with pytest.raises(ValueError):
        make_strategy("graded-randomized", spend_rate=2)


# ----------------------------------------------------------------------
# Application grading modes
# ----------------------------------------------------------------------
def test_push_gossip_grading():
    app = PushGossipApp(grading_scale=10.0)
    assert app.update_state(5, sender=1) == 0.5  # gap 5 of scale 10
    assert app.update_state(5, sender=1) is False  # stale
    assert app.update_state(25, sender=1) == 1.0  # gap 20 saturates
    assert app.update_state(26, sender=1) == pytest.approx(0.1)


def test_gossip_learning_grading():
    app = GossipLearningApp(grading_scale=4.0)
    app.lineage = 0
    app.age = 10
    # Received age 13 -> new age 14, gain 4 -> grade 1.0.
    assert app.update_state(ModelToken(age=13, lineage=1), sender=1) == 1.0
    # Received age 14 -> new age 15, gain 1 -> grade 0.25.
    assert app.update_state(ModelToken(age=14, lineage=1), sender=1) == 0.25
    assert app.update_state(ModelToken(age=2, lineage=1), sender=1) is False


def test_chaotic_iteration_grading():
    app = ChaoticIterationApp({1: 1.0}, initial_buffer=1.0, grading_scale=0.5)
    # x goes 1.0 -> 1.25: relative change 0.25 of scale 0.5 -> grade 0.5.
    assert app.update_state(1.25, sender=1) == pytest.approx(0.5)
    # No change -> False.
    assert app.update_state(1.25, sender=1) is False
    # Huge change saturates at 1.0.
    assert app.update_state(100.0, sender=1) == 1.0


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------
def test_graded_run_end_to_end():
    result = run_experiment(
        ExperimentConfig(
            app="push-gossip",
            strategy="graded-randomized",
            spend_rate=5,
            capacity=10,
            grading_scale=5.0,
            n=150,
            periods=60,
            seed=4,
            audit_sends=True,
        )
    )
    assert result.ratelimit_violations == []
    assert result.messages_per_node_per_period <= 1.02
    proactive = run_experiment(
        ExperimentConfig(
            app="push-gossip", strategy="proactive", n=150, periods=60, seed=4
        )
    )
    start = proactive.metric.times[-1] / 2
    assert result.metric.mean(start=start) < proactive.metric.mean(start=start)


def test_binary_strategies_coarsen_grades():
    """A graded app with a binary strategy still works: any positive
    grade counts as useful via truthiness."""
    result = run_experiment(
        ExperimentConfig(
            app="push-gossip",
            strategy="randomized",
            spend_rate=5,
            capacity=10,
            grading_scale=5.0,
            n=100,
            periods=40,
            seed=4,
        )
    )
    assert not result.metric.empty
