"""Tests for the declarative scenario layer and the newly opened matrix."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.scenarios import (
    SCENARIO_PRESETS,
    SCENARIOS,
    ComponentRef,
    NetworkSpec,
    ScenarioSpec,
    scenario_preset,
)

SMALL = dict(n=60, periods=12, seed=3)


def small_spec(**overrides):
    base = dict(
        app=ComponentRef.of("push-gossip"),
        strategy=ComponentRef.of("randomized", spend_rate=5, capacity=10),
        **SMALL,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# ----------------------------------------------------------------------
# ComponentRef / NetworkSpec
# ----------------------------------------------------------------------
def test_component_ref_params_are_order_insensitive():
    a = ComponentRef.of("generalized", spend_rate=5, capacity=10)
    b = ComponentRef.of("generalized", capacity=10, spend_rate=5)
    assert a == b
    assert a.kwargs == {"spend_rate": 5, "capacity": 10}


def test_component_ref_with_params_merges():
    ref = ComponentRef.of("kout", k=20)
    assert ref.with_params(k=5).kwargs == {"k": 5}
    assert ref.label() == "kout(k=20)"


def test_network_spec_validation():
    with pytest.raises(ValueError):
        NetworkSpec(loss_rate=1.0)
    with pytest.raises(ValueError):
        NetworkSpec(transfer_jitter=1.5)
    with pytest.raises(ValueError):
        NetworkSpec(transfer_time=0.0)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_components():
    with pytest.raises(ValueError, match="unknown app"):
        small_spec(app=ComponentRef.of("raft"))
    with pytest.raises(ValueError, match="unknown strategy"):
        small_spec(strategy=ComponentRef.of("leaky-bucket"))
    with pytest.raises(ValueError, match="unknown overlay"):
        small_spec(overlay=ComponentRef.of("torus"))
    with pytest.raises(ValueError, match="unknown churn model"):
        small_spec(churn=ComponentRef.of("meteor-strike"))


def test_spec_rejects_bad_component_params():
    with pytest.raises(ValueError, match="unknown parameter"):
        small_spec(app=ComponentRef.of("push-gossip", shininess=1))
    with pytest.raises(ValueError):  # C < A fails inside the strategy
        small_spec(strategy=ComponentRef.of("randomized", spend_rate=10, capacity=5))


def test_spec_rejects_churn_incompatible_app():
    with pytest.raises(ValueError, match="churn"):
        small_spec(
            app=ComponentRef.of("replication-repair"),
            churn=ComponentRef("stunner-trace"),
        )


def test_spec_structural_validation():
    with pytest.raises(ValueError):
        small_spec(n=1)
    with pytest.raises(ValueError):
        small_spec(periods=0)
    with pytest.raises(ValueError):
        small_spec(period_spread=1.0)


def test_scenario_presets_cover_scenarios_tuple():
    assert SCENARIOS == tuple(SCENARIO_PRESETS)
    with pytest.raises(ValueError, match="unknown scenario"):
        scenario_preset("mars")


def test_spec_label_and_overrides():
    spec = small_spec()
    assert spec.label() == "push-gossip/randomized(A=5, C=10)/failure-free"
    other = spec.with_overrides(seed=99)
    assert other.seed == 99
    assert spec.seed == SMALL["seed"]


def test_config_to_spec_round_trips_fields():
    config = ExperimentConfig(
        app="gossip-learning",
        strategy="generalized",
        spend_rate=5,
        capacity=10,
        n=80,
        periods=20,
        seed=11,
        loss_rate=0.1,
        grading_scale=4.0,
    )
    spec = config.to_spec()
    assert spec.app.kwargs["grading_scale"] == 4.0
    assert spec.strategy.kwargs == {"spend_rate": 5, "capacity": 10}
    assert spec.network.loss_rate == 0.1
    assert spec.n == 80 and spec.periods == 20 and spec.seed == 11
    assert spec.horizon == config.horizon


# ----------------------------------------------------------------------
# The three newly opened scenario combinations
# ----------------------------------------------------------------------
def test_trace_driven_chaotic_iteration_runs():
    spec = small_spec(
        app=ComponentRef.of("chaotic-iteration"),
        strategy=ComponentRef.of("generalized", spend_rate=2, capacity=6),
        churn=ComponentRef("stunner-trace"),
    )
    result = run_experiment(spec)
    assert not result.metric.empty
    assert result.label == "chaotic-iteration/generalized(A=2, C=6)/trace"
    # Deterministic: same spec, same seed, same series.
    again = run_experiment(spec)
    assert result.metric.values == again.metric.values


def test_lossy_watts_strogatz_push_gossip_runs():
    spec = small_spec(
        overlay=ComponentRef.of("watts-strogatz", degree=4, rewire=0.05),
        network=NetworkSpec(loss_rate=0.10),
    )
    result = run_experiment(spec)
    assert not result.metric.empty
    assert result.network.lost_dropped > 0
    again = run_experiment(spec)
    assert result.metric.values == again.metric.values


def test_flash_crowd_churn_runs():
    spec = small_spec(
        app=ComponentRef.of("gossip-learning"),
        strategy=ComponentRef.of("simple", capacity=5),
        churn=ComponentRef.of("flash-crowd", base_fraction=0.4),
        periods=20,
    )
    result = run_experiment(spec)
    assert not result.metric.empty
    # The crowd churns in and out again: some deliveries must have
    # found their destination offline.
    assert result.network.lost_offline > 0
    again = run_experiment(spec)
    assert result.metric.values == again.metric.values


def test_legacy_config_paths_for_new_combinations():
    # The flat veneer reaches the same combinations.
    chaotic = ExperimentConfig(
        app="chaotic-iteration",
        strategy="randomized",
        spend_rate=2,
        capacity=6,
        scenario="trace",
        **SMALL,
    )
    lossy = ExperimentConfig(
        app="push-gossip",
        strategy="randomized",
        spend_rate=5,
        capacity=10,
        overlay="watts-strogatz",
        loss_rate=0.1,
        **SMALL,
    )
    crowd = ExperimentConfig(
        app="gossip-learning",
        strategy="simple",
        capacity=5,
        scenario="flash-crowd",
        **SMALL,
    )
    for config in (chaotic, lossy, crowd):
        assert not run_experiment(config).metric.empty


# ----------------------------------------------------------------------
# The new first-class network/timing axes
# ----------------------------------------------------------------------
def test_export_marks_spec_configs(tmp_path):
    from repro.experiments.export import load_result_json, save_result

    spec_result = run_experiment(small_spec())
    spec_path = tmp_path / "spec.json"
    save_result(spec_result, spec_path)
    document = load_result_json(spec_path)
    assert document["config_format"] == "scenario-spec-v1"
    assert document["config"]["app"]["name"] == "push-gossip"

    flat_result = run_experiment(
        ExperimentConfig(app="push-gossip", strategy="simple", capacity=5, **SMALL)
    )
    flat_path = tmp_path / "flat.json"
    save_result(flat_result, flat_path)
    document = load_result_json(flat_path)
    assert "config_format" not in document
    assert document["config"]["capacity"] == 5


def test_transfer_jitter_changes_and_stays_deterministic():
    plain = small_spec()
    jittered = small_spec(network=NetworkSpec(transfer_jitter=0.5))
    a = run_experiment(jittered)
    b = run_experiment(jittered)
    assert a.metric.values == b.metric.values
    assert a.metric.values != run_experiment(plain).metric.values


def test_period_spread_heterogeneous_periods():
    from repro.experiments.runner import Experiment

    spread = small_spec(period_spread=0.3)
    experiment = Experiment(spread)
    periods = {node.process.period for node in experiment.nodes}
    assert len(periods) > 1
    nominal = spread.period
    assert all(nominal * 0.7 <= period <= nominal * 1.3 for period in periods)
    a = run_experiment(spread)
    b = run_experiment(spread)
    assert a.metric.values == b.metric.values


def test_period_spread_keeps_burst_bound():
    spec = small_spec(period_spread=0.2, audit_sends=True)
    result = run_experiment(spec)
    assert result.ratelimit_violations == []


# ----------------------------------------------------------------------
# Flash-crowd trace shape
# ----------------------------------------------------------------------
def test_flash_crowd_trace_shape():
    import random

    from repro.churn.flash_crowd import FlashCrowdConfig, generate_flash_crowd_trace

    config = FlashCrowdConfig(horizon=1000.0, base_fraction=0.3)
    trace = generate_flash_crowd_trace(200, random.Random(1), config)
    online_start = sum(trace.is_online(i, 0.0) for i in range(200))
    online_peak = sum(trace.is_online(i, 250.0) for i in range(200))
    online_end = sum(trace.is_online(i, 999.0) for i in range(200))
    # Backbone only at the start, surge at the peak, decay by the end.
    assert online_start == pytest.approx(60, abs=2)
    assert online_peak > 2 * online_start
    assert online_end < online_peak
