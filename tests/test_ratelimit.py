"""Tests for the §3.4 burst bound and its auditor."""

import pytest

from repro.core.ratelimit import RateLimitAuditor, burst_bound
from repro.core.strategies import (
    GeneralizedTokenAccount,
    RandomizedTokenAccount,
    SimpleTokenAccount,
)
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import SimNode
from tests.conftest import MiniSystem


class Sink(SimNode):
    def deliver(self, message):
        pass


def test_burst_bound_formula():
    # ceil(t/Delta) + C
    assert burst_bound(0.0, 10.0, 5) == 5
    assert burst_bound(10.0, 10.0, 5) == 6
    assert burst_bound(25.0, 10.0, 5) == 8
    assert burst_bound(9.99, 10.0, 0) == 1


def test_burst_bound_validation():
    with pytest.raises(ValueError):
        burst_bound(-1.0, 10.0, 0)
    with pytest.raises(ValueError):
        burst_bound(1.0, 0.0, 0)
    with pytest.raises(ValueError):
        burst_bound(1.0, 10.0, -1)


def make_network_with_sends(times, kind="data"):
    sim = Simulator()
    network = Network(sim, 0.0)
    network.register_all([Sink(0), Sink(1)])
    auditor = RateLimitAuditor(network)
    for time in times:
        sim.schedule_at(time, network.send, 0, 1, None, kind)
    sim.run()
    return auditor


def test_window_edge_float_noise_not_flagged():
    """A send an ulp inside the window edge must not count (regression).

    Tick times are ``phase + k·Δ`` while the auditor's window edge is
    ``(phase + j·Δ) + w`` — float expressions that can disagree by one
    ulp. Before the scale-relative edge epsilon, that flagged every
    C = 0 (send-every-round) node as bursting.
    """
    phase, delta = 2074.3519747297896 - 11 * 172.8, 172.8
    times = [phase + k * delta for k in range(50)]
    # The exact failure shape: the next tick computes *below* the edge.
    assert any(times[k + 1] < times[k] + delta for k in range(49))
    auditor = make_network_with_sends(times)
    assert auditor.max_sends_in_window(0, delta) == 1
    assert auditor.check(period=delta, capacity=0) == []


def test_real_violation_still_detected_despite_edge_epsilon():
    """The epsilon is sub-microsecond: true bursts still trip the bound."""
    auditor = make_network_with_sends([0.0, 0.001, 0.002])
    assert auditor.max_sends_in_window(0, 1.0) == 3
    violations = auditor.check(period=10.0, capacity=0, windows=[1.0])
    assert violations and violations[0].sends == 3


def test_max_sends_in_window():
    auditor = make_network_with_sends([0.0, 1.0, 2.0, 50.0, 51.0])
    assert auditor.max_sends_in_window(0, 3.0) == 3
    assert auditor.max_sends_in_window(0, 1.5) == 2
    assert auditor.max_sends_in_window(0, 100.0) == 5
    assert auditor.max_sends_in_window(0, 0.5) == 1
    assert auditor.max_sends_in_window(99, 10.0) == 0


def test_window_is_half_open():
    auditor = make_network_with_sends([0.0, 5.0])
    # Window [0, 5) does not include the send at exactly t = 5.
    assert auditor.max_sends_in_window(0, 5.0) == 1


def test_check_flags_violation():
    # 7 sends within one second: must violate Delta = 10, C = 2
    auditor = make_network_with_sends([0.1 * i for i in range(7)])
    violations = auditor.check(period=10.0, capacity=2)
    assert violations
    worst = violations[0]
    assert worst.node_id == 0
    assert worst.sends > worst.bound


def test_check_passes_compliant_pattern():
    # One send per period plus an initial burst of C.
    times = [0.0, 0.1, 0.2] + [10.0 * k for k in range(1, 10)]
    auditor = make_network_with_sends(times)
    assert auditor.check(period=10.0, capacity=3) == []


def test_control_messages_not_counted():
    auditor = make_network_with_sends([0.0, 0.1, 0.2], kind="pull-request")
    assert auditor.total_sends(0) == 0


def test_total_sends():
    auditor = make_network_with_sends([1.0, 2.0, 3.0])
    assert auditor.total_sends(0) == 3


# ----------------------------------------------------------------------
# End-to-end: simulated token account runs never violate the bound.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "strategy",
    [
        SimpleTokenAccount(5),
        GeneralizedTokenAccount(1, 8),
        GeneralizedTokenAccount(2, 4),
        RandomizedTokenAccount(3, 6),
    ],
    ids=lambda s: s.describe(),
)
def test_simulated_runs_respect_bound(strategy):
    system = MiniSystem(strategy, n=8, period=10.0, useful=True)
    auditor = RateLimitAuditor(system.network)
    system.start()
    system.run(until=600.0)
    assert system.network.stats.sent > 0
    violations = auditor.check(period=10.0, capacity=strategy.token_capacity)
    assert violations == [], "\n".join(str(v) for v in violations)
