"""Unit tests for periodic processes (the wait(Δ) loop)."""

import random

import pytest

from repro.sim.process import PeriodicProcess


def ticks_of(sim, period, phase, until):
    times = []
    process = PeriodicProcess(sim, period, lambda: times.append(sim.now), phase=phase)
    process.start()
    sim.run(until=until)
    return times, process


def test_ticks_on_grid(sim):
    times, _ = ticks_of(sim, period=10.0, phase=3.0, until=45.0)
    assert times == [3.0, 13.0, 23.0, 33.0, 43.0]


def test_zero_phase_first_tick_at_zero(sim):
    times, _ = ticks_of(sim, period=5.0, phase=0.0, until=11.0)
    assert times == [0.0, 5.0, 10.0]


def test_random_phase_within_period(sim):
    rng = random.Random(7)
    for _ in range(50):
        process = PeriodicProcess(sim, 10.0, lambda: None, rng=rng)
        assert 0.0 <= process.phase < 10.0


def test_phase_requires_rng_or_value(sim):
    with pytest.raises(ValueError):
        PeriodicProcess(sim, 10.0, lambda: None)


def test_invalid_period_rejected(sim):
    with pytest.raises(ValueError):
        PeriodicProcess(sim, 0.0, lambda: None, phase=0.0)
    with pytest.raises(ValueError):
        PeriodicProcess(sim, -5.0, lambda: None, phase=0.0)


def test_phase_out_of_range_rejected(sim):
    with pytest.raises(ValueError):
        PeriodicProcess(sim, 10.0, lambda: None, phase=10.0)
    with pytest.raises(ValueError):
        PeriodicProcess(sim, 10.0, lambda: None, phase=-1.0)


def test_stop_halts_ticking(sim):
    times = []
    process = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), phase=0.0)
    process.start()
    sim.schedule_at(25.0, process.stop)
    sim.run(until=100.0)
    assert times == [0.0, 10.0, 20.0]
    assert not process.running


def test_restart_resumes_on_same_grid(sim):
    times = []
    process = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), phase=2.0)
    process.start()
    sim.schedule_at(25.0, process.stop)
    sim.schedule_at(47.0, process.start)
    sim.run(until=75.0)
    # Stopped after ticks at 2, 12, 22; restart at 47 resumes at 52.
    assert times == [2.0, 12.0, 22.0, 52.0, 62.0, 72.0]


def test_double_start_raises(sim):
    process = PeriodicProcess(sim, 10.0, lambda: None, phase=0.0)
    process.start()
    with pytest.raises(RuntimeError):
        process.start()


def test_stop_is_idempotent(sim):
    process = PeriodicProcess(sim, 10.0, lambda: None, phase=0.0)
    process.start()
    process.stop()
    process.stop()


def test_start_mid_simulation_picks_next_grid_point(sim):
    times = []
    process = PeriodicProcess(sim, 10.0, lambda: times.append(sim.now), phase=4.0)
    sim.schedule_at(17.0, process.start)
    sim.run(until=40.0)
    assert times == [24.0, 34.0]


def test_ticks_fired_counter(sim):
    process = PeriodicProcess(sim, 10.0, lambda: None, phase=0.0)
    process.start()
    sim.run(until=55.0)
    assert process.ticks_fired == 6  # t = 0, 10, 20, 30, 40, 50


def test_callback_cost_does_not_drift_grid(sim):
    """Ticks stay on phase + k*period even if callbacks schedule work."""
    times = []

    def callback():
        times.append(sim.now)
        sim.schedule(3.0, lambda: None)  # unrelated event between ticks

    PeriodicProcess(sim, 10.0, callback, phase=1.0).start()
    sim.run(until=41.0)
    assert times == [1.0, 11.0, 21.0, 31.0, 41.0]


def test_stop_inside_callback(sim):
    times = []
    process = None

    def callback():
        times.append(sim.now)
        if len(times) == 2:
            process.stop()

    process = PeriodicProcess(sim, 10.0, callback, phase=0.0)
    process.start()
    sim.run(until=100.0)
    assert times == [0.0, 10.0]


def test_next_tick_time(sim):
    process = PeriodicProcess(sim, 10.0, lambda: None, phase=3.0)
    process.start()
    assert process.next_tick_time() == 3.0
    sim.run(until=3.0)
    assert process.next_tick_time() == 13.0
