"""Tests for the §4.2 parameter sweep harness."""

from repro.experiments.scale import ScalePreset
from repro.experiments.sweep import (
    PAPER_A_VALUES,
    PAPER_C_MINUS_A,
    SweepCell,
    format_sweep_table,
    parameter_grid,
    run_sweep,
)

MICRO = ScalePreset(
    name="micro", n=80, n_large=160, periods=30, repeats=1, trace_users=100
)


def test_paper_grid_definition():
    assert PAPER_A_VALUES == (1, 2, 5, 10, 15, 20, 40)
    assert PAPER_C_MINUS_A == (0, 1, 2, 5, 10, 15, 20, 40, 80)
    grid = parameter_grid()
    assert len(grid) == 7 * 9
    assert all(a <= c for a, c in grid)
    assert (1, 1) in grid  # A=1, C-A=0
    assert (40, 120) in grid  # A=40, C-A=80


def test_custom_grid():
    grid = parameter_grid(a_values=(1, 2), c_minus_a=(0, 3))
    assert grid == [(1, 1), (1, 4), (2, 2), (2, 5)]


def test_run_sweep_micro_scale():
    cells = run_sweep(
        "gossip-learning",
        "randomized",
        scale=MICRO,
        a_values=(1, 5),
        c_minus_a=(0, 5),
    )
    assert len(cells) == 4
    for cell in cells:
        assert cell.strategy == "randomized"
        assert cell.final_metric > 0
        assert cell.message_rate <= 1.05


def test_run_sweep_simple_collapses_a_dimension():
    cells = run_sweep(
        "push-gossip",
        "simple",
        scale=MICRO,
        a_values=(1, 5),
        c_minus_a=(0, 5),
    )
    # The simple strategy has no A: only the first A value is used.
    assert len(cells) == 2
    assert {cell.capacity for cell in cells} == {1, 6}


def test_format_sweep_table():
    cells = [
        SweepCell("randomized", 1, 1, 0.5, 1.0),
        SweepCell("randomized", 1, 6, 0.8, 1.0),
        SweepCell("randomized", 5, 5, 0.3, 1.0),
    ]
    table = format_sweep_table(cells, higher_is_better=True)
    assert "A \\ C" in table
    assert "*" in table
    assert "best" in table
    assert "0.8" in table


def test_format_sweep_table_lower_is_better():
    cells = [
        SweepCell("generalized", 1, 1, 30.0, 1.0),
        SweepCell("generalized", 1, 6, 10.0, 1.0),
    ]
    table = format_sweep_table(cells, higher_is_better=False)
    assert "C=6" in table.replace(" ", "").replace("(A=1,", "(A=1,") or "10" in table


def test_format_empty_sweep():
    assert "empty" in format_sweep_table([], higher_is_better=True)


def test_sweep_cell_label():
    cell = SweepCell("randomized", 5, 10, 0.5, 1.0)
    assert cell.label == "randomized(A=5, C=10)"
