"""Unit tests for the strategy formulas — checked against the paper's
equations (1)-(5) value by value."""

import pytest

from repro.core.strategies import (
    GeneralizedTokenAccount,
    ProactiveStrategy,
    PureReactiveStrategy,
    RandomizedTokenAccount,
    SimpleTokenAccount,
    make_strategy,
    validate_strategy,
)


# ----------------------------------------------------------------------
# Purely proactive (§3.1)
# ----------------------------------------------------------------------
def test_proactive_baseline():
    strategy = ProactiveStrategy()
    for balance in range(10):
        assert strategy.proactive(balance) == 1.0
        assert strategy.reactive(balance, True) == 0.0
        assert strategy.reactive(balance, False) == 0.0
    assert strategy.token_capacity == 0


# ----------------------------------------------------------------------
# Simple token account — equations (1) and (2)
# ----------------------------------------------------------------------
def test_simple_proactive_threshold():
    strategy = SimpleTokenAccount(capacity=5)
    assert strategy.proactive(4) == 0.0
    assert strategy.proactive(5) == 1.0
    assert strategy.proactive(6) == 1.0


def test_simple_reactive_one_if_any_token():
    strategy = SimpleTokenAccount(capacity=5)
    assert strategy.reactive(0, True) == 0.0
    assert strategy.reactive(1, True) == 1.0
    assert strategy.reactive(5, True) == 1.0
    # Usefulness does not matter for the simple strategy (eq. 2).
    assert strategy.reactive(3, False) == 1.0


def test_simple_with_zero_capacity_is_proactive():
    """C = 0 is the paper's proactive baseline (§3.3.1)."""
    strategy = SimpleTokenAccount(capacity=0)
    assert strategy.proactive(0) == 1.0
    # The account can never hold tokens, so reactive(0, .) = 0 applies.
    assert strategy.reactive(0, True) == 0.0


def test_simple_negative_capacity_rejected():
    with pytest.raises(ValueError):
        SimpleTokenAccount(capacity=-1)


# ----------------------------------------------------------------------
# Generalized token account — equation (3)
# ----------------------------------------------------------------------
def test_generalized_useful_formula():
    strategy = GeneralizedTokenAccount(spend_rate=5, capacity=20)
    # (A - 1 + a) // A with A = 5
    assert strategy.reactive(0, True) == 0  # (4+0)//5
    assert strategy.reactive(1, True) == 1  # (4+1)//5
    assert strategy.reactive(5, True) == 1
    assert strategy.reactive(6, True) == 2  # (4+6)//5
    assert strategy.reactive(11, True) == 3
    assert strategy.reactive(20, True) == 4


def test_generalized_useless_halves_budget():
    strategy = GeneralizedTokenAccount(spend_rate=5, capacity=20)
    # (A - 1 + a) // (2A) with A = 5
    assert strategy.reactive(5, False) == 0  # tokens scarce: don't waste
    assert strategy.reactive(6, False) == 1
    assert strategy.reactive(16, False) == 2
    assert strategy.reactive(20, False) == 2


def test_generalized_a1_spends_everything_useful():
    """With A = 1 a useful message triggers spending the full account."""
    strategy = GeneralizedTokenAccount(spend_rate=1, capacity=10)
    for balance in range(11):
        assert strategy.reactive(balance, True) == balance


def test_generalized_a_equals_c_matches_simple():
    """'The maximal meaningful value for A is A = C in which case the
    reactive function will be equivalent to equation (2).'"""
    generalized = GeneralizedTokenAccount(spend_rate=10, capacity=10)
    simple = SimpleTokenAccount(capacity=10)
    for balance in range(11):
        assert generalized.reactive(balance, True) == simple.reactive(balance, True)


def test_generalized_never_overspends():
    for a_param in (1, 2, 5, 10):
        strategy = GeneralizedTokenAccount(spend_rate=a_param, capacity=40)
        for balance in range(41):
            assert strategy.reactive(balance, True) <= balance
            assert strategy.reactive(balance, False) <= balance


def test_generalized_proactive_same_as_simple():
    strategy = GeneralizedTokenAccount(spend_rate=5, capacity=20)
    assert strategy.proactive(19) == 0.0
    assert strategy.proactive(20) == 1.0


def test_generalized_parameter_validation():
    with pytest.raises(ValueError):
        GeneralizedTokenAccount(spend_rate=0, capacity=10)
    with pytest.raises(ValueError):
        GeneralizedTokenAccount(spend_rate=10, capacity=5)  # C < A


# ----------------------------------------------------------------------
# Randomized token account — equations (4) and (5)
# ----------------------------------------------------------------------
def test_randomized_proactive_piecewise():
    strategy = RandomizedTokenAccount(spend_rate=5, capacity=20)
    assert strategy.proactive(0) == 0.0
    assert strategy.proactive(3) == 0.0  # a < A - 1 = 4
    assert strategy.proactive(4) == 0.0  # (4 - 5 + 1) / 16 = 0
    assert strategy.proactive(12) == pytest.approx((12 - 4) / 16)
    assert strategy.proactive(20) == 1.0
    assert strategy.proactive(25) == 1.0


def test_randomized_proactive_linear_segment_endpoints():
    strategy = RandomizedTokenAccount(spend_rate=10, capacity=20)
    assert strategy.proactive(9) == 0.0  # a = A - 1
    assert strategy.proactive(20) == 1.0  # a = C
    # Midpoint of [9, 20]:
    assert strategy.proactive(15) == pytest.approx(6 / 11)


def test_randomized_reactive_fractional():
    strategy = RandomizedTokenAccount(spend_rate=10, capacity=20)
    assert strategy.reactive(5, True) == pytest.approx(0.5)
    assert strategy.reactive(10, True) == pytest.approx(1.0)
    assert strategy.reactive(20, True) == pytest.approx(2.0)


def test_randomized_useless_messages_cost_nothing():
    strategy = RandomizedTokenAccount(spend_rate=10, capacity=20)
    for balance in range(21):
        assert strategy.reactive(balance, False) == 0.0


def test_randomized_a_equals_c():
    strategy = RandomizedTokenAccount(spend_rate=10, capacity=10)
    assert strategy.proactive(9) == 0.0
    assert strategy.proactive(10) == 1.0


def test_randomized_parameter_validation():
    with pytest.raises(ValueError):
        RandomizedTokenAccount(spend_rate=0, capacity=5)
    with pytest.raises(ValueError):
        RandomizedTokenAccount(spend_rate=10, capacity=9)


# ----------------------------------------------------------------------
# Purely reactive reference (§3.1)
# ----------------------------------------------------------------------
def test_pure_reactive():
    strategy = PureReactiveStrategy(fanout=2, useful_only=True)
    assert strategy.proactive(100) == 0.0
    assert strategy.reactive(0, True) == 2.0
    assert strategy.reactive(0, False) == 0.0
    assert strategy.token_capacity is None
    assert strategy.requires_overdraft


def test_pure_reactive_unconditional_variant():
    strategy = PureReactiveStrategy(fanout=3, useful_only=False)
    assert strategy.reactive(0, False) == 3.0


def test_pure_reactive_validation():
    with pytest.raises(ValueError):
        PureReactiveStrategy(fanout=0)


# ----------------------------------------------------------------------
# Registry and contract validation
# ----------------------------------------------------------------------
def test_make_strategy_round_trips():
    assert make_strategy("proactive").name == "proactive"
    assert make_strategy("simple", capacity=5).describe() == "simple(C=5)"
    assert (
        make_strategy("generalized", spend_rate=2, capacity=8).describe()
        == "generalized(A=2, C=8)"
    )
    assert (
        make_strategy("randomized", spend_rate=3, capacity=9).describe()
        == "randomized(A=3, C=9)"
    )
    assert make_strategy("reactive", fanout=2).fanout == 2


def test_make_strategy_missing_parameters():
    with pytest.raises(ValueError):
        make_strategy("simple")
    with pytest.raises(ValueError):
        make_strategy("generalized", capacity=5)
    with pytest.raises(ValueError):
        make_strategy("randomized", spend_rate=5)


def test_make_strategy_unknown_name():
    with pytest.raises(ValueError, match="unknown strategy"):
        make_strategy("leaky-bucket")


def test_all_implementations_satisfy_the_contract():
    for strategy in (
        ProactiveStrategy(),
        SimpleTokenAccount(0),
        SimpleTokenAccount(10),
        GeneralizedTokenAccount(1, 10),
        GeneralizedTokenAccount(5, 10),
        GeneralizedTokenAccount(10, 10),
        RandomizedTokenAccount(1, 2),
        RandomizedTokenAccount(10, 20),
        RandomizedTokenAccount(20, 20),
        PureReactiveStrategy(),
    ):
        validate_strategy(strategy)
