"""The backend equivalence gate (and its negative path).

Before the vectorized backend is trusted at N >= 1e5, it must match the
exact event engine's round-level aggregates — sends per slot, quality
curves, the §3.4 burst audit — on small N across the scenario matrix:
every registered strategy x overlay x loss x jitter x churn. The
comparison is statistical (bulk-synchronous vs event-driven timing)
with the tolerances of :mod:`repro.backends.equivalence`.

The negative path proves the gate has teeth: a vectorized kernel with a
deliberate off-by-one token grant (banking two tokens per skipped round
instead of one) must *fail* the gate.
"""

import pytest

from repro.backends.equivalence import compare_backends
from repro.backends.vectorized import VectorizedBackend
from repro.experiments.config import ExperimentConfig
from repro.registry import strategies as strategy_registry

#: gate scale: small enough for the event engine to be instant, large
#: enough for the aggregates to be out of the shot-noise regime
GATE_N = 64
GATE_PERIODS = 50


def gate_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        app="push-gossip",
        strategy="randomized",
        spend_rate=10,
        capacity=20,
        n=GATE_N,
        periods=GATE_PERIODS,
        seed=1,
        audit_sends=True,
        # Slot-aligned samples: both engines measure the same grid.
        sample_interval=172.8,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _strategy_params(name):
    declared = strategy_registry.get(name).param_names
    params = {}
    if "spend_rate" in declared:
        params["spend_rate"] = 10
    if "capacity" in declared:
        params["capacity"] = 20 if "spend_rate" in declared else 10
    return params


@pytest.mark.parametrize("strategy", strategy_registry.names())
@pytest.mark.parametrize("seed", [1, 2])
def test_gate_every_registered_strategy(strategy, seed):
    """Acceptance: the gate passes for all registered strategies, N <= 64."""
    overrides = dict(spend_rate=None, capacity=None)
    overrides.update(_strategy_params(strategy))
    report = compare_backends(gate_config(strategy=strategy, seed=seed, **overrides))
    assert report.ok, report.summary()


@pytest.mark.parametrize(
    "axis",
    [
        dict(loss_rate=0.2),
        dict(transfer_jitter=0.3),
        dict(overlay="watts-strogatz"),
        dict(scenario="trace"),
        dict(scenario="flash-crowd"),
        dict(period_spread=0.2),
        dict(scenario="trace", overlay="watts-strogatz", loss_rate=0.2),
        dict(scenario="flash-crowd", transfer_jitter=0.3, period_spread=0.2),
    ],
    ids=lambda axis: "+".join(f"{k}={v}" for k, v in axis.items()),
)
@pytest.mark.parametrize("seed", [1, 2])
def test_gate_across_scenario_axes(axis, seed):
    """Overlay x loss x jitter x churn x heterogeneity, both engines."""
    report = compare_backends(gate_config(seed=seed, **axis))
    assert report.ok, report.summary()


def test_gate_burst_audit_holds_on_both_engines():
    """The §3.4 audit is part of the gate and must pass exactly."""
    report = compare_backends(gate_config(strategy="simple", capacity=10))
    assert report.ok, report.summary()
    assert report.event.ratelimit_violations == []
    assert report.vectorized.ratelimit_violations == []


# ----------------------------------------------------------------------
# Negative path: the gate must catch a perturbed kernel
# ----------------------------------------------------------------------
class OffByOneGrantBackend(VectorizedBackend):
    """A deliberately broken kernel: banks 2 tokens per skipped round."""

    grant_amount = 2


@pytest.mark.parametrize(
    "strategy,params",
    [
        ("simple", dict(capacity=10)),
        ("randomized", dict(spend_rate=10, capacity=20)),
    ],
)
def test_gate_catches_off_by_one_token_grant(strategy, params):
    """An off-by-one grant inflates the send rate past the tolerance."""
    overrides = dict(spend_rate=None, capacity=None)
    overrides.update(params)
    config = gate_config(strategy=strategy, **overrides)
    report = compare_backends(config, backend=OffByOneGrantBackend())
    assert not report.ok, (
        "the equivalence gate accepted a kernel granting two tokens per "
        f"skipped round: {report.summary()}"
    )
    assert any("send rate" in failure for failure in report.failures)


def test_gate_catches_quality_divergence():
    """A kernel whose metric drifts must fail the quality check."""

    class StaleMetricBackend(VectorizedBackend):
        def run(self, config):
            result = super().run(config)
            shifted = type(result.metric)(
                (time, value * 3.0 + 10.0)
                for time, value in zip(result.metric.times, result.metric.values)
            )
            result.metric = shifted
            return result

    report = compare_backends(gate_config(), backend=StaleMetricBackend())
    assert not report.ok
    assert any("quality" in failure for failure in report.failures)
