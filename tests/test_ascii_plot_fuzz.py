"""Fuzz tests: the ASCII chart renderer never crashes on valid series."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.ascii_plot import ascii_chart
from repro.metrics.series import TimeSeries

# Monotone time grids with arbitrary finite values.
series_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
).map(lambda points: TimeSeries(sorted(points, key=lambda p: p[0])))


@settings(max_examples=60)
@given(st.dictionaries(st.sampled_from(["a", "b", "c"]), series_strategy, max_size=3))
def test_chart_renders_any_series(series_by_label):
    chart = ascii_chart(series_by_label, width=30, height=8)
    assert isinstance(chart, str)
    if series_by_label:
        lines = chart.splitlines()
        plot_rows = [line for line in lines if "|" in line]
        assert len(plot_rows) == 8
        for row in plot_rows:
            assert len(row.split("|", 1)[1]) <= 30


@settings(max_examples=40)
@given(series_strategy)
def test_log_chart_with_positive_values(series):
    positive = TimeSeries((t, abs(v) + 1e-6) for t, v in series)
    chart = ascii_chart({"s": positive}, width=24, height=6, log_y=True)
    assert "s" in chart


@settings(max_examples=40)
@given(st.integers(8, 60), st.integers(4, 30))
def test_chart_dimensions_respected(width, height):
    series = TimeSeries([(0.0, 0.0), (10.0, 5.0), (20.0, 2.0)])
    chart = ascii_chart({"x": series}, width=width, height=height)
    plot_rows = [line for line in chart.splitlines() if "|" in line]
    assert len(plot_rows) == height
