"""TokenAccountLimiter property tests: the §3.4 bound, live.

The serving layer's core claim is that every registered strategy, run
as wall-clock admission control, keeps the paper's burst bound: no key
is admitted more than ``ceil(t/Δ) + C`` times in any window of length
``t``. These tests drive the limiter with a synthetic clock and feed
every admission timestamp into the *same* ``RateLimitAuditor`` the
simulation uses, so the serving layer is held to the exact §3.4 check
the paper's experiments pass.
"""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ratelimit import RateLimitAuditor, burst_bound
from repro.registry import strategies as strategy_registry
from repro.serve import ManualClock, TokenAccountLimiter

#: one representative parameterization per registered strategy
STRATEGY_PARAMS = {
    "proactive": {},
    "simple": {"capacity": 5},
    "generalized": {"spend_rate": 3, "capacity": 6},
    "randomized": {"spend_rate": 3, "capacity": 6},
    "graded-generalized": {"spend_rate": 3, "capacity": 6},
    "graded-randomized": {"spend_rate": 3, "capacity": 6},
    "reactive": {},  # unbounded reference: no burst bound to audit
}

#: strategies whose admission sequence is deterministic under saturation
#: (graded-generalized reduces to generalized at grade 1.0)
DETERMINISTIC = ("proactive", "simple", "generalized", "graded-generalized")

PERIOD = 1.0
#: steps per period; 1/8 is exact in binary so tick edges are noise-free
STEP = PERIOD / 8


def all_registered_strategies():
    names = strategy_registry.names()
    assert set(names) == set(STRATEGY_PARAMS), (
        "a strategy was (un)registered; update STRATEGY_PARAMS so the "
        "serving layer's burst-bound property keeps covering the registry"
    )
    return names


def make_limiter(name: str, clock: ManualClock, **overrides) -> TokenAccountLimiter:
    kwargs = dict(STRATEGY_PARAMS[name])
    kwargs.update(overrides)
    return TokenAccountLimiter(
        name, period=PERIOD, clock=clock, seed=7, shards=1, max_keys=64, **kwargs
    )


def saturate(limiter: TokenAccountLimiter, clock: ManualClock, steps: int):
    """Hammer one key every STEP; return (admission_times, auditor)."""
    auditor = RateLimitAuditor(network=None)
    admissions = []
    for _ in range(steps):
        clock.advance(STEP)
        if limiter.try_acquire("k").admitted:
            auditor.record(0, clock.now)
            admissions.append(clock.now)
    return admissions, auditor


@pytest.mark.parametrize("name", all_registered_strategies())
def test_saturation_never_exceeds_burst_bound(name):
    clock = ManualClock()
    limiter = make_limiter(name, clock)
    capacity = limiter.strategy.token_capacity
    admissions, auditor = saturate(limiter, clock, steps=400)
    if capacity is None:
        # The purely reactive reference is the unbounded comparison
        # point in the paper, and the unbounded limiter here.
        assert len(admissions) == 400
        return
    violations = auditor.check(period=PERIOD, capacity=capacity)
    assert not violations, f"{name}: {violations[:3]}"


@pytest.mark.parametrize("name", DETERMINISTIC)
def test_saturation_achieves_exactly_the_bound(name):
    """Full utilization: the admitted count *equals* the §3.4 allowance.

    Deterministic strategies admit every banked token (and the pure
    proactive baseline admits exactly once per period through the
    token-less slot), so under saturating demand the limiter is not
    just safe but tight — the paper's "proactive traffic shaping"
    claim, measured on the serving path.
    """
    clock = ManualClock()
    limiter = make_limiter(name, clock)
    capacity = limiter.strategy.token_capacity
    steps = 400
    admissions, _ = saturate(limiter, clock, steps)
    first, last = admissions[0], admissions[-1]
    whole_periods = int((last - first) / PERIOD + 1e-9)
    if capacity == 0:
        # one slot admission at first contact, then one per period
        expected = 1 + whole_periods
    else:
        # the initial full account drains instantly, then one per tick
        expected = capacity + int((clock.now - first) / PERIOD + 1e-9)
    assert len(admissions) == expected


def test_randomized_strategy_is_safe_and_near_tight():
    clock = ManualClock()
    limiter = make_limiter("randomized", clock)
    capacity = limiter.strategy.token_capacity
    steps = 1600
    admissions, auditor = saturate(limiter, clock, steps)
    assert not auditor.check(period=PERIOD, capacity=capacity)
    elapsed = steps * STEP
    ceiling = burst_bound(elapsed, PERIOD, capacity)
    assert len(admissions) <= ceiling
    # Every banked token has admission probability >= 1/A per attempt,
    # so with 8 attempts per period the token stream is nearly fully
    # spent: demand well above 80% of the ideal rate.
    assert len(admissions) >= 0.8 * (elapsed / PERIOD)


@pytest.mark.parametrize("name", ("simple", "proactive"))
def test_idle_gap_then_burst_stays_bounded(name):
    """Idle periods bank at most C tokens; the resume burst respects §3.4."""
    clock = ManualClock()
    limiter = make_limiter(name, clock)
    capacity = limiter.strategy.token_capacity
    auditor = RateLimitAuditor(network=None)

    def hammer(steps):
        for _ in range(steps):
            clock.advance(STEP)
            if limiter.try_acquire("k").admitted:
                auditor.record(0, clock.now)

    hammer(40)
    clock.advance(25.3 * PERIOD)  # long idle stretch, off the tick grid
    hammer(120)
    assert not auditor.check(period=PERIOD, capacity=capacity)
    # the post-idle burst is exactly the banked allowance, not 25 periods
    assert limiter.balance("k") is not None


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(("proactive", "simple", "generalized", "randomized")),
    schedule=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2.5, allow_nan=False),
            st.booleans(),
        ),
        min_size=10,
        max_size=120,
    ),
)
def test_arbitrary_schedules_never_violate_the_bound(name, schedule):
    """Hypothesis: any arrival/idle interleaving keeps every window legal."""
    clock = ManualClock()
    limiter = make_limiter(name, clock)
    capacity = limiter.strategy.token_capacity
    auditor = RateLimitAuditor(network=None)
    for advance, useful in schedule:
        clock.advance(advance)
        if limiter.try_acquire("k", useful=useful).admitted:
            auditor.record(0, clock.now)
    violations = auditor.check(period=PERIOD, capacity=capacity)
    assert not violations, violations[:3]


# ----------------------------------------------------------------------
# Semantics beyond the bound
# ----------------------------------------------------------------------
def test_cold_start_matches_the_paper_when_asked():
    clock = ManualClock()
    limiter = make_limiter("simple", clock, initial_tokens=0)
    assert not limiter.try_acquire("k").admitted  # empty account, C >= 1
    clock.advance(PERIOD)
    assert limiter.try_acquire("k").admitted


def test_keys_are_independent():
    clock = ManualClock()
    limiter = make_limiter("simple", clock)
    for _ in range(5):
        assert limiter.try_acquire("a").admitted
    assert not limiter.try_acquire("a").admitted
    assert limiter.try_acquire("b").admitted  # fresh key, fresh allowance


def test_useless_requests_spend_slower_on_generalized():
    clock = ManualClock()
    limiter = make_limiter("generalized", clock)  # A=3, C=6
    # REACTIVE(a, u=False) = floor((2 + a) / 6): 0 until a >= 4.
    admitted = [limiter.try_acquire("k", useful=False).admitted for _ in range(6)]
    assert admitted == [True, True, True, False, False, False]
    assert all(limiter.try_acquire("k", useful=True).admitted for _ in range(3))


def test_rejection_carries_a_retry_hint():
    clock = ManualClock()
    limiter = make_limiter("simple", clock)
    for _ in range(5):
        limiter.try_acquire("k")
    decision = limiter.try_acquire("k")
    assert not decision.admitted and decision.reason == "exhausted"
    assert decision.retry_after is not None
    assert 0.0 < decision.retry_after <= PERIOD
    clock.advance(decision.retry_after + 1e-6)
    assert limiter.try_acquire("k").admitted


def test_retry_hint_tracks_the_drifted_proactive_slot():
    """Capacity-0 hints must follow the slot, not the (useless) tick grid.

    The proactive slot drifts off the tick grid as soon as a request
    arrives mid-period; a client honoring ``retry_after`` must then be
    admitted, even though the next *tick* grants nothing at C = 0.
    """
    clock = ManualClock()
    limiter = make_limiter("proactive", clock)
    assert limiter.try_acquire("k").admitted  # slot at t = 0
    clock.advance(1.2)
    assert limiter.try_acquire("k").admitted  # slot drifts to t = 1.2
    clock.advance(0.3)
    decision = limiter.try_acquire("k")  # t = 1.5: slot frees at 2.2
    assert not decision.admitted
    assert decision.retry_after == pytest.approx(0.7)
    clock.advance(decision.retry_after)
    assert limiter.try_acquire("k").admitted


def test_decision_is_truthy_on_admit():
    clock = ManualClock()
    limiter = make_limiter("simple", clock)
    assert bool(limiter.try_acquire("k")) is True
    assert limiter.try_acquire("k").reason in ("reactive", "proactive")


def test_lru_eviction_recycles_idle_keys():
    clock = ManualClock()
    limiter = TokenAccountLimiter(
        "simple", capacity=2, period=PERIOD, clock=clock, shards=1, max_keys=8
    )
    for index in range(20):
        assert limiter.try_acquire(f"key-{index}").admitted
    assert len(limiter) <= 8
    assert limiter.stats()["evictions"] >= 12
    # key-0 was evicted: returning, it is indistinguishable from new
    assert limiter.balance("key-0") is None
    assert limiter.try_acquire("key-0").admitted


def test_thread_safety_accounting():
    limiter = TokenAccountLimiter(
        "generalized", spend_rate=2, capacity=10, period=0.001, shards=4, seed=3
    )
    per_thread = 2000
    threads = [
        threading.Thread(
            target=lambda worker=worker: [
                limiter.try_acquire(f"key-{(worker * 7 + i) % 13}")
                for i in range(per_thread)
            ]
        )
        for worker in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert limiter.admitted + limiter.rejected == 4 * per_thread
    assert limiter.admitted > 0 and limiter.rejected > 0


def test_invalid_construction():
    with pytest.raises(ValueError):
        TokenAccountLimiter("simple", capacity=5, period=0.0)
    with pytest.raises(ValueError):
        TokenAccountLimiter("simple", capacity=5, initial_tokens=9)
    with pytest.raises(ValueError):
        TokenAccountLimiter("no-such-strategy")


def test_burst_bound_helper_consistency():
    # the auditor and the limiter share one bound definition
    assert burst_bound(10.0, PERIOD, 5) == math.ceil(10.0) + 5


# ----------------------------------------------------------------------
# try_acquire_many: the batched decision path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", all_registered_strategies())
def test_batch_matches_singleton_batches(name):
    """One n-key batch == n one-key batches: the RNG stream contract.

    ``decide_many`` draws one ``(n, 2)`` uniform block row-major, so
    splitting the same workload into single-key calls consumes the
    identical stream — decisions must agree bit-for-bit, randomized
    strategies included.
    """
    keys = [f"key-{i}" for i in range(40)]
    clock = ManualClock()
    batched = make_limiter(name, clock)
    one_by_one = make_limiter(name, ManualClock())
    for round_index in range(4):
        clock.advance(0.4)
        together = batched.try_acquire_many(keys, now=clock.now)
        singles = [
            one_by_one.try_acquire_many([key], now=clock.now)[0] for key in keys
        ]
        assert [(d.admitted, d.reason, d.balance) for d in together] == [
            (d.admitted, d.reason, d.balance) for d in singles
        ], f"round {round_index}"


@pytest.mark.parametrize("name", DETERMINISTIC)
def test_batch_matches_scalar_for_deterministic_strategies(name):
    clock_a, clock_b = ManualClock(), ManualClock()
    scalar = make_limiter(name, clock_a)
    batched = make_limiter(name, clock_b)
    keys = [f"key-{i}" for i in range(10)]
    for _ in range(30):
        clock_a.advance(STEP)
        clock_b.advance(STEP)
        expected = [scalar.try_acquire(key, now=clock_a.now) for key in keys]
        got = batched.try_acquire_many(keys, now=clock_b.now)
        assert [(d.admitted, d.reason, d.balance, d.retry_after) for d in got] == [
            (d.admitted, d.reason, d.balance, d.retry_after) for d in expected
        ]
    assert scalar.admitted == batched.admitted
    assert scalar.rejected == batched.rejected


def test_batch_duplicate_keys_settle_in_input_order():
    """Repeats of one key inside a batch see the previous repeat's spend."""
    clock = ManualClock()
    limiter = make_limiter("simple", clock)  # C = 5, starts full
    decisions = limiter.try_acquire_many(["k"] * 8, now=clock.now)
    assert [d.admitted for d in decisions] == [True] * 5 + [False] * 3
    assert [d.balance for d in decisions[:5]] == [4, 3, 2, 1, 0]
    # interleaved duplicates keep per-position order too
    clock.advance(100 * PERIOD)
    mixed = limiter.try_acquire_many(["a", "k", "a", "k", "a"], now=clock.now)
    assert [d.key for d in mixed] == ["a", "k", "a", "k", "a"]
    assert [d.balance for d in mixed] == [4, 4, 3, 3, 2]


def test_batch_counters_and_multi_shard_routing():
    limiter = TokenAccountLimiter(
        "simple", capacity=2, period=PERIOD, clock=ManualClock(), shards=4,
        max_keys=256, seed=3,
    )
    keys = [f"key-{i}" for i in range(50)] * 2  # each key twice
    decisions = limiter.try_acquire_many(keys, now=0.0)
    assert len(decisions) == 100
    assert limiter.admitted + limiter.rejected == 100
    assert limiter.admitted == sum(d.admitted for d in decisions) == 100
    decisions = limiter.try_acquire_many(keys, now=0.0)  # accounts now empty
    assert limiter.rejected == sum(not d.admitted for d in decisions) == 100


def test_batch_empty_and_per_key_usefulness():
    clock = ManualClock()
    limiter = make_limiter("generalized", clock)  # A=3, C=6
    assert limiter.try_acquire_many([]) == []
    # REACTIVE(a, False) = floor((2 + a) / 6) = 0 below balance 4: the
    # useless request must be rejected while useful ones are admitted.
    limiter.try_acquire_many(["k", "k"], now=clock.now)  # drain 6 -> 4
    decisions = limiter.try_acquire_many(
        ["k", "k"], useful=[True, False], now=clock.now
    )
    assert decisions[0].admitted
    assert not decisions[1].admitted


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(("proactive", "simple", "generalized", "randomized")),
    rounds=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=2.5, allow_nan=False),
            st.lists(st.sampled_from(("a", "b", "c")), min_size=1, max_size=9),
        ),
        min_size=5,
        max_size=40,
    ),
)
def test_batched_schedules_never_violate_the_bound(name, rounds):
    """Hypothesis: §3.4 holds per key under arbitrary *batched* demand,
    duplicate keys within a batch included."""
    clock = ManualClock()
    limiter = make_limiter(name, clock)
    capacity = limiter.strategy.token_capacity
    auditors = {key: RateLimitAuditor(network=None) for key in "abc"}
    for advance, keys in rounds:
        clock.advance(advance)
        for decision in limiter.try_acquire_many(keys, now=clock.now):
            if decision.admitted:
                auditors[decision.key].record(0, clock.now)
    if capacity is None:
        return
    for key, auditor in auditors.items():
        violations = auditor.check(period=PERIOD, capacity=capacity)
        assert not violations, (key, violations[:3])


# ----------------------------------------------------------------------
# stale-now clamp (regression: backwards timestamps must be harmless)
# ----------------------------------------------------------------------
def test_stale_now_cannot_corrupt_retry_hints():
    """A `now` earlier than the key's last decision clamps forward.

    Before the clamp, a stale timestamp made ``retry_after`` balloon
    (the anchor is already past the stale now), telling well-behaved
    clients to back off for many periods they did not owe.
    """
    clock = ManualClock()
    limiter = make_limiter("simple", clock)  # C = 5
    for _ in range(5):
        assert limiter.try_acquire("k", now=10.0).admitted
    stale = limiter.try_acquire("k", now=3.0)  # 7 seconds in the past
    assert not stale.admitted
    assert stale.retry_after is not None and stale.retry_after <= PERIOD


def test_stale_now_cannot_mint_tokens_or_rearm_the_slot():
    clock = ManualClock()
    limiter = make_limiter("proactive", clock)  # capacity 0: slot-paced
    assert limiter.try_acquire("k", now=5.0).admitted  # slot taken at 5.0
    # time jumps backwards: the slot must NOT re-arm, and ticks must
    # not re-accrue from the stale anchor
    for bogus in (4.0, 1.0, 4.9):
        assert not limiter.try_acquire("k", now=bogus).admitted
    assert limiter.try_acquire("k", now=5.0 + PERIOD).admitted


def test_stale_now_clamps_in_batches_too():
    clock = ManualClock()
    limiter = make_limiter("simple", clock)
    limiter.try_acquire_many(["k"] * 5, now=10.0)  # drain the account
    (stale,) = limiter.try_acquire_many(["k"], now=2.0)
    assert not stale.admitted
    assert stale.retry_after is not None and stale.retry_after <= PERIOD
    # a batch at a *fresh* now still accrues normally afterwards
    (fresh,) = limiter.try_acquire_many(["k"], now=10.0 + PERIOD)
    assert fresh.admitted


# ----------------------------------------------------------------------
# try_acquire_run: the cluster's closed-form bulk seam
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["simple", "generalized"])
@pytest.mark.parametrize("useful", [True, False])
def test_run_matches_sequential_acquires(name, useful):
    """For deterministic strategies the closed form must be bit-for-bit
    the same as n sequential ``try_acquire`` calls: same admit count,
    same observed balances, same counters, same retry hint."""
    clock_a, clock_b = ManualClock(), ManualClock()
    run_limiter = make_limiter(name, clock_a)
    ref_limiter = make_limiter(name, clock_b)
    for step, count in enumerate([1, 3, 7, 2, 11, 4]):
        now = float(step) * 2.5
        reference = [
            ref_limiter.try_acquire("k", useful=useful, now=now)
            for _ in range(count)
        ]
        result = run_limiter.try_acquire_run("k", count, useful=useful, now=now)
        assert result is not None, "closed form must apply to " + name
        admits, rejects, balance, reason, retry = result
        assert admits == sum(d.admitted for d in reference)
        assert rejects == count - admits
        # admitted requests observed balance-1 .. balance-admits, and
        # every reject the leftover balance — same as the sequence
        expected_balances = [balance - i - 1 for i in range(admits)] + [
            balance - admits
        ] * rejects
        assert [d.balance for d in reference] == expected_balances
        if admits:
            assert {d.reason for d in reference if d.admitted} == {reason}
        if rejects:
            last = reference[-1]
            assert last.retry_after is not None
            assert retry == pytest.approx(last.retry_after)
    assert run_limiter.admitted == ref_limiter.admitted
    assert run_limiter.rejected == ref_limiter.rejected


def test_run_declines_when_the_closed_form_cannot_apply():
    clock = ManualClock()
    random_limiter = make_limiter("randomized", clock)
    assert random_limiter.try_acquire_run("k", 4) is None
    overdraft_limiter = make_limiter("reactive", clock)
    assert overdraft_limiter.try_acquire_run("k", 4) is None
    slot_limiter = make_limiter("proactive", clock)  # capacity 0
    assert slot_limiter.try_acquire_run("k", 4) is None
    deterministic = make_limiter("generalized", clock)
    # graded usefulness is per-request state the run cannot carry
    assert deterministic.try_acquire_run("k", 4, useful=0.5) is None
    with pytest.raises(ValueError):
        deterministic.try_acquire_run("k", 0)


def test_run_decline_leaves_state_reusable_by_the_fallback():
    """A ``None`` return must not have mutated anything: the fallback
    ``try_acquire_many`` at the same ``now`` then behaves exactly as if
    the run was never attempted."""
    clock_a, clock_b = ManualClock(), ManualClock()
    probed = make_limiter("randomized", clock_a)
    control = make_limiter("randomized", clock_b)
    assert probed.try_acquire_run("k", 3, now=5.0) is None
    after_probe = probed.try_acquire_many(["k"] * 3, now=5.0)
    clean = control.try_acquire_many(["k"] * 3, now=5.0)
    assert [(d.admitted, d.balance) for d in after_probe] == [
        (d.admitted, d.balance) for d in clean
    ]
    assert probed.admitted == control.admitted
    assert probed.rejected == control.rejected


def test_run_accrues_ticks_like_the_scalar_path():
    clock_a, clock_b = ManualClock(), ManualClock()
    run_limiter = make_limiter("simple", clock_a)  # C = 5
    ref_limiter = make_limiter("simple", clock_b)
    # drain, then let 3 periods accrue before the next run
    assert run_limiter.try_acquire_run("k", 8, now=1.0)[0] == 5
    [ref_limiter.try_acquire("k", now=1.0) for _ in range(8)]
    later = 1.0 + 3 * PERIOD
    admits, rejects, balance, _, _ = run_limiter.try_acquire_run(
        "k", 8, now=later
    )
    reference = [ref_limiter.try_acquire("k", now=later) for _ in range(8)]
    assert admits == sum(d.admitted for d in reference) == 3
    assert balance == 3 and rejects == 5
