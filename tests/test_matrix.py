"""Unit tests for the chaotic-iteration weight matrix utilities."""

import math
import random

import numpy as np
import pytest

from repro.overlay.graph import Overlay
from repro.overlay.matrix import (
    angle_to,
    column_normalized_matrix,
    dominant_eigenvector,
    is_irreducible,
)
from repro.overlay.watts_strogatz import watts_strogatz_overlay


def ring(n):
    return Overlay([[(i + 1) % n] for i in range(n)])


def test_matrix_is_column_stochastic():
    overlay = watts_strogatz_overlay(40, 4, 0.1, random.Random(1))
    matrix = column_normalized_matrix(overlay)
    sums = np.asarray(matrix.sum(axis=0)).ravel()
    assert np.allclose(sums, 1.0)


def test_matrix_entries_match_out_degrees():
    overlay = Overlay([[1, 2], [2], [0]])
    matrix = column_normalized_matrix(overlay).todense()
    assert matrix[1, 0] == pytest.approx(0.5)  # 0 -> 1, outdeg(0) = 2
    assert matrix[2, 0] == pytest.approx(0.5)
    assert matrix[2, 1] == pytest.approx(1.0)
    assert matrix[0, 2] == pytest.approx(1.0)
    assert matrix[0, 0] == 0.0


def test_dangling_node_rejected():
    with pytest.raises(ValueError, match="no out-links"):
        column_normalized_matrix(Overlay([[1], []]))


def test_spectral_radius_is_one():
    overlay = watts_strogatz_overlay(30, 4, 0.2, random.Random(2))
    dense = np.asarray(column_normalized_matrix(overlay).todense())
    radius = max(abs(np.linalg.eigvals(dense)))
    assert radius == pytest.approx(1.0, abs=1e-9)


def test_dominant_eigenvector_matches_dense_solver():
    overlay = watts_strogatz_overlay(60, 4, 0.3, random.Random(3))
    matrix = column_normalized_matrix(overlay)
    vector = dominant_eigenvector(matrix)
    dense = np.asarray(matrix.todense())
    eigenvalues, eigenvectors = np.linalg.eig(dense)
    index = int(np.argmax(np.abs(eigenvalues)))
    reference = np.real(eigenvectors[:, index])
    assert angle_to(vector, reference) < 1e-6


def test_dominant_eigenvector_is_fixed_point():
    overlay = watts_strogatz_overlay(50, 4, 0.1, random.Random(4))
    matrix = column_normalized_matrix(overlay)
    vector = dominant_eigenvector(matrix)
    assert np.allclose(matrix @ vector, vector, atol=1e-8)
    assert np.linalg.norm(vector) == pytest.approx(1.0)


def test_regular_graph_gives_uniform_eigenvector():
    """A regular aperiodic graph is doubly stochastic: uniform eigenvector.

    (A *directed* ring would not do: it is periodic, so all its
    eigenvalues lie on the unit circle and no dominant one exists.)
    """
    overlay = watts_strogatz_overlay(11, 4, 0.0, random.Random(1))
    vector = dominant_eigenvector(column_normalized_matrix(overlay))
    assert np.allclose(vector, vector[0])


def test_tiny_matrix_path():
    overlay = Overlay([[1], [0]])
    vector = dominant_eigenvector(column_normalized_matrix(overlay))
    assert vector.shape == (2,)
    assert np.allclose(abs(vector), 1 / math.sqrt(2))


def test_irreducibility():
    assert is_irreducible(ring(5))
    assert not is_irreducible(Overlay([[1], [0], [0]]))  # node 2 unreachable


# ----------------------------------------------------------------------
# angle_to
# ----------------------------------------------------------------------
def test_angle_identical_vectors_is_zero():
    v = np.array([1.0, 2.0, 3.0])
    assert angle_to(v, v) == pytest.approx(0.0)


def test_angle_is_sign_insensitive():
    v = np.array([1.0, 2.0, 3.0])
    assert angle_to(v, -v) == pytest.approx(0.0)


def test_angle_orthogonal_vectors():
    assert angle_to(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(
        math.pi / 2
    )


def test_angle_scale_invariant():
    a = np.array([1.0, 1.0, 0.0])
    b = np.array([1.0, 0.0, 0.0])
    assert angle_to(a, b) == pytest.approx(angle_to(10 * a, 0.1 * b))
    assert angle_to(a, b) == pytest.approx(math.pi / 4)


def test_angle_zero_vector_is_right_angle():
    assert angle_to(np.zeros(3), np.ones(3)) == pytest.approx(math.pi / 2)
