"""Tests for experiment configuration."""

import pytest

from repro.experiments.config import PAPER, ExperimentConfig


def test_paper_constants_match_section_4_1():
    assert PAPER.period == 172.8
    assert PAPER.transfer_time == 1.728
    assert PAPER.period / PAPER.transfer_time == pytest.approx(100.0)
    assert PAPER.out_degree == 20
    assert PAPER.ws_degree == 4
    assert PAPER.ws_rewire == 0.01
    assert PAPER.inject_interval == pytest.approx(17.28)
    assert PAPER.period / PAPER.inject_interval == pytest.approx(10.0)
    assert PAPER.initial_tokens == 0
    assert PAPER.n_small == 5000
    assert PAPER.n_large == 500_000
    assert PAPER.periods == 1000
    # Two days of 1000 periods:
    assert PAPER.periods * PAPER.period == pytest.approx(172_800.0)


def test_default_config_uses_paper_values():
    config = ExperimentConfig(app="push-gossip", strategy="proactive")
    assert config.n == 5000
    assert config.horizon == pytest.approx(172_800.0)
    assert config.effective_sample_interval == pytest.approx(86.4)


def test_unknown_app_rejected():
    with pytest.raises(ValueError, match="unknown app"):
        ExperimentConfig(app="raft", strategy="proactive")


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        ExperimentConfig(app="push-gossip", strategy="proactive", scenario="mars")


def test_chaotic_iteration_under_churn_now_composes():
    # Previously hard-rejected; the registry refactor opened the
    # combination (the paper's figures still exclude it, see figure3).
    config = ExperimentConfig(
        app="chaotic-iteration", strategy="proactive", scenario="trace"
    )
    assert config.to_spec().churn.name == "stunner-trace"


def test_replication_under_churn_rejected():
    with pytest.raises(ValueError, match="churn"):
        ExperimentConfig(
            app="replication-repair", strategy="proactive", scenario="trace"
        )


def test_overlay_override_flows_into_spec():
    config = ExperimentConfig(
        app="push-gossip",
        strategy="proactive",
        overlay="watts-strogatz",
        ws_degree=6,
        ws_rewire=0.1,
    )
    overlay = config.to_spec().resolved_overlay()
    assert overlay.name == "watts-strogatz"
    assert overlay.kwargs == {"degree": 6, "rewire": 0.1}


def test_default_overlay_follows_the_app():
    kout = ExperimentConfig(app="push-gossip", strategy="proactive")
    ws = ExperimentConfig(app="chaotic-iteration", strategy="proactive")
    assert kout.to_spec().resolved_overlay().name == "kout"
    assert ws.to_spec().resolved_overlay().name == "watts-strogatz"


def test_invalid_strategy_parameters_fail_fast():
    with pytest.raises(ValueError):
        ExperimentConfig(app="push-gossip", strategy="generalized", spend_rate=5)
    with pytest.raises(ValueError):
        ExperimentConfig(
            app="push-gossip", strategy="randomized", spend_rate=10, capacity=5
        )


def test_tiny_network_rejected():
    with pytest.raises(ValueError):
        ExperimentConfig(app="push-gossip", strategy="proactive", n=1)
    with pytest.raises(ValueError):
        ExperimentConfig(app="push-gossip", strategy="proactive", periods=0)


def test_label_is_descriptive():
    config = ExperimentConfig(
        app="gossip-learning", strategy="randomized", spend_rate=10, capacity=20
    )
    assert config.label() == "gossip-learning/randomized(A=10, C=20)/failure-free"


def test_with_overrides():
    config = ExperimentConfig(app="push-gossip", strategy="proactive", seed=1)
    other = config.with_overrides(seed=99, n=100)
    assert other.seed == 99
    assert other.n == 100
    assert other.app == config.app
    assert config.seed == 1  # original frozen


def test_make_strategy_round_trip():
    config = ExperimentConfig(app="push-gossip", strategy="simple", capacity=7)
    strategy = config.make_strategy()
    assert strategy.describe() == "simple(C=7)"


def test_custom_sample_interval():
    config = ExperimentConfig(
        app="push-gossip", strategy="proactive", sample_interval=50.0
    )
    assert config.effective_sample_interval == 50.0
