"""Tests for the gossip learning application (§2.2, §3.2, §4.1.1)."""

import random

import numpy as np
import pytest

from repro.apps.gossip_learning import (
    GossipLearningApp,
    GossipLearningMetric,
    ModelToken,
)
from repro.apps.sgd import make_synthetic_regression
from repro.core.strategies import ProactiveStrategy, SimpleTokenAccount
from tests.conftest import MiniSystem, ring_overlay


def bound_app(**kwargs):
    """A GossipLearningApp bound to a one-node dummy system."""

    class DummyNode:
        node_id = 7

    app = GossipLearningApp(**kwargs)
    app.node = DummyNode()  # bypass full binding for unit tests
    app.on_start()
    return app


def test_init_model_roots_lineage_at_node():
    app = bound_app()
    assert app.age == 0
    assert app.lineage == 7


def test_create_message_copies_state():
    app = bound_app()
    token = app.create_message()
    assert token == ModelToken(age=0, lineage=7, weights=None)


def test_younger_received_model_is_discarded():
    """u = 0 iff the current model is older than the received one."""
    app = bound_app()
    app.age = 5
    useful = app.update_state(ModelToken(age=3, lineage=1), sender=1)
    assert useful is False
    assert app.age == 5  # unchanged
    assert app.lineage == 7
    assert app.discarded == 1


def test_older_received_model_is_adopted_and_trained():
    app = bound_app()
    app.age = 5
    useful = app.update_state(ModelToken(age=8, lineage=1), sender=1)
    assert useful is True
    assert app.age == 9  # trained on local example: age + 1
    assert app.lineage == 1
    assert app.adopted == 1


def test_equal_age_counts_as_useful():
    """'usefulness is ... 1 otherwise' — ties are useful."""
    app = bound_app()
    app.age = 5
    assert app.update_state(ModelToken(age=5, lineage=2), sender=1) is True
    assert app.age == 6


def test_always_adopt_reproduces_algorithm_1():
    app = bound_app(always_adopt=True)
    app.age = 10
    assert app.update_state(ModelToken(age=0, lineage=3), sender=1) is True
    assert app.age == 1  # received model trained, stored unconditionally


def test_real_model_travels_and_trains():
    rng = random.Random(5)
    examples, _true = make_synthetic_regression(2, dimension=3, rng=rng)
    sender = bound_app(example=examples[0])
    receiver = bound_app(example=examples[1])
    token = sender.create_message()
    assert token.weights is not None
    useful = receiver.update_state(token, sender=7)
    assert useful
    assert receiver.model is not None
    # The receiving node applied one SGD step: weights moved.
    assert not np.allclose(receiver.model.weights, np.zeros(4))


# ----------------------------------------------------------------------
# Metric (eq. 6)
# ----------------------------------------------------------------------
def gl_system(strategy, n=4, overlay=None, **kwargs):
    system = MiniSystem(
        strategy,
        n=n,
        overlay=overlay,
        app_factory=lambda i: GossipLearningApp(),
        **kwargs,
    )
    for app in system.apps:
        app.on_start()
    return system


def test_metric_relative_to_ideal_walk():
    system = gl_system(ProactiveStrategy(), n=4, period=10.0)
    metric = GossipLearningMetric(system.nodes, transfer_time=2.0)
    for node in system.nodes:
        node.app.age = 10
    # Ideal age at t = 40 is 40 / 2 = 20; all nodes at age 10 -> 0.5.
    assert metric(40.0) == pytest.approx(0.5)


def test_metric_undefined_at_time_zero():
    system = MiniSystem(ProactiveStrategy(), n=2, period=10.0)
    metric = GossipLearningMetric(system.nodes, transfer_time=2.0)
    assert metric(0.0) is None


def test_metric_counts_online_nodes_only():
    system = gl_system(ProactiveStrategy(), n=2, period=10.0)
    system.nodes[0].app.age = 10
    system.nodes[1].app.age = 0
    system.nodes[1].set_online(False)
    metric = GossipLearningMetric(system.nodes, transfer_time=1.0)
    assert metric(10.0) == pytest.approx(1.0)  # only node 0 counted


def test_metric_rejects_bad_transfer_time():
    with pytest.raises(ValueError):
        GossipLearningMetric([], transfer_time=0.0)


def test_surviving_lineages():
    system = gl_system(ProactiveStrategy(), n=3, period=10.0)
    metric = GossipLearningMetric(system.nodes, transfer_time=1.0)
    assert metric.surviving_lineages() == 3
    system.nodes[1].app.lineage = 0  # walk 0 displaced walk 1
    assert metric.surviving_lineages() == 2


# ----------------------------------------------------------------------
# Integration: ages only grow, and the best walk spreads
# ----------------------------------------------------------------------
def test_integration_ages_monotone_and_positive():
    overlay = ring_overlay(4)
    system = gl_system(
        SimpleTokenAccount(5), overlay=overlay, period=10.0, transfer_time=0.1
    )
    system.start()
    checkpoints = []
    for horizon in (50.0, 100.0, 200.0):
        system.sim.run(until=horizon)
        checkpoints.append([node.app.age for node in system.nodes])
    for earlier, later in zip(checkpoints, checkpoints[1:]):
        for age_before, age_after in zip(earlier, later):
            assert age_after >= age_before
    assert max(checkpoints[-1]) > 0
