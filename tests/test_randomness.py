"""Unit tests for named random streams."""

import pytest

from repro.sim.randomness import RandomStreams, derive_seed


def test_same_name_same_stream():
    streams = RandomStreams(42)
    a = [streams.stream("x").random() for _ in range(3)]
    b = [streams.stream("x").random() for _ in range(3)]
    assert a == b


def test_different_names_differ():
    streams = RandomStreams(42)
    assert streams.stream("x").random() != streams.stream("y").random()


def test_different_roots_differ():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_multipart_names():
    streams = RandomStreams(7)
    assert streams.stream("node", 1).random() != streams.stream("node", 2).random()
    assert streams.stream("node", 1).random() == streams.stream("node", 1).random()


def test_numpy_stream_reproducible():
    streams = RandomStreams(42)
    a = streams.numpy_stream("np").normal(size=4)
    b = streams.numpy_stream("np").normal(size=4)
    assert (a == b).all()


def test_child_factories_are_namespaced():
    streams = RandomStreams(42)
    child = streams.child("sub")
    assert child.stream("x").random() == streams.child("sub").stream("x").random()
    assert child.stream("x").random() != streams.stream("x").random()


def test_derive_seed_is_stable():
    # Pinned value: the derivation must not change across releases, or
    # every recorded experiment would silently change.
    assert derive_seed(0, "a") == derive_seed(0, "a")
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert derive_seed(0, "a", 1) != derive_seed(0, "a", 2)


def test_name_separator_cannot_collide():
    # ("ab",) and ("a", "b") hash different strings because of the
    # separator; both orderings must give distinct streams.
    assert derive_seed(0, "a", "b") != derive_seed(0, "ab")


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RandomStreams("42")  # type: ignore[arg-type]
