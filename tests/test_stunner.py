"""Tests for the synthetic STUNner-like trace generator.

These are calibration tests: they assert the generated traces match the
characteristics the paper publishes about the real trace (Figure 1 and
§4.1), which is exactly what the substitution promises to preserve.
"""

import random

import pytest

from repro.churn.stats import online_fraction, trace_summary
from repro.churn.stunner import (
    DAY,
    HOUR,
    MINUTE,
    StunnerTraceConfig,
    generate_stunner_like_trace,
)


@pytest.fixture(scope="module")
def trace():
    return generate_stunner_like_trace(1500, random.Random(42))


def test_never_online_fraction_near_published_30_percent(trace):
    summary = trace_summary(trace)
    assert 0.25 <= summary.never_online_fraction <= 0.38


def test_two_day_horizon(trace):
    assert trace.horizon == 2 * DAY


def test_minimum_session_length_enforced(trace):
    for node_id in range(trace.n):
        for interval in trace.intervals(node_id):
            assert interval.duration >= MINUTE


def test_intervals_disjoint_and_sorted(trace):
    for node_id in range(trace.n):
        intervals = trace.intervals(node_id)
        for earlier, later in zip(intervals, intervals[1:]):
            assert earlier.end < later.start or earlier.end == later.start


def test_diurnal_pattern_night_exceeds_day(trace):
    """More phones online at night (GMT) than in the afternoon (Fig. 1)."""
    night_times = [3 * HOUR, 27 * HOUR]  # 03:00 both days
    day_times = [15 * HOUR, 39 * HOUR]  # 15:00 both days
    night = sum(online_fraction(trace, night_times)) / 2
    day = sum(online_fraction(trace, day_times)) / 2
    assert night > day * 1.3


def test_online_fraction_in_plausible_band(trace):
    """Figure 1 shows roughly 20-45 % of users online at any time."""
    times = [h * HOUR for h in range(48)]
    fractions = online_fraction(trace, times)
    assert 0.10 <= min(fractions)
    assert max(fractions) <= 0.60


def test_deterministic_given_seed():
    a = generate_stunner_like_trace(200, random.Random(7))
    b = generate_stunner_like_trace(200, random.Random(7))
    for node_id in range(200):
        assert a.intervals(node_id) == b.intervals(node_id)


def test_custom_horizon():
    config = StunnerTraceConfig(horizon=6 * HOUR)
    trace = generate_stunner_like_trace(300, random.Random(1), config)
    assert trace.horizon == 6 * HOUR
    for node_id in range(trace.n):
        for interval in trace.intervals(node_id):
            assert interval.end <= 6 * HOUR


def test_all_users_offline_possible():
    config = StunnerTraceConfig(never_online_probability=1.0)
    trace = generate_stunner_like_trace(50, random.Random(1), config)
    assert all(not trace.intervals(i) for i in range(50))


def test_config_validation():
    with pytest.raises(ValueError):
        StunnerTraceConfig(never_online_probability=1.5)
    with pytest.raises(ValueError):
        StunnerTraceConfig(horizon=-1.0)
    with pytest.raises(ValueError):
        StunnerTraceConfig(daytime_duration_min=10.0, daytime_duration_max=5.0)


def test_summary_statistics_plausible(trace):
    summary = trace_summary(trace)
    # Online users charge ~7h/night plus top-ups; averaged over all users
    # (incl. 30 % never online) expect roughly 15-40 % online time.
    assert 0.12 <= summary.mean_online_fraction <= 0.45
    assert summary.mean_session_length >= 30 * MINUTE
    assert summary.sessions_per_user >= 1.0
