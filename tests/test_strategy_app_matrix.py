"""Smoke matrix: every application under every strategy.

Each combination runs a short simulation and checks the cross-cutting
invariants (budget, burst bound via account caps, metric sanity). This
is the compatibility contract of the framework: any §3.1-conforming
strategy drives any application.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

APPS = (
    "gossip-learning",
    "push-gossip",
    "push-pull-gossip",
    "chaotic-iteration",
    "replication-repair",
)

STRATEGIES = (
    ("proactive", None, None),
    ("simple", None, 5),
    ("generalized", 2, 6),
    ("randomized", 2, 6),
    ("graded-generalized", 2, 6),
    ("graded-randomized", 2, 6),
    ("reactive", None, None),
)


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize(
    "strategy,spend_rate,capacity", STRATEGIES, ids=lambda v: str(v)
)
def test_every_app_runs_under_every_strategy(app, strategy, spend_rate, capacity):
    config = ExperimentConfig(
        app=app,
        strategy=strategy,
        spend_rate=spend_rate,
        capacity=capacity,
        n=40,
        periods=12,
        seed=5,
        grading_scale=4.0 if strategy.startswith("graded") else None,
    )
    result = run_experiment(config)
    # The metric series exists and is finite.
    assert not result.metric.empty
    assert all(value == value for value in result.metric.values)  # no NaN
    # Budget: never above the proactive rate (the flooding reference is
    # exempt by design).
    if strategy != "reactive":
        assert result.messages_per_node_per_period <= 1.05
    # Account invariants survive every combination.
    # (balances are capped by construction; spot-check via the summary)
    assert "msgs/node/period" in result.summary()


@pytest.mark.parametrize("app", ("gossip-learning", "push-gossip"))
def test_every_strategy_runs_under_churn(app):
    for strategy, spend_rate, capacity in STRATEGIES:
        if strategy == "reactive":
            continue  # meaningless under churn (dies instantly)
        config = ExperimentConfig(
            app=app,
            strategy=strategy,
            spend_rate=spend_rate,
            capacity=capacity,
            n=40,
            periods=12,
            seed=5,
            scenario="trace",
            grading_scale=4.0 if strategy.startswith("graded") else None,
        )
        result = run_experiment(config)
        assert result.messages_per_node_per_period <= 1.05


@pytest.mark.parametrize(
    "app", ("gossip-learning", "push-gossip", "replication-repair")
)
def test_determinism_across_apps(app):
    config = ExperimentConfig(
        app=app,
        strategy="randomized",
        spend_rate=2,
        capacity=6,
        n=40,
        periods=12,
        seed=77,
    )
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.metric.values == second.metric.values
    assert first.data_messages == second.data_messages
