"""Unit tests for node lifecycle and the message transport."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import SimNode


class Inbox(SimNode):
    def __init__(self, node_id, online=True):
        super().__init__(node_id, online=online)
        self.inbox = []

    def deliver(self, message):
        self.inbox.append(message)


def wired(n=3, transfer_time=2.0):
    sim = Simulator()
    network = Network(sim, transfer_time)
    nodes = [Inbox(i) for i in range(n)]
    network.register_all(nodes)
    return sim, network, nodes


def test_delivery_after_transfer_time():
    sim, network, nodes = wired()
    network.send(0, 1, "hello")
    assert nodes[1].inbox == []
    sim.run()
    assert sim.now == 2.0
    assert len(nodes[1].inbox) == 1
    message = nodes[1].inbox[0]
    assert message.src == 0 and message.dst == 1
    assert message.payload == "hello"
    assert message.sent_at == 0.0


def test_message_kind_default_and_custom():
    sim, network, nodes = wired()
    network.send(0, 1, "a")
    network.send(0, 2, "b", kind="control")
    sim.run()
    assert nodes[1].inbox[0].kind == "data"
    assert nodes[2].inbox[0].kind == "control"
    assert network.stats.by_kind == {"data": 1, "control": 1}


def test_offline_destination_loses_message():
    sim, network, nodes = wired()
    network.send(0, 1, "x")
    nodes[1].set_online(False)
    sim.run()
    assert nodes[1].inbox == []
    assert network.stats.lost_offline == 1
    assert network.stats.delivered == 0


def test_destination_offline_at_send_but_online_at_delivery():
    sim, network, nodes = wired()
    nodes[1].set_online(False)
    network.send(0, 1, "x")
    sim.schedule_at(1.0, nodes[1].set_online, True)
    sim.run()
    assert len(nodes[1].inbox) == 1


def test_send_from_offline_node_is_counted_drop():
    """An offline sender is a counted drop, not a crash (churn race)."""
    sim, network, nodes = wired()
    nodes[0].set_online(False)
    seen = []
    network.add_send_listener(lambda m: seen.append(m))
    network.enable_send_log()
    assert network.send(0, 1, "x") is None
    sim.run()
    assert nodes[1].inbox == []
    assert network.stats.lost_sender_offline == 1
    # The message never existed for any other accounting surface.
    assert network.stats.sent == 0
    assert network.sent_per_node[0] == 0
    assert network.send_log == {}
    assert seen == []


def test_offline_at_own_tick_race_is_not_a_crash():
    """A node taken offline at the very instant its own timer fires.

    The churn transition is scheduled *first* (smaller FIFO seq, the
    ordering ChurnSchedule.apply guarantees by running before any
    protocol timer is armed), so the tick observes the node offline.
    A stale dynamically-scheduled callback that still attempts the send
    afterwards must degrade to a counted drop, never a RuntimeError.
    """
    sim, network, nodes = wired()
    tick_instant = 10.0
    outcomes = []

    def tick():
        # The guarded protocol path: skip the send while offline.
        if not nodes[0].online:
            outcomes.append("skipped")
            return
        network.send(0, 1, "tick")
        outcomes.append("sent")

    def stale_callback():
        # An unguarded application callback racing the same instant.
        outcomes.append(network.send(0, 1, "stale"))

    # Same virtual instant; scheduling order pins execution order.
    sim.schedule_at(tick_instant, nodes[0].set_online, False)
    sim.schedule_at(tick_instant, tick)
    sim.schedule_at(tick_instant, stale_callback)
    sim.run()
    assert outcomes == ["skipped", None]
    assert network.stats.lost_sender_offline == 1
    assert network.stats.sent == 0


def test_unknown_destination_raises():
    sim, network, nodes = wired()
    with pytest.raises(KeyError):
        network.send(0, 99, "x")


def test_duplicate_registration_raises():
    sim, network, nodes = wired()
    with pytest.raises(ValueError):
        network.register(Inbox(0))


def test_per_node_send_accounting():
    sim, network, nodes = wired()
    network.send(0, 1, "a")
    network.send(0, 2, "b")
    network.send(1, 2, "c")
    assert network.sent_per_node == {0: 2, 1: 1, 2: 0}
    assert network.stats.sent == 3


def test_send_log_disabled_by_default():
    sim, network, nodes = wired()
    network.send(0, 1, "a")
    assert network.send_log == {}


def test_send_log_records_times():
    sim, network, nodes = wired()
    network.enable_send_log()
    network.send(0, 1, "a")
    sim.schedule_at(5.0, network.send, 0, 1, "b")
    sim.run()
    assert network.send_log[0] == [0.0, 5.0]


def test_send_listener_observes_messages():
    sim, network, nodes = wired()
    seen = []
    network.add_send_listener(lambda m: seen.append((m.src, m.dst)))
    network.send(0, 1, "a")
    network.send(2, 0, "b")
    assert seen == [(0, 1), (2, 0)]


def test_negative_transfer_time_rejected():
    with pytest.raises(ValueError):
        Network(Simulator(), -1.0)


def test_zero_transfer_time_delivers_same_instant():
    sim = Simulator()
    network = Network(sim, 0.0)
    nodes = [Inbox(0), Inbox(1)]
    network.register_all(nodes)
    network.send(0, 1, "x")
    sim.run()
    assert sim.now == 0.0
    assert len(nodes[1].inbox) == 1


# ----------------------------------------------------------------------
# SimNode lifecycle
# ----------------------------------------------------------------------
def test_online_listener_fires_on_transition():
    node = Inbox(0)
    seen = []
    node.add_online_listener(seen.append)
    node.set_online(False)
    node.set_online(False)  # no transition, no event
    node.set_online(True)
    assert seen == [False, True]


def test_listener_sees_updated_flag():
    node = Inbox(0)
    observed = []
    node.add_online_listener(lambda online: observed.append(node.online))
    node.set_online(False)
    assert observed == [False]


def test_ever_online_tracking():
    node = Inbox(0, online=False)
    assert not node.ever_online
    node.set_online(True)
    node.set_online(False)
    assert node.ever_online


def test_base_deliver_raises():
    node = SimNode(0)
    with pytest.raises(NotImplementedError):
        node.deliver(None)
