"""Unit tests for availability traces."""

import pytest

from repro.churn.trace import AvailabilityTrace, Interval, merge_intervals


def test_interval_validation():
    with pytest.raises(ValueError):
        Interval(-1.0, 5.0)
    with pytest.raises(ValueError):
        Interval(5.0, 5.0)
    with pytest.raises(ValueError):
        Interval(5.0, 4.0)


def test_interval_properties():
    interval = Interval(2.0, 5.0)
    assert interval.duration == 3.0
    assert interval.contains(2.0)
    assert interval.contains(4.999)
    assert not interval.contains(5.0)  # half-open
    assert not interval.contains(1.0)


def test_merge_overlapping_intervals():
    merged = merge_intervals(
        [Interval(5.0, 8.0), Interval(0.0, 3.0), Interval(2.0, 6.0)]
    )
    assert merged == [Interval(0.0, 8.0)]


def test_merge_touching_intervals():
    merged = merge_intervals([Interval(0.0, 3.0), Interval(3.0, 5.0)])
    assert merged == [Interval(0.0, 5.0)]


def test_merge_disjoint_intervals_stay_apart():
    merged = merge_intervals([Interval(4.0, 5.0), Interval(0.0, 1.0)])
    assert merged == [Interval(0.0, 1.0), Interval(4.0, 5.0)]


def test_trace_is_online():
    trace = AvailabilityTrace(100.0, [[Interval(10.0, 20.0), Interval(50.0, 60.0)]])
    assert not trace.is_online(0, 5.0)
    assert trace.is_online(0, 10.0)
    assert trace.is_online(0, 19.9)
    assert not trace.is_online(0, 20.0)
    assert trace.is_online(0, 55.0)
    assert not trace.is_online(0, 99.0)


def test_trace_rejects_overlap():
    with pytest.raises(ValueError, match="overlap"):
        AvailabilityTrace(100.0, [[Interval(0.0, 20.0), Interval(10.0, 30.0)]])


def test_trace_rejects_unsorted():
    with pytest.raises(ValueError, match="overlap|unsorted"):
        AvailabilityTrace(100.0, [[Interval(50.0, 60.0), Interval(10.0, 20.0)]])


def test_trace_rejects_beyond_horizon():
    with pytest.raises(ValueError, match="horizon"):
        AvailabilityTrace(100.0, [[Interval(90.0, 150.0)]])


def test_ever_online():
    trace = AvailabilityTrace(100.0, [[Interval(30.0, 40.0)], []])
    assert trace.ever_online(0)
    assert not trace.ever_online(1)
    assert not trace.ever_online(0, until=30.0)
    assert trace.ever_online(0, until=31.0)


def test_online_time():
    trace = AvailabilityTrace(100.0, [[Interval(0.0, 10.0), Interval(50.0, 55.0)]])
    assert trace.online_time(0) == 15.0


def test_transitions():
    trace = AvailabilityTrace(100.0, [[Interval(10.0, 20.0), Interval(90.0, 100.0)]])
    assert trace.transitions(0) == [(10.0, True), (20.0, False), (90.0, True)]
    # The logout at the horizon itself is not emitted (simulation ends).


def test_save_load_roundtrip(tmp_path):
    trace = AvailabilityTrace(
        200.0,
        [
            [Interval(0.0, 50.0), Interval(100.0, 150.5)],
            [],
            [Interval(25.25, 175.75)],
        ],
    )
    path = tmp_path / "trace.txt"
    trace.save(path)
    loaded = AvailabilityTrace.load(path)
    assert loaded.horizon == trace.horizon
    assert loaded.n == trace.n
    for node_id in range(trace.n):
        assert loaded.intervals(node_id) == trace.intervals(node_id)


def test_load_rejects_missing_horizon(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1.0:2.0\n")
    with pytest.raises(ValueError, match="horizon"):
        AvailabilityTrace.load(path)


def test_load_rejects_sparse_ids(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("horizon 100.0\n0 1.0:2.0\n2 3.0:4.0\n")
    with pytest.raises(ValueError, match="dense"):
        AvailabilityTrace.load(path)


def test_load_rejects_malformed_interval(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("horizon 100.0\n0 1.0-2.0\n")
    with pytest.raises(ValueError, match="malformed"):
        AvailabilityTrace.load(path)


def test_invalid_horizon_rejected():
    with pytest.raises(ValueError):
        AvailabilityTrace(0.0, [])
