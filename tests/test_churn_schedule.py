"""Tests for trace-driven churn scheduling."""

import pytest

from repro.churn.schedule import ChurnSchedule
from repro.churn.trace import AvailabilityTrace, Interval
from repro.sim.engine import Simulator
from repro.sim.node import SimNode


def make_trace():
    return AvailabilityTrace(
        100.0,
        [
            [Interval(0.0, 30.0), Interval(60.0, 80.0)],  # online at t=0
            [Interval(40.0, 100.0)],  # offline at t=0, logs in at 40
            [],  # never online
        ],
    )


def test_initial_online():
    schedule = ChurnSchedule(make_trace())
    assert schedule.initial_online(0) is True
    assert schedule.initial_online(1) is False
    assert schedule.initial_online(2) is False


def test_transitions_are_applied():
    trace = make_trace()
    schedule = ChurnSchedule(trace)
    sim = Simulator()
    nodes = [SimNode(i, online=schedule.initial_online(i)) for i in range(3)]
    observed = {i: [] for i in range(3)}
    for node in nodes:
        node.add_online_listener(
            lambda online, i=node.node_id: observed[i].append((sim.now, online))
        )
    count = schedule.apply(sim, nodes)
    # node 0: off@30, on@60, off@80; node 1: on@40 (end at horizon not
    # emitted); node 2: nothing.
    assert count == 4
    sim.run()
    assert observed[0] == [(30.0, False), (60.0, True), (80.0, False)]
    assert observed[1] == [(40.0, True)]
    assert observed[2] == []


def test_node_count_mismatch_rejected():
    schedule = ChurnSchedule(make_trace())
    with pytest.raises(ValueError, match="covers"):
        schedule.apply(Simulator(), [SimNode(0, online=True)])


def test_wrong_initial_state_rejected():
    schedule = ChurnSchedule(make_trace())
    nodes = [
        SimNode(0, online=False),
        SimNode(1, online=False),
        SimNode(2, online=False),
    ]
    with pytest.raises(ValueError, match="initial"):
        schedule.apply(Simulator(), nodes)


def test_interval_starting_at_zero_not_double_scheduled():
    trace = AvailabilityTrace(50.0, [[Interval(0.0, 20.0)]])
    schedule = ChurnSchedule(trace)
    sim = Simulator()
    node = SimNode(0, online=True)
    count = schedule.apply(sim, [node])
    assert count == 1  # only the logout at t=20
    sim.run()
    assert node.online is False
