"""Unit tests for the probabilistic rounding of Algorithm 4."""

import random

import pytest

from repro.core.rounding import rand_round


def test_integers_round_exactly():
    rng = random.Random(1)
    for value in (0, 1, 2, 7, 100):
        for _ in range(20):
            assert rand_round(float(value), rng) == value


def test_result_is_floor_or_ceil():
    rng = random.Random(2)
    for _ in range(500):
        result = rand_round(3.3, rng)
        assert result in (3, 4)


def test_expectation_is_unbiased():
    """E[rand_round(r)] = r — the property §4.3 relies on."""
    rng = random.Random(3)
    for value in (0.25, 0.5, 2.75, 9.9):
        samples = 20_000
        total = sum(rand_round(value, rng) for _ in range(samples))
        assert total / samples == pytest.approx(value, abs=0.05)


def test_fraction_probability_matches():
    rng = random.Random(4)
    ups = sum(1 for _ in range(20_000) if rand_round(1.2, rng) == 2)
    assert ups / 20_000 == pytest.approx(0.2, abs=0.02)


def test_negative_value_rejected():
    with pytest.raises(ValueError):
        rand_round(-0.1, random.Random(1))


def test_zero():
    assert rand_round(0.0, random.Random(1)) == 0


def test_near_integer_float_noise():
    """Values like 2.9999999 must never round to 4."""
    rng = random.Random(5)
    for _ in range(100):
        assert rand_round(2.9999999, rng) in (2, 3)
        assert rand_round(3.0000001, rng) in (3, 4)
