"""The multi-process limiter cluster, tested in-process.

The router and the workers are plain asyncio servers, so everything but
the actual ``fork`` can run inside one event loop: real sockets, the
real binary protocol, the real bulk fan-out and reorder path — with
worker "death" staged by closing a worker server under the router. The
one subprocess test at the bottom smokes the actual ``repro serve
--workers N`` entry point end to end.

The load-bearing claims:

* response order is the request order, across keys, workers and frame
  kinds (DECISION runs, STATS, PING, errors interleave correctly);
* cluster STATS aggregates the per-worker counters;
* killing a worker remaps only its keys, synthesizes rejects for the
  in-flight tail, and — with ``--cold-start`` workers — keeps the
  paper's §3.4 burst bound intact *through* the failover, which the
  same :class:`~repro.core.ratelimit.RateLimitAuditor` the simulation
  uses verifies post-hoc.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import subprocess
import sys
import time

import pytest

from repro.core.ratelimit import RateLimitAuditor
from repro.serve import AdmissionServer, TokenAccountLimiter, wire
from repro.serve.cluster import ClusterRouter, _expand_run
from repro.serve.limiter import Decision


def make_limiter(**overrides) -> TokenAccountLimiter:
    kwargs = dict(
        strategy="simple", capacity=3, period=50.0, shards=2, seed=1
    )
    kwargs.update(overrides)
    return TokenAccountLimiter(**kwargs)


async def start_cluster(workers: int = 2, **limiter_overrides):
    """``workers`` in-process worker servers behind one router."""
    servers = []
    addresses = {}
    for index in range(workers):
        limiter = make_limiter(**limiter_overrides)
        server = await AdmissionServer(limiter, host="127.0.0.1", port=0).start()
        servers.append(server)
        addresses[f"w{index}"] = ("127.0.0.1", server.port)
    router = await ClusterRouter(addresses, host="127.0.0.1", port=0).start()
    return router, servers


async def binary_session(port: int):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(wire.MAGIC)
    await writer.drain()
    assert await reader.readexactly(len(wire.MAGIC)) == wire.MAGIC
    return reader, writer


async def acquire_many(reader, writer, keys, useful: bool = True):
    """Pipeline ACQUIREs for ``keys`` and collect the ordered decisions."""
    writer.write(
        b"".join(wire.encode_request_binary(key, useful) for key in keys)
    )
    await writer.drain()
    decisions = []
    for key in keys:
        frame = await reader.readexactly(wire.DECISION_FRAME_SIZE)
        status, decision = wire.decode_response_binary(frame[2:], key=key)
        assert status == wire.STATUS_DECISION
        decisions.append(decision)
    return decisions


async def fetch_cluster_stats(reader, writer) -> dict:
    writer.write(wire.encode_command_binary(wire.OP_STATS))
    await writer.drain()
    header = await reader.readexactly(2)
    length = header[0] | (header[1] << 8)
    payload = await reader.readexactly(length)
    assert payload[0] == wire.STATUS_STATS
    return json.loads(payload[1:])


async def teardown(router, servers, *connections):
    for _, writer in connections:
        writer.close()
    await router.close()
    for server in servers:
        await server.close()


# ----------------------------------------------------------------------
# RUN expansion: the router's client-facing frame synthesis
# ----------------------------------------------------------------------
def test_expand_run_matches_per_decision_encoding():
    """Expanding a RUN must produce byte-identical frames to what the
    worker would have sent for the same sequential decisions."""
    reason = wire.REASON_CODES["reactive"]
    expected = b"".join(
        [
            wire.encode_decision_binary(Decision(True, "k", "reactive", 4)),
            wire.encode_decision_binary(Decision(True, "k", "reactive", 3)),
            wire.encode_decision_binary(Decision(True, "k", "reactive", 2)),
            wire.encode_decision_binary(
                Decision(False, "k", "exhausted", 2, 7.25)
            ),
            wire.encode_decision_binary(
                Decision(False, "k", "exhausted", 2, 7.25)
            ),
        ]
    )
    assert _expand_run(reason, 3, 2, 5, 7.25) == expected
    # pure-admit and pure-reject runs
    assert _expand_run(reason, 2, 0, 2, 0.0) == b"".join(
        wire.encode_decision_binary(Decision(True, "k", "reactive", b))
        for b in (1, 0)
    )
    assert _expand_run(reason, 0, 3, 0, 1.5) == (
        wire.encode_decision_binary(Decision(False, "k", "exhausted", 0, 1.5))
        * 3
    )


# ----------------------------------------------------------------------
# routing, ordering, aggregation
# ----------------------------------------------------------------------
def test_cluster_orders_pipelined_decisions_across_keys():
    async def scenario():
        router, servers = await start_cluster(2)
        session = await binary_session(router.port)
        # 6 keys x 5 requests, interleaved: per key the responses must
        # be 3 admits with descending balances then 2 rejects, and the
        # stream must be in exact request order
        keys = [f"k{i % 6}" for i in range(30)]
        decisions = await acquire_many(*session, keys)
        await teardown(router, servers, session)
        return keys, decisions

    keys, decisions = asyncio.run(scenario())
    per_key = {}
    for key, decision in zip(keys, decisions):
        per_key.setdefault(key, []).append(decision)
    assert set(per_key) == {f"k{i}" for i in range(6)}
    for sequence in per_key.values():
        assert [d.admitted for d in sequence] == [True] * 3 + [False] * 2
        assert [d.balance for d in sequence] == [2, 1, 0, 0, 0]
        assert all(d.retry_after > 0 for d in sequence if not d.admitted)


def test_cluster_keys_spread_over_both_workers():
    async def scenario():
        router, servers = await start_cluster(2)
        session = await binary_session(router.port)
        keys = [f"key{i}" for i in range(64)]
        await acquire_many(*session, keys)
        owners = {key: router._ring.owner(key) for key in keys}
        per_worker = [server.limiter.admitted for server in servers]
        await teardown(router, servers, session)
        return owners, per_worker

    owners, per_worker = asyncio.run(scenario())
    # the ring split the key space and each worker decided its share
    assert set(owners.values()) == {"w0", "w1"}
    counts = {
        name: sum(1 for owner in owners.values() if owner == name)
        for name in ("w0", "w1")
    }
    assert sorted(per_worker) == sorted(counts.values())


def test_cluster_aggregates_stats_and_answers_ping():
    async def scenario():
        router, servers = await start_cluster(2)
        session = await binary_session(router.port)
        reader, writer = session
        await acquire_many(reader, writer, [f"k{i % 4}" for i in range(20)])
        stats = await fetch_cluster_stats(reader, writer)
        writer.write(wire.encode_command_binary(wire.OP_PING))
        await writer.drain()
        pong = await reader.readexactly(3)
        await teardown(router, servers, session)
        return stats, pong

    stats, pong = asyncio.run(scenario())
    # 4 keys x 5 requests against C=3: 12 admits, 8 rejects, summed
    # across the two workers
    assert stats["admitted"] == 12 and stats["rejected"] == 8
    assert stats["keys"] == 4
    assert stats["workers"] == 2 and stats["remaps"] == 0
    assert stats["connections"] == 1
    assert stats["worker_connections"] == 2  # one link per worker
    assert pong[2] == wire.STATUS_PONG


def test_cluster_mixed_usefulness_flags_stay_per_request():
    async def scenario():
        # generalized from balance 3 at A=3: useless is rejected where
        # useful is admitted, so flag mixups would flip outcomes
        router, servers = await start_cluster(
            2,
            strategy="generalized",
            spend_rate=3,
            capacity=6,
            initial_tokens=3,
        )
        session = await binary_session(router.port)
        reader, writer = session
        writer.write(
            wire.encode_request_binary("k", useful=False)
            + wire.encode_request_binary("k", useful=True)
            + wire.encode_request_binary("k", useful=False)
        )
        await writer.drain()
        frames = [
            await reader.readexactly(wire.DECISION_FRAME_SIZE)
            for _ in range(3)
        ]
        await teardown(router, servers, session)
        return [
            wire.decode_response_binary(frame[2:], key="k")[1]
            for frame in frames
        ]

    useless, useful, useless_again = asyncio.run(scenario())
    assert not useless.admitted
    assert useful.admitted
    assert not useless_again.admitted


def test_cluster_answers_errors_in_order_and_survives_them():
    async def scenario():
        router, servers = await start_cluster(2)
        session = await binary_session(router.port)
        reader, writer = session
        # valid, malformed (empty key), valid: the error frame must
        # land between the two decisions and the session must survive
        empty_key = wire.ACQUIRE_HEADER.pack(2, wire.OP_ACQUIRE, 1)
        writer.write(
            wire.encode_request_binary("a")
            + empty_key
            + wire.encode_request_binary("a")
        )
        await writer.drain()
        first = await reader.readexactly(wire.DECISION_FRAME_SIZE)
        header = await reader.readexactly(2)
        length = header[0] | (header[1] << 8)
        error = await reader.readexactly(length)
        second = await reader.readexactly(wire.DECISION_FRAME_SIZE)
        await teardown(router, servers, session)
        return first, error, second

    first, error, second = asyncio.run(scenario())
    assert first[2] == wire.STATUS_DECISION
    assert error[0] == wire.STATUS_ERROR
    assert b"key" in error[1:]
    assert second[2] == wire.STATUS_DECISION
    # both valid requests were decided (balances 2 then 1)
    assert wire.decode_response_binary(second[2:], key="a")[1].balance == 1


def test_cluster_refuses_text_clients():
    async def scenario():
        router, servers = await start_cluster(2)
        reader, writer = await asyncio.open_connection("127.0.0.1", router.port)
        writer.write(b"A key\n")
        await writer.drain()
        line = await reader.readline()
        closed = await reader.read()
        writer.close()
        await teardown(router, servers)
        return line, closed

    line, closed = asyncio.run(scenario())
    assert line.startswith(b"!")
    assert b"binary" in line
    assert closed == b""


# ----------------------------------------------------------------------
# worker failure: remap, synthesized rejects, the audited burst bound
# ----------------------------------------------------------------------
def test_worker_failed_is_idempotent():
    async def scenario():
        router, servers = await start_cluster(2)
        router.worker_failed("w0")
        router.worker_failed("w0")  # a second report must not re-remap
        remaps, members = router.remaps, router.workers
        await teardown(router, servers)
        return remaps, members

    remaps, members = asyncio.run(scenario())
    assert remaps == 1
    assert members == ("w1",)


def test_cluster_remaps_a_dead_workers_keys_to_the_survivor():
    async def scenario():
        router, servers = await start_cluster(2)
        session = await binary_session(router.port)
        reader, writer = session
        victim_key = next(
            f"k{i}" for i in range(100) if router._ring.owner(f"k{i}") == "w0"
        )
        survivor_key = next(
            f"s{i}" for i in range(100) if router._ring.owner(f"s{i}") == "w1"
        )
        before = await acquire_many(reader, writer, [victim_key] * 2)
        await servers[0].close()  # the worker dies under the router
        # the next batch still routes to the dead link: its requests
        # come back as synthesized rejects, and the failure is remapped
        synthesized = await acquire_many(reader, writer, [victim_key])
        healed = await acquire_many(
            reader, writer, [victim_key, survivor_key, victim_key]
        )
        stats = await fetch_cluster_stats(reader, writer)
        remaps = router.remaps
        survivor_admitted = servers[1].limiter.admitted
        await teardown(router, servers, session)
        return before, synthesized, healed, stats, remaps, survivor_admitted

    before, synthesized, healed, stats, remaps, survivor_admitted = asyncio.run(
        scenario()
    )
    assert [d.admitted for d in before] == [True, True]
    # in-flight tail at the death: rejected, not a protocol error
    assert [d.admitted for d in synthesized] == [False]
    assert synthesized[0].reason == "exhausted"
    assert remaps == 1
    # after the remap the victim's key lives on the survivor (a fresh
    # account: its 3 tokens admit again), the survivor's key untouched
    assert [d.admitted for d in healed] == [True, True, True]
    assert stats["workers"] == 1 and stats["remaps"] == 1
    assert survivor_admitted >= 3


def test_cluster_burst_bound_holds_through_a_worker_kill():
    """The acceptance property: per-key admissions audited through the
    router never exceed ``ceil(t/Δ) + C`` — including across a worker
    kill and remap, because cold-start workers give a remapped key an
    *empty* account instead of a fresh burst allowance."""
    period = 0.15
    capacity = 2

    async def scenario():
        router, servers = await start_cluster(
            2, capacity=capacity, period=period, initial_tokens=0
        )
        session = await binary_session(router.port)
        reader, writer = session
        key = "audited"
        victim = router._ring.owner(key)
        victim_index = int(victim[1:])
        auditor = RateLimitAuditor(network=None)
        admissions = 0
        killed_at = None
        deadline = time.monotonic() + 9 * period
        while time.monotonic() < deadline:
            (decision,) = await acquire_many(reader, writer, [key])
            if decision.admitted:
                auditor.record(0, time.monotonic())
                admissions += 1
            if killed_at is None and time.monotonic() > deadline - 5 * period:
                await servers[victim_index].close()
                killed_at = time.monotonic()
            await asyncio.sleep(period / 40)
        remaps = router.remaps
        await teardown(router, servers, session)
        return auditor, admissions, remaps

    auditor, admissions, remaps = asyncio.run(scenario())
    assert remaps == 1, "the kill must have been detected and remapped"
    assert admissions >= 2, "the pacer must admit through the failover"
    violations = auditor.check(period=period, capacity=capacity)
    assert not violations, violations


# ----------------------------------------------------------------------
# the real thing: `repro serve --workers 2` as a subprocess
# ----------------------------------------------------------------------
def test_cluster_cli_smoke():
    announce = re.compile(r"on [0-9.]+:(\d+)")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--workers",
            "2",
            "--strategy",
            "simple",
            "-C",
            "3",
            "--period",
            "50",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--duration",
            "60",
            "--seed",
            "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        port = None
        assert process.stdout is not None
        for _ in range(50):
            line = process.stdout.readline()
            if not line:
                break
            if "routing" in line:
                match = announce.search(line)
                assert match, line
                port = int(match.group(1))
                break
        assert port, "the router never announced its port"

        async def drive():
            session = await binary_session(port)
            decisions = await acquire_many(
                *session, [f"k{i % 4}" for i in range(20)]
            )
            stats = await fetch_cluster_stats(*session)
            session[1].close()
            return decisions, stats

        decisions, stats = asyncio.run(drive())
        assert sum(d.admitted for d in decisions) == 12  # 4 keys x C=3
        assert stats["workers"] == 2
        assert stats["admitted"] == 12 and stats["rejected"] == 8
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()
            process.wait(timeout=10)
