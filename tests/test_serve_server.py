"""Loopback tests for the admission server, wire protocol and loadgen."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.scenarios import ArrivalSpec
from repro.serve import (
    AdmissionServer,
    TokenAccountLimiter,
    run_loadgen,
    wire,
)


def make_limiter(**overrides) -> TokenAccountLimiter:
    kwargs = dict(strategy="simple", capacity=3, period=50.0, shards=2, seed=1)
    kwargs.update(overrides)
    return TokenAccountLimiter(**kwargs)


async def start_server(limiter) -> AdmissionServer:
    return await AdmissionServer(limiter, host="127.0.0.1", port=0).start()


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
def test_wire_request_roundtrip():
    assert wire.parse_request("A alice") == ("A", "alice", True)
    assert wire.parse_request("A alice n") == ("A", "alice", False)
    assert wire.parse_request("A alice u") == ("A", "alice", True)
    assert wire.parse_request("S") == ("S", None, True)
    assert wire.parse_request("P") == ("P", None, True)
    assert wire.encode_request("alice") == b"A alice\n"
    assert wire.encode_request("alice", useful=False) == b"A alice n\n"


@pytest.mark.parametrize(
    "line", ["", "A", "Z key", "A key x", "S extra", "A " + "k" * 300]
)
def test_wire_rejects_malformed_requests(line):
    with pytest.raises(ValueError):
        wire.parse_request(line)


def test_wire_response_roundtrip():
    assert wire.parse_response("+ reactive 4") == (True, "reactive", 0.0)
    admitted, reason, retry = wire.parse_response("- 12.500000")
    assert (admitted, reason, retry) == (False, "exhausted", 12.5)
    with pytest.raises(ValueError):
        wire.parse_response("! broken")


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
def test_server_answers_batched_pipeline_in_order():
    async def scenario():
        limiter = make_limiter()  # C=3, long period: exactly 3 admits
        server = await start_server(limiter)
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        # five acquires + stats + ping, all in ONE segment
        writer.write(b"A k\nA k\nA k\nA k\nA k\nS\nP\n")
        await writer.drain()
        writer.write_eof()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        await server.close()
        return raw.decode().splitlines()

    lines = asyncio.run(scenario())
    assert len(lines) == 7
    decisions = [wire.parse_response(line)[0] for line in lines[:5]]
    assert decisions == [True, True, True, False, False]
    stats = json.loads(lines[5])
    assert stats["admitted"] == 3 and stats["rejected"] == 2
    assert stats["keys"] == 1 and "connections" in stats
    assert lines[6] == "P"


def test_server_reports_errors_and_skips_blank_lines():
    async def scenario():
        server = await start_server(make_limiter())
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(b"\r\nBOGUS line\nA k\n\n")
        await writer.drain()
        writer.write_eof()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        await server.close()
        return raw.decode().splitlines()

    lines = asyncio.run(scenario())
    assert len(lines) == 2
    assert lines[0].startswith("! ")
    assert lines[1].startswith("+ ")


def test_server_shares_one_limiter_across_connections():
    async def scenario():
        limiter = make_limiter()
        server = await start_server(limiter)

        async def acquire_once():
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(wire.encode_request("shared"))
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return wire.parse_response(line.decode())[0]

        outcomes = [await acquire_once() for _ in range(5)]
        await server.close()
        return outcomes

    # one shared account: 3 tokens total across distinct connections
    assert asyncio.run(scenario()) == [True, True, True, False, False]


def test_server_port_zero_picks_a_free_port():
    async def scenario():
        server = await start_server(make_limiter())
        port = server.port
        await server.close()
        return port

    assert asyncio.run(scenario()) > 0


# ----------------------------------------------------------------------
# Loadgen against a live server (the tier-1 smoke required by the issue)
# ----------------------------------------------------------------------
def test_loopback_loadgen_smoke():
    async def scenario():
        # 4 keys x (C=5 burst + 1 token/0.05s) over 0.6s: the schedule
        # oversubscribes the allowance so both outcomes appear.
        limiter = TokenAccountLimiter(
            "simple", capacity=5, period=0.05, shards=2, seed=1
        )
        server = await start_server(limiter)
        spec = ArrivalSpec(pattern="poisson", rate=400.0)
        report = await run_loadgen(
            "127.0.0.1",
            server.port,
            spec,
            duration=0.6,
            connections=3,
            keys=4,
            seed=5,
        )
        await server.close()
        return limiter, report

    limiter, report = asyncio.run(scenario())
    summary = report.summary
    assert report.offered > 100
    assert summary["requests"] == report.offered  # every request answered
    assert summary["admitted"] + summary["rejected"] == summary["requests"]
    assert report.errors == 0
    # the server-side and client-side accounting agree
    assert limiter.admitted == int(summary["admitted"])
    assert limiter.rejected == int(summary["rejected"])
    # admission control actually limited the oversubscribed load
    assert summary["rejected"] > 0
    assert summary["latency_p99_ms"] >= summary["latency_p50_ms"] > 0.0
    assert report.admitted_per_second, "admitted-over-time series missing"


def test_loadgen_flash_crowd_pattern_rejects_the_burst():
    async def scenario():
        limiter = TokenAccountLimiter(
            "generalized", spend_rate=2, capacity=4, period=0.05, shards=2, seed=1
        )
        server = await start_server(limiter)
        spec = ArrivalSpec(
            pattern="flash-crowd",
            rate=60.0,
            peak_rate=1500.0,
            start_fraction=0.3,
            window_fraction=0.2,
        )
        report = await run_loadgen(
            "127.0.0.1", server.port, spec, duration=0.8, connections=2, keys=2, seed=9
        )
        await server.close()
        return report

    report = asyncio.run(scenario())
    # the crowd window oversubscribes 2 keys' allowance massively: the
    # §3.4 ceiling must show up as rejections, not melted latency
    assert report.summary["rejected"] > report.summary["admitted"]
    assert report.summary["latency_p99_ms"] < 1000.0
    assert report.errors == 0


def test_loadgen_survives_a_mid_run_disconnect():
    """A vanishing server yields a partial report, not a crash.

    Everything answered before the disconnect stays measured; the
    unanswered remainder is counted in ``report.errors``.
    """

    async def scenario():
        answered = 8

        async def flaky_handler(reader, writer):
            # answer the first few requests, then hang up mid-run
            for _ in range(answered):
                line = await reader.readline()
                if not line:
                    break
                writer.write(b"+ reactive 1\n")
                await writer.drain()
            writer.close()

        server = await asyncio.start_server(flaky_handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        spec = ArrivalSpec(pattern="uniform", rate=200.0)
        report = await run_loadgen(
            "127.0.0.1", port, spec, duration=0.5, connections=1, keys=2, seed=1
        )
        server.close()
        await server.wait_closed()
        return report

    report = asyncio.run(scenario())
    assert report.offered == 99  # 200/s over 0.5s, open-loop
    assert report.summary["requests"] == 8  # the answered prefix survives
    assert report.summary["admitted"] == 8
    assert report.errors == report.offered - 8  # the rest is accounted for


def test_run_server_duration_returns():
    from repro.serve import run_server

    async def scenario():
        limiter = make_limiter()
        notes = []
        await run_server(
            limiter, host="127.0.0.1", port=0, duration=0.05, announce=notes.append
        )
        return notes

    notes = asyncio.run(scenario())
    assert len(notes) == 1 and "admission control" in notes[0]


# ----------------------------------------------------------------------
# close() drains in-flight pipelined responses (shutdown regression)
# ----------------------------------------------------------------------
def test_close_drains_pipelined_responses_to_a_slow_reader():
    """A shutdown must not truncate responses already owed to a client.

    The regression: a pipelined burst leaves kilobytes of DECISION
    frames in the transport's write buffer; a bare ``transport.close()``
    schedules the flush on a loop that is about to die, so the tail of
    the burst silently vanished. ``close()`` now pauses reading and
    waits for the buffers to reach the socket before closing.
    """
    requests = 6000

    async def scenario():
        limiter = TokenAccountLimiter(
            "simple", capacity=3, period=50.0, shards=2, seed=1
        )
        server = await AdmissionServer(limiter, host="127.0.0.1", port=0).start()
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(wire.MAGIC)
        await writer.drain()
        assert await reader.readexactly(len(wire.MAGIC)) == wire.MAGIC
        writer.write(wire.encode_request_binary("k") * requests)
        await writer.drain()
        # Let the server decide the whole burst; with the client not
        # reading, most of it is now parked in the write buffer.
        await asyncio.sleep(0.2)

        received = bytearray()

        async def slow_slurp():
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    return
                received.extend(chunk)
                await asyncio.sleep(0.001)

        slurp = asyncio.get_running_loop().create_task(slow_slurp())
        await server.close()  # must wait for the reader, not truncate
        await slurp
        writer.close()
        return bytes(received)

    received = asyncio.run(scenario())
    assert len(received) == requests * wire.DECISION_FRAME_SIZE
    # every frame intact: all DECISION status bytes on the 17-byte grid
    assert all(
        received[i + 2] == wire.STATUS_DECISION
        for i in range(0, len(received), wire.DECISION_FRAME_SIZE)
    )
