"""Unit tests for the Watts-Strogatz overlay (§4.1.3)."""

import random

import pytest

from repro.overlay.matrix import is_irreducible
from repro.overlay.watts_strogatz import watts_strogatz_overlay


def test_zero_rewiring_gives_exact_ring_lattice():
    n, k = 20, 4
    overlay = watts_strogatz_overlay(n, k, 0.0, random.Random(1))
    for i in range(n):
        expected = sorted({(i + off) % n for off in (-2, -1, 1, 2)})
        assert sorted(overlay.out_neighbors(i)) == expected


def test_edge_count_preserved_by_rewiring():
    n, k = 100, 4
    for p in (0.0, 0.01, 0.5, 1.0):
        overlay = watts_strogatz_overlay(n, k, p, random.Random(3))
        # Undirected edge count n*k/2, stored as n*k directed links.
        assert overlay.num_edges == n * k


def test_overlay_is_symmetric():
    overlay = watts_strogatz_overlay(80, 4, 0.1, random.Random(5))
    assert overlay.is_symmetric()


def test_rewiring_actually_rewires():
    n, k = 200, 4
    ring = watts_strogatz_overlay(n, k, 0.0, random.Random(1))
    rewired = watts_strogatz_overlay(n, k, 1.0, random.Random(1))
    ring_edges = set(ring.edges())
    rewired_edges = set(rewired.edges())
    # With p = 1 the overwhelming majority of ring links must be gone.
    assert len(ring_edges & rewired_edges) < len(ring_edges) / 2


def test_small_rewiring_changes_few_links():
    n, k = 500, 4
    ring = set(watts_strogatz_overlay(n, k, 0.0, random.Random(2)).edges())
    nearly_ring = set(watts_strogatz_overlay(n, k, 0.01, random.Random(2)).edges())
    changed = len(ring - nearly_ring)
    # p = 0.01 over n*k/2 = 1000 undirected links: expect ~10 rewired
    # (20 directed), allow generous slack.
    assert 0 < changed < 120


def test_paper_topology_is_strongly_connected():
    overlay = watts_strogatz_overlay(500, 4, 0.01, random.Random(4))
    assert is_irreducible(overlay)


def test_deterministic_given_seed():
    a = watts_strogatz_overlay(50, 4, 0.2, random.Random(9))
    b = watts_strogatz_overlay(50, 4, 0.2, random.Random(9))
    assert list(a.edges()) == list(b.edges())


def test_invalid_parameters_rejected():
    rng = random.Random(1)
    with pytest.raises(ValueError):
        watts_strogatz_overlay(10, 3, 0.1, rng)  # odd k
    with pytest.raises(ValueError):
        watts_strogatz_overlay(10, 0, 0.1, rng)
    with pytest.raises(ValueError):
        watts_strogatz_overlay(4, 4, 0.1, rng)  # n <= k
    with pytest.raises(ValueError):
        watts_strogatz_overlay(10, 4, 1.5, rng)  # bad probability
