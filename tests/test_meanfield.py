"""Tests for the §4.3 mean-field model."""

import pytest

from repro.core.meanfield import (
    MeanFieldModel,
    randomized_equilibrium,
    solve_equilibrium,
)
from repro.core.strategies import (
    GeneralizedTokenAccount,
    ProactiveStrategy,
    RandomizedTokenAccount,
)


def test_closed_form_matches_paper_example():
    """a = A*C/(C+1): for A=10, C=20 the prediction is ~9.52 (= ~A)."""
    assert randomized_equilibrium(10, 20) == pytest.approx(200 / 21)
    assert randomized_equilibrium(1, 1) == pytest.approx(0.5)
    assert randomized_equilibrium(5, 10) == pytest.approx(50 / 11)


def test_closed_form_approaches_a_for_large_c():
    assert randomized_equilibrium(10, 10_000) == pytest.approx(10.0, rel=1e-3)


def test_closed_form_validation():
    with pytest.raises(ValueError):
        randomized_equilibrium(0, 5)
    with pytest.raises(ValueError):
        randomized_equilibrium(10, 5)


def test_numeric_solver_matches_closed_form():
    for spend_rate, capacity in [(1, 2), (5, 10), (10, 20), (20, 40)]:
        strategy = RandomizedTokenAccount(spend_rate, capacity)
        numeric = solve_equilibrium(strategy, useful=True)
        closed = randomized_equilibrium(spend_rate, capacity)
        assert numeric == pytest.approx(closed, abs=1e-6)


def test_solver_on_proactive_pins_balance_at_zero():
    """proactive(0) = 1 >= 1 already: equilibrium at the boundary a=0."""
    assert solve_equilibrium(ProactiveStrategy()) == 0.0


def test_solver_on_generalized():
    """Continuous generalized reactive: (A-1+a)/A + [a >= C] = 1 gives
    a = 1 below the capacity step."""
    strategy = GeneralizedTokenAccount(5, 50)
    equilibrium = solve_equilibrium(strategy, useful=True)
    # (A - 1 + a)/A = 1  =>  a = 1
    assert equilibrium == pytest.approx(1.0, abs=1e-6)


def test_solver_requires_finite_capacity():
    from repro.core.strategies import PureReactiveStrategy

    with pytest.raises(ValueError):
        solve_equilibrium(PureReactiveStrategy())


def test_equation_10_holds_at_solution():
    strategy = RandomizedTokenAccount(7, 15)
    a = solve_equilibrium(strategy, useful=True)
    residual = strategy.continuous_reactive(a, True) + strategy.continuous_proactive(a)
    assert residual == pytest.approx(1.0, abs=1e-6)


# ----------------------------------------------------------------------
# ODE transient
# ----------------------------------------------------------------------
def test_ode_converges_to_equilibrium():
    strategy = RandomizedTokenAccount(10, 20)
    model = MeanFieldModel(strategy, period=172.8)
    trajectory = model.integrate(horizon=172.8 * 500)
    predicted = randomized_equilibrium(10, 20)
    assert trajectory.final_balance() == pytest.approx(predicted, rel=0.05)


def test_ode_balance_rises_from_zero():
    strategy = RandomizedTokenAccount(10, 20)
    model = MeanFieldModel(strategy, period=172.8)
    trajectory = model.integrate(horizon=172.8 * 100)
    assert trajectory.balances[0] == 0.0
    assert trajectory.final_balance() > 1.0
    assert max(trajectory.balances) <= 20.0  # never exceeds capacity


def test_ode_send_rate_settles_near_token_rate():
    """At equilibrium, messages consume exactly the token supply 1/Δ."""
    period = 172.8
    model = MeanFieldModel(RandomizedTokenAccount(5, 10), period)
    trajectory = model.integrate(horizon=period * 500)
    assert trajectory.send_rates[-1] == pytest.approx(1 / period, rel=0.05)


def test_trajectory_sampling():
    model = MeanFieldModel(RandomizedTokenAccount(2, 4), period=10.0)
    trajectory = model.integrate(horizon=100.0, samples=20)
    assert len(trajectory.times) >= 20
    assert trajectory.times[0] == 0.0
    assert trajectory.times[-1] == pytest.approx(100.0, abs=1.0)


def test_useful_probability_validation():
    with pytest.raises(ValueError):
        MeanFieldModel(RandomizedTokenAccount(2, 4), 10.0, useful_probability=1.5)


def test_usefulness_mix_lowers_spend():
    """With some useless messages the randomized reactive spend drops, so
    the equilibrium balance climbs toward the proactive threshold."""
    full = MeanFieldModel(RandomizedTokenAccount(10, 40), 10.0, useful_probability=1.0)
    half = MeanFieldModel(RandomizedTokenAccount(10, 40), 10.0, useful_probability=0.5)
    assert half.predicted_equilibrium() > full.predicted_equilibrium()


def test_horizon_validation():
    model = MeanFieldModel(RandomizedTokenAccount(2, 4), 10.0)
    with pytest.raises(ValueError):
        model.integrate(horizon=0.0)
